//! Offline stand-in for `criterion`.
//!
//! Same macro and builder surface (`criterion_group!`, `criterion_main!`,
//! `Criterion`, `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`), but measurement is a plain wall-clock mean printed as
//! text — no statistics, plots, or baselines.
//!
//! Bench targets here use `harness = false`, so `cargo test` executes
//! their `main` too. In debug builds (the test profile) every routine
//! runs exactly once as a smoke test; real timing happens only under
//! `cargo bench` / release builds or when `--measure` is passed.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work performed per iteration, used to derive rate output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_name.into()) }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

#[derive(Debug, Clone)]
struct Settings {
    warm_up: Duration,
    measurement: Duration,
    smoke_only: bool,
}

impl Settings {
    fn default_settings() -> Self {
        Settings {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            // Test profile: run each routine once and move on.
            smoke_only: cfg!(debug_assertions),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { settings: Settings::default_settings() }
    }
}

impl Criterion {
    /// No-op here (the stand-in never produces plots).
    #[must_use]
    pub fn without_plots(self) -> Self {
        self
    }

    /// Sets the per-benchmark warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        assert!(d > Duration::ZERO, "warm-up time must be positive");
        self.settings.warm_up = d;
        self
    }

    /// Sets the per-benchmark measurement duration.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        assert!(d > Duration::ZERO, "measurement time must be positive");
        self.settings.measurement = d;
        self
    }

    /// Applies command-line overrides: `--test` (smoke mode), `--measure`
    /// (force real timing), `--warm-up-time <secs>`,
    /// `--measurement-time <secs>`. Other criterion flags are ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--test" => self.settings.smoke_only = true,
                "--measure" => self.settings.smoke_only = false,
                "--warm-up-time" if i + 1 < args.len() => {
                    if let Ok(secs) = args[i + 1].parse::<f64>() {
                        self.settings.warm_up = Duration::from_secs_f64(secs);
                    }
                    i += 1;
                }
                "--measurement-time" if i + 1 < args.len() => {
                    if let Ok(secs) = args[i + 1].parse::<f64>() {
                        self.settings.measurement = Duration::from_secs_f64(secs);
                    }
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a single routine outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let settings = self.settings.clone();
        run_one(&id.into().id, &settings, None, f);
        self
    }
}

/// A group of related benchmarks sharing settings and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes measurement by
    /// time, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput used to report a rate alongside the latency.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets this group's measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        assert!(d > Duration::ZERO, "measurement time must be positive");
        self.settings.measurement = d;
        self
    }

    /// Benchmarks a routine.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, &self.settings, self.throughput, f);
        self
    }

    /// Benchmarks a routine that borrows an input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, &self.settings, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (output is printed per-benchmark, so this only
    /// exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the routine.
pub struct Bencher {
    settings: Settings,
    mean_ns: f64,
    ran: bool,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock nanoseconds per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.ran = true;
        if self.settings.smoke_only {
            black_box(routine());
            self.mean_ns = 0.0;
            return;
        }

        // Warm-up, also calibrating iterations-per-batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.settings.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // One timed run sized to fill the measurement window.
        let total_iters =
            ((self.settings.measurement.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64).max(1);
        let start = Instant::now();
        for _ in 0..total_iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_secs_f64() * 1e9 / total_iters as f64;
    }
}

fn run_one(
    label: &str,
    settings: &Settings,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher { settings: settings.clone(), mean_ns: 0.0, ran: false };
    f(&mut bencher);
    if !bencher.ran {
        println!("{label}: no iter() call");
        return;
    }
    if settings.smoke_only {
        println!("{label}: ok (smoke)");
        return;
    }
    let mean = bencher.mean_ns;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(", {:.3e} elem/s", n as f64 / (mean / 1e9)),
        Throughput::Bytes(n) => format!(", {:.3e} B/s", n as f64 / (mean / 1e9)),
    });
    println!("{label}: {mean:.1} ns/iter{}", rate.unwrap_or_default());
}

/// Declares a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_settings() -> Settings {
        Settings {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(1),
            smoke_only: true,
        }
    }

    #[test]
    fn bencher_smoke_runs_routine_once() {
        let mut calls = 0;
        let mut b = Bencher { settings: smoke_settings(), mean_ns: 0.0, ran: false };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.ran);
    }

    #[test]
    fn bencher_measures_when_not_smoke() {
        let settings = Settings {
            warm_up: Duration::from_millis(2),
            measurement: Duration::from_millis(2),
            smoke_only: false,
        };
        let mut b = Bencher { settings, mean_ns: 0.0, ran: false };
        b.iter(|| black_box(3u64.pow(7)));
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.settings.smoke_only = true;
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
