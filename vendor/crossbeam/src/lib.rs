//! Offline stand-in for `crossbeam`: only [`scope`], implemented on
//! `std::thread::scope` (stable since Rust 1.63). The crossbeam API
//! returns `Result` and passes the scope back into each spawned closure;
//! both quirks are reproduced so call sites compile unchanged.

#![forbid(unsafe_code)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scoped-thread handle passed to [`scope`]'s closure and re-passed to
/// every spawned closure (mirroring `crossbeam::thread::Scope`).
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again so
    /// nested spawns are possible.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(scope))
    }
}

/// Creates a scope in which spawned threads may borrow from the caller's
/// stack. All threads are joined before `scope` returns.
///
/// # Errors
///
/// Returns `Err` with the panic payload if the closure or any spawned
/// thread panicked (matching crossbeam's signature).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(Scope { inner: s }))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_can_borrow_and_results_join() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        scope(|s| {
            for chunk in data.chunks(2) {
                let total = &total;
                s.spawn(move |_| {
                    total
                        .fetch_add(chunk.iter().sum::<u64>(), std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .expect("no panics");
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn panics_surface_as_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
