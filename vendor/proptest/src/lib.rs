//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: integer
//! range strategies, tuples, `any`, `Just`, `prop_map`,
//! `collection::vec`, the `proptest!` macro with optional
//! `#![proptest_config(...)]`, and the `prop_assert*` / `prop_assume!`
//! macros. Differences from upstream: generation is seeded
//! deterministically from the test's module path and name (no
//! persistence files), and failing cases are reported without
//! shrinking — the panic message includes the case's generated inputs
//! via `Debug` where available (here: the case index).

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration and the deterministic RNG behind generation.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generator: xoshiro-style stream seeded from a name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (the test path),
        /// so every test gets a distinct but reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next pseudo-random word (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Upstream proptest generates shrinkable value *trees*; this
    /// stand-in generates plain values.
    pub trait Strategy {
        /// The type of value generated.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let off = ((u128::from(rng.next_u64()) * span) >> 64) as u128;
                    (self.start as u128).wrapping_add(off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    if lo == <$t>::MIN && hi == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                    let off = ((u128::from(rng.next_u64()) * span) >> 64) as u128;
                    (lo as u128).wrapping_add(off) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length (or length range) accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// cases (default 256).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($cfg); $($rest)* }
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                let run = ::std::panic::AssertUnwindSafe(|| -> ::std::result::Result<(), ()> {
                    $body
                    ::std::result::Result::Ok(())
                });
                match ::std::panic::catch_unwind(run) {
                    Ok(_) => {}
                    Err(payload) => {
                        eprintln!(
                            "proptest case {case}/{} failed in {}",
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! {
            @impl ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3..17usize, y in 0..=5u32) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn vec_lengths(v in collection::vec(any::<u64>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn assume_skips(n in 0..100u64) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn maps_apply(s in (0..4usize, 0..4usize).prop_map(|(a, b)| a + b)) {
            prop_assert!(s <= 6);
        }

        #[test]
        fn just_and_exact_len(k in Just(7u8), v in collection::vec(0..3u8, 4)) {
            prop_assert_eq!(k, 7);
            prop_assert_eq!(v.len(), 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = (0..1000u64, 0..1000u64);
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
