//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives with
//! parking_lot's non-poisoning API (`lock()` returns the guard directly).
//! Poison is ignored — a panicked holder's data is returned as-is, which
//! matches parking_lot semantics.

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed — the borrow is exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose acquire methods never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: a panicked holder does not poison.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
