//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Provides a deterministic [`rngs::StdRng`] built on splitmix64 /
//! xoshiro256++ and the subset of the [`Rng`] trait this workspace uses:
//! `gen_range` over integer ranges, `gen_bool`, and `gen_ratio`. The
//! stream differs from upstream `rand`, but every consumer in this
//! workspace only requires determinism for a fixed seed, not bit
//! compatibility.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`. Callers guarantee `low < high`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                debug_assert!(span > 0, "gen_range called with an empty range");
                // Multiply-shift bounded sampling over a 64-bit draw; the
                // tiny modulo bias is irrelevant for workload generation.
                let draw = rng.next_u64() as u128;
                let offset = (draw * span) >> 64;
                (low as u128).wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "gen_range: empty range");
                if low == <$t>::MIN && high == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                <$t>::sample_range(rng, low, high.wrapping_add(1))
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from a range, e.g. `rng.gen_range(0..n)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        // Compare a 53-bit uniform float in [0, 1) against p.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "gen_ratio: zero denominator");
        assert!(numerator <= denominator, "gen_ratio: ratio above 1");
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5u32);
            assert!(y <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(rng.gen_ratio(5, 5));
        assert!(!rng.gen_ratio(0, 5));
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((4_000..6_000).contains(&hits), "hits={hits}");
    }
}
