//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde` crate's [`Content`](serde::Content) tree as JSON text.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_content(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value to human-indented JSON.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_content(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_content(&content)?)
}

// ── rendering ──────────────────────────────────────────────────────────

fn render(c: &Content, indent: Option<usize>, level: usize, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => render_string(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                render(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(v, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ── parsing ────────────────────────────────────────────────────────────

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!("unexpected input {other:?} at byte {}", self.pos))),
        }
    }

    fn literal(&mut self, text: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found {other:?} at byte {}",
                        self.pos
                    )));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found {other:?} at byte {}",
                        self.pos
                    )));
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Vec<bool>>("[true, false]").unwrap(), vec![true, false]);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("42 43").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = vec![vec![1u64, 2], vec![3]];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u64>>>(&text).unwrap(), v);
    }
}
