//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! a minimal serialization framework under the same crate name. Instead
//! of serde's visitor-based zero-copy data model, types convert to and
//! from a JSON-shaped [`Content`] tree; `serde_json` renders and parses
//! it. The `#[derive(Serialize, Deserialize)]` macros (re-exported from
//! `serde_derive`) cover the shapes this workspace uses: named structs,
//! tuple structs (including `#[serde(transparent)]` newtypes), and enums
//! with unit, tuple and struct variants, externally tagged like serde.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the intermediate representation between
/// typed values and text.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Content>),
    /// An object (insertion-ordered).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a key in a map.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the intermediate representation.
    fn to_content(&self) -> Content;
}

/// Types that can reconstruct themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Parses the intermediate representation into `Self`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the tree's shape does not match.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"), other
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                if *self >= 0 {
                    Content::U64(*self as u64)
                } else {
                    Content::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Content::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"), other
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(x) => Ok(*x),
            Content::U64(n) => Ok(*n as f64),
            Content::I64(n) => Ok(*n as f64),
            other => Err(Error::custom(format!("expected f64, found {other:?}"))),
        }
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        // Keys are rendered through their own serialization; string and
        // integer keys become object keys.
        Content::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_content() {
                        Content::Str(s) => s,
                        Content::U64(n) => n.to_string(),
                        Content::I64(n) => n.to_string(),
                        other => format!("{other:?}"),
                    };
                    (key, v.to_content())
                })
                .collect(),
        )
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $name::from_content(
                                it.next().ok_or_else(|| Error::custom("tuple too short"))?
                            )?,
                        )+);
                        if it.next().is_some() {
                            return Err(Error::custom("tuple too long"));
                        }
                        Ok(out)
                    }
                    other => Err(Error::custom(format!("expected array, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
