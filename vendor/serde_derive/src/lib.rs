//! Derive macros for the vendored offline `serde` stand-in.
//!
//! Hand-rolled over `proc_macro::TokenTree` (no `syn`/`quote` in this
//! offline environment). Supports the shapes this workspace uses:
//!
//! * named structs — serialized as JSON objects;
//! * tuple structs — newtypes serialize as their inner value (also the
//!   `#[serde(transparent)]` behaviour), longer ones as arrays;
//! * enums — externally tagged: unit variants as strings, tuple variants
//!   as `{"Variant": value}` / `{"Variant": [values…]}`, struct variants
//!   as `{"Variant": {fields…}}`.
//!
//! Generics are not supported (nothing in the workspace derives on a
//! generic type).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of item the derive is attached to.
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ── parsing ────────────────────────────────────────────────────────────

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kw = ident_at(&tokens, i).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_at(&tokens, i).expect("expected a type name");
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored) does not support generic types");
    }

    match (kw.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let fields = split_top_level(g.stream())
                .into_iter()
                .map(|chunk| field_name(&chunk).expect("expected a named field"))
                .collect();
            Item::NamedStruct { name, fields }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Item::TupleStruct { name, arity: split_top_level(g.stream()).len() }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let variants = split_top_level(g.stream())
                .into_iter()
                .map(|chunk| parse_variant(&chunk))
                .collect();
            Item::Enum { name, variants }
        }
        _ => panic!("unsupported item shape for vendored serde derive"),
    }
}

fn parse_variant(chunk: &[TokenTree]) -> Variant {
    let mut i = 0;
    skip_attrs_and_vis(chunk, &mut i);
    let name = ident_at(chunk, i).expect("expected a variant name");
    i += 1;
    let kind = match chunk.get(i) {
        None => VariantKind::Unit,
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantKind::Unit, // discriminant
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            VariantKind::Tuple(split_top_level(g.stream()).len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => VariantKind::Struct(
            split_top_level(g.stream())
                .into_iter()
                .map(|f| field_name(&f).expect("expected a named variant field"))
                .collect(),
        ),
        other => panic!("unsupported variant shape: {other:?}"),
    };
    Variant { name, kind }
}

/// Advances past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Splits a field/variant list on commas that are outside any group and
/// outside angle brackets (`Vec<Option<T>>`, `BTreeMap<K, V>`).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// The identifier before the `:` in a named field chunk.
fn field_name(chunk: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    skip_attrs_and_vis(chunk, &mut i);
    ident_at(chunk, i)
}

// ── code generation ────────────────────────────────────────────────────

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f}))")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                     ::serde::Serialize::to_content(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Serialize::to_content(&self.{i})")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Seq(vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_content(f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_content(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), ::serde::Content::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(vec![(\"{vn}\".to_string(), ::serde::Content::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(content.get(\"{f}\")\
                         .ok_or_else(|| ::serde::Error::custom(\"missing field `{f}` in {name}\"))?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                         match content {{\n\
                             ::serde::Content::Map(_) => Ok({name} {{ {} }}),\n\
                             other => Err(::serde::Error::custom(format!(\"expected object for {name}, found {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(content: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::from_content(content)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                         match content {{\n\
                             ::serde::Content::Seq(items) if items.len() == {arity} => \
                                 Ok({name}({})),\n\
                             other => Err(::serde::Error::custom(format!(\"expected {arity}-element array for {name}, found {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push(format!("\"{vn}\" => Ok({name}::{vn}),"));
                        // Also accept the tagged form {"V": null}.
                        tagged_arms.push(format!(
                            "\"{vn}\" => match value {{\n\
                                 ::serde::Content::Null => Ok({name}::{vn}),\n\
                                 other => Err(::serde::Error::custom(format!(\"unexpected payload for unit variant {name}::{vn}: {{other:?}}\"))),\n\
                             }},"
                        ));
                    }
                    VariantKind::Tuple(1) => tagged_arms.push(format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_content(value)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vn}\" => match value {{\n\
                                 ::serde::Content::Seq(items) if items.len() == {n} => \
                                     Ok({name}::{vn}({})),\n\
                                 other => Err(::serde::Error::custom(format!(\"expected {n}-element array for {name}::{vn}, found {{other:?}}\"))),\n\
                             }},",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_content(value.get(\"{f}\")\
                                     .ok_or_else(|| ::serde::Error::custom(\"missing field `{f}` in {name}::{vn}\"))?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vn}\" => match value {{\n\
                                 ::serde::Content::Map(_) => Ok({name}::{vn} {{ {} }}),\n\
                                 other => Err(::serde::Error::custom(format!(\"expected object for {name}::{vn}, found {{other:?}}\"))),\n\
                             }},",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) -> Result<Self, ::serde::Error> {{\n\
                         match content {{\n\
                             ::serde::Content::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, value) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::Error::custom(format!(\"expected string or single-key object for {name}, found {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    }
}
