//! Offline stand-in for `rand_distr`: just the Zipf distribution, which
//! is all this workspace samples. Implemented by inverse-CDF lookup over
//! precomputed cumulative weights — object universes here are small
//! (tens to a few thousand), so the O(n) setup and O(log n) sampling are
//! more than fast enough.

#![forbid(unsafe_code)]

use std::fmt;

use rand::Rng;

/// Distributions that can be sampled with an [`Rng`].
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error building a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZipfError(&'static str);

impl fmt::Display for ZipfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ZipfError {}

/// Zipf distribution over `{1, …, n}` with exponent `s`: rank `k` has
/// probability proportional to `k^-s`. Samples are returned as `f64`
/// (matching `rand_distr::Zipf`), always an integral value in `[1, n]`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative normalized weights; `cdf[k-1]` = P(rank ≤ k).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution.
    ///
    /// # Errors
    ///
    /// Returns an error when `n == 0` or `s` is negative or non-finite.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError("Zipf requires n >= 1"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ZipfError("Zipf requires a finite non-negative exponent"));
        }
        let n = usize::try_from(n).map_err(|_| ZipfError("Zipf n too large"))?;
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        // Guard against floating-point shortfall at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let idx = self.cdf.partition_point(|&c| c < unit);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn samples_in_range_and_skewed() {
        let z = Zipf::new(100, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut low_rank = 0usize;
        for _ in 0..10_000 {
            let x = z.sample(&mut rng);
            assert!((1.0..=100.0).contains(&x));
            assert_eq!(x, x.trunc());
            if x <= 10.0 {
                low_rank += 1;
            }
        }
        // With s = 1.2 the top 10 ranks carry well over half the mass.
        assert!(low_rank > 5_000, "low_rank={low_rank}");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng) as usize - 1] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts={counts:?}");
        }
    }
}
