//! The paper's running banking example (§5, Figures 4–6): analyse two
//! choppings of a transfer application statically, then run the certified
//! chopping against the SI engine and measure the benefit.
//!
//! Run with `cargo run --example banking_chopping`.

use analysing_si::chopping::{advise_chopping, analyse_chopping, Criterion};
use analysing_si::mvcc::{Scheduler, SchedulerConfig, SiEngine};
use analysing_si::workloads::bank::{program_set_figure5, program_set_figure6};
use analysing_si::workloads::chopped::{self, TransferLoad};

fn main() {
    // ── Figure 5: transfer + lookupAll, both chopped ───────────────────
    let fig5 = program_set_figure5();
    println!("=== Figure 5: {{transfer, lookupAll}} chopped ===");
    for criterion in [Criterion::Ser, Criterion::Si, Criterion::Psi] {
        let report = analyse_chopping(&fig5, criterion, 1_000_000).unwrap();
        println!("  under {criterion}: {report}");
        if !report.correct {
            println!("    witness: {}", report.describe_witness(&fig5));
        }
    }
    assert!(!analyse_chopping(&fig5, Criterion::Si, 1_000_000).unwrap().correct);

    // ── Figure 6: transfer + per-account lookups ───────────────────────
    let fig6 = program_set_figure6();
    println!("\n=== Figure 6: {{transfer, lookup1, lookup2}} chopped ===");
    for criterion in [Criterion::Ser, Criterion::Si, Criterion::Psi] {
        let report = analyse_chopping(&fig6, criterion, 1_000_000).unwrap();
        println!("  under {criterion}: {report}");
        assert!(report.correct);
    }

    // ── The advisor: repair Figure 5 automatically ─────────────────────
    println!("\n=== chopping advisor on Figure 5 ===");
    let advice = advise_chopping(&fig5, Criterion::Si, 2_000_000).unwrap();
    println!(
        "  {} merges; {} pieces -> {} pieces; result correct: {}",
        advice.merges,
        fig5.piece_count(),
        advice.piece_count(),
        analyse_chopping(&advice.programs, Criterion::Si, 2_000_000).unwrap().correct,
    );

    // ── The §5 motivation: chopping cuts retry waste under SI ─────────
    println!("\n=== chopped vs unchopped transfers on the SI engine ===");
    let params = TransferLoad {
        accounts: 4,
        sessions: 8,
        transfers_per_session: 25,
        ballast_reads: 6,
        ..Default::default()
    };
    let measure = |label: &str, workload: &analysing_si::mvcc::Workload| {
        let (mut commits, mut aborts, mut ops) = (0u64, 0u64, 0u64);
        for seed in 0..10 {
            let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
            let run = s.run(&mut SiEngine::new(params.accounts), workload);
            commits += run.stats.committed;
            aborts += run.stats.aborted;
            ops += run.stats.ops_executed;
        }
        println!(
            "  {label:10} commits {commits:6}  aborts {aborts:6}  ops executed {ops:8}  \
             ops/commit {:.2}",
            ops as f64 / commits as f64
        );
        (commits, aborts, ops)
    };
    let un = measure("unchopped", &chopped::unchopped(&params));
    let ch = measure("chopped", &chopped::chopped(&params));
    // The chopped run does the same logical work with fewer wasted
    // operations per commit (each retry repeats only a small piece).
    let waste_un = un.2 as f64 / un.0 as f64;
    let waste_ch = ch.2 as f64 / ch.0 as f64;
    println!("\n  chopping reduced ops per committed transaction: {waste_un:.2} -> {waste_ch:.2}");
}
