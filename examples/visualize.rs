//! Render the paper's figures as Graphviz DOT files: the Figure 2
//! anomaly dependency graphs and a pair of engine-produced graphs.
//!
//! Run with `cargo run --example visualize [output-dir]`; pipe any of the
//! produced files through `dot -Tsvg` to get the diagrams.

use std::fs;
use std::path::PathBuf;

use analysing_si::analysis::history_witness;
use analysing_si::depgraph::{extract, to_dot};
use analysing_si::execution::SpecModel;
use analysing_si::model::{History, HistoryBuilder, Op};
use analysing_si::mvcc::{PsiEngine, Scheduler, SchedulerConfig, SiEngine};
use analysing_si::prelude::SearchBudget;
use analysing_si::workloads::fork::long_fork_repeated;
use analysing_si::workloads::random::{random_mix, RandomMix};

fn write_skew_history() -> History {
    let mut b = HistoryBuilder::new();
    let x = b.object("acct1");
    let y = b.object("acct2");
    let (s1, s2) = (b.session(), b.session());
    b.push_tx(s1, [Op::read(x, 0), Op::read(y, 0), Op::write(x, 1)]);
    b.push_tx(s2, [Op::read(x, 0), Op::read(y, 0), Op::write(y, 1)]);
    b.build()
}

fn long_fork_history() -> History {
    let mut b = HistoryBuilder::new();
    let x = b.object("x");
    let y = b.object("y");
    let (s1, s2, s3, s4) = (b.session(), b.session(), b.session(), b.session());
    b.push_tx(s1, [Op::write(x, 1)]);
    b.push_tx(s2, [Op::write(y, 1)]);
    b.push_tx(s3, [Op::read(x, 1), Op::read(y, 0)]);
    b.push_tx(s4, [Op::read(x, 0), Op::read(y, 1)]);
    b.build()
}

fn main() {
    let dir: PathBuf = std::env::args().nth(1).unwrap_or_else(|| "target/dot".to_owned()).into();
    fs::create_dir_all(&dir).expect("create output directory");
    let budget = SearchBudget::default();
    let mut written = Vec::new();

    // Figure 2(d): the SI witness graph of write skew.
    let ws = history_witness(SpecModel::Si, &write_skew_history(), &budget)
        .unwrap()
        .expect("write skew is in HistSI");
    let path = dir.join("fig2d_write_skew.dot");
    fs::write(&path, to_dot(&ws)).unwrap();
    written.push(path);

    // Figure 2(c): the PSI witness graph of the long fork.
    let lf = history_witness(SpecModel::Psi, &long_fork_history(), &budget)
        .unwrap()
        .expect("long fork is in HistPSI");
    let path = dir.join("fig2c_long_fork.dot");
    fs::write(&path, to_dot(&lf)).unwrap();
    written.push(path);

    // An SI-engine run on a random mix.
    let mix = RandomMix { sessions: 3, txs_per_session: 3, objects: 3, ..Default::default() };
    let mut s = Scheduler::new(SchedulerConfig { seed: 11, ..Default::default() });
    let run = s.run(&mut SiEngine::new(mix.objects), &random_mix(&mix));
    let path = dir.join("si_engine_run.dot");
    fs::write(&path, to_dot(&extract(&run.execution).unwrap())).unwrap();
    written.push(path);

    // A PSI-engine run that actually forked (search the seeds).
    for seed in 0..60 {
        let mut s = Scheduler::new(SchedulerConfig {
            seed,
            background_probability: 0.02,
            ..Default::default()
        });
        let run = s.run(&mut PsiEngine::new(2, 2), &long_fork_repeated(1, 4));
        let g = extract(&run.execution).unwrap();
        if analysing_si::analysis::check_si(&g).is_err() {
            let path = dir.join("psi_engine_fork.dot");
            fs::write(&path, to_dot(&g)).unwrap();
            written.push(path);
            break;
        }
    }

    println!("wrote {} DOT files:", written.len());
    for p in &written {
        println!("  {}", p.display());
    }
    println!("render with: dot -Tsvg <file> -o out.svg");
    assert!(written.len() >= 3);
}
