//! A history-checking CLI: read a history as JSON and report which
//! consistency models admit it (the runtime-monitoring use case of §1).
//!
//! Usage:
//!
//! ```text
//! cargo run --example checker -- path/to/history.json
//! cargo run --example checker -- --demo          # run on a built-in demo
//! cargo run --example checker -- --emit-demo     # print the demo JSON
//! ```
//!
//! The JSON schema is `si_model::History`'s serde form; `--emit-demo`
//! prints a template to adapt.

use std::process::ExitCode;

use analysing_si::analysis::{classify_history, history_witness, SearchBudget};
use analysing_si::execution::SpecModel;
use analysing_si::model::{History, HistoryBuilder, Op};

fn demo_history() -> History {
    let mut b = HistoryBuilder::new();
    let x = b.object("x");
    let y = b.object("y");
    let (s1, s2) = (b.session(), b.session());
    b.push_tx(s1, [Op::read(x, 0), Op::read(y, 0), Op::write(x, 1)]);
    b.push_tx(s2, [Op::read(x, 0), Op::read(y, 0), Op::write(y, 1)]);
    b.build()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let history: History = match args.first().map(String::as_str) {
        Some("--emit-demo") => {
            println!("{}", serde_json::to_string_pretty(&demo_history()).expect("demo serialises"));
            return ExitCode::SUCCESS;
        }
        Some("--demo") | None => demo_history(),
        Some(path) => {
            let data = match std::fs::read_to_string(path) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match serde_json::from_str(&data) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("error: {path} is not a valid history: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    if let Err(e) = history.validate() {
        eprintln!("error: malformed history: {e}");
        return ExitCode::FAILURE;
    }
    if let Err((tx, v)) = history.check_int() {
        eprintln!("history violates INT in {tx}: {v}");
        eprintln!("verdict: allowed by no consistency model");
        return ExitCode::FAILURE;
    }

    println!("checking history with {} transactions:\n{history}", history.tx_count());

    let budget = SearchBudget::default();
    match classify_history(&history, &budget) {
        Ok(verdict) => {
            println!("SER: {}", verdict.ser);
            println!("SI:  {}", verdict.si);
            println!("PSI: {}", verdict.psi);
            println!("PC:  {}  (prefix consistency; SI without conflict detection)", verdict.pc);
            println!("classification: {}", verdict.anomaly_label());
            // Show the witnessing dependency graph for the weakest
            // admitting model.
            let witness_model = if verdict.ser {
                Some(SpecModel::Ser)
            } else if verdict.si {
                Some(SpecModel::Si)
            } else if verdict.psi {
                Some(SpecModel::Psi)
            } else {
                None
            };
            if let Some(model) = witness_model {
                if let Ok(Some(g)) = history_witness(model, &history, &budget) {
                    println!("\nwitness dependency graph ({model}):\n{g}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
