//! A history-checking CLI: read a history as JSON and report which
//! consistency models admit it (the runtime-monitoring use case of §1).
//!
//! Usage:
//!
//! ```text
//! cargo run --example checker -- path/to/history.json
//! cargo run --example checker -- --demo                  # built-in demo
//! cargo run --example checker -- --emit-demo             # print the demo JSON
//! cargo run --example checker -- --demo --format json    # machine-readable
//! cargo run --example checker -- --demo --engine solver  # CDCL instead of enumerator
//! ```
//!
//! `--engine enumerator` (default) answers with the exact backtracking
//! search of `si-core`; `--engine solver` dispatches to the CDCL engine
//! of `si-solve`, which scales to histories the enumerator cannot touch
//! and returns certificates (a witness execution on membership, a cycle
//! or learned core on refutation). Either engine surfaces budget
//! exhaustion as an explicit verdict with partial search statistics.
//!
//! The input JSON schema is `si_model::History`'s serde form;
//! `--emit-demo` prints a template to adapt.

use std::process::ExitCode;

use analysing_si::analysis::{classify_history, history_witness, SearchBudget};
use analysing_si::execution::SpecModel;
use analysing_si::model::{History, HistoryBuilder, Op};
use analysing_si::solver::report::{enumerator_report, solver_report, CheckReport};
use analysing_si::solver::SolveBudget;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Enumerator,
    Solver,
}

fn demo_history() -> History {
    let mut b = HistoryBuilder::new();
    let x = b.object("x");
    let y = b.object("y");
    let (s1, s2) = (b.session(), b.session());
    b.push_tx(s1, [Op::read(x, 0), Op::read(y, 0), Op::write(x, 1)]);
    b.push_tx(s2, [Op::read(x, 0), Op::read(y, 0), Op::write(y, 1)]);
    b.build()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: checker [PATH | --demo | --emit-demo] \
         [--format text|json] [--engine enumerator|solver]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = Format::Text;
    let mut engine = Engine::Enumerator;
    let mut source: Option<String> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => match iter.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => return usage(),
            },
            "--engine" => match iter.next().as_deref() {
                Some("enumerator") => engine = Engine::Enumerator,
                Some("solver") => engine = Engine::Solver,
                _ => return usage(),
            },
            "--emit-demo" => {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&demo_history()).expect("demo serialises")
                );
                return ExitCode::SUCCESS;
            }
            "--demo" => source = None,
            path if !path.starts_with("--") => source = Some(path.to_string()),
            _ => return usage(),
        }
    }

    let history: History = match source {
        None => demo_history(),
        Some(path) => {
            let data = match std::fs::read_to_string(&path) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match serde_json::from_str(&data) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("error: {path} is not a valid history: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    if let Err(e) = history.validate() {
        eprintln!("error: malformed history: {e}");
        return ExitCode::FAILURE;
    }

    match format {
        Format::Json => {
            // INT violations and unjustifiable reads flow through the
            // engines (the solver names them in its proof), so the JSON
            // report is produced unconditionally.
            let report: CheckReport = match engine {
                Engine::Enumerator => enumerator_report(&history, &SearchBudget::default()),
                Engine::Solver => solver_report(&history, SolveBudget::default()),
            };
            println!("{}", serde_json::to_string_pretty(&report).expect("report serialises"));
            ExitCode::SUCCESS
        }
        Format::Text => run_text(&history, engine),
    }
}

fn run_text(history: &History, engine: Engine) -> ExitCode {
    if let Err((tx, v)) = history.check_int() {
        eprintln!("history violates INT in {tx}: {v}");
        eprintln!("verdict: allowed by no consistency model");
        return ExitCode::FAILURE;
    }

    println!("checking history with {} transactions:\n{history}", history.tx_count());

    match engine {
        Engine::Enumerator => {
            let budget = SearchBudget::default();
            match classify_history(history, &budget) {
                Ok(verdict) => {
                    println!("SER: {}", verdict.ser);
                    println!("SI:  {}", verdict.si);
                    println!("PSI: {}", verdict.psi);
                    println!(
                        "PC:  {}  (prefix consistency; SI without conflict detection)",
                        verdict.pc
                    );
                    println!("classification: {}", verdict.anomaly_label());
                    // Show the witnessing dependency graph for the weakest
                    // admitting model.
                    let witness_model = if verdict.ser {
                        Some(SpecModel::Ser)
                    } else if verdict.si {
                        Some(SpecModel::Si)
                    } else if verdict.psi {
                        Some(SpecModel::Psi)
                    } else {
                        None
                    };
                    if let Some(model) = witness_model {
                        if let Ok(Some(g)) = history_witness(model, history, &budget) {
                            println!("\nwitness dependency graph ({model}):\n{g}");
                        }
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Engine::Solver => {
            let report = solver_report(history, SolveBudget::default());
            for row in &report.classes {
                let stats = row.stats.expect("solver rows carry stats");
                println!(
                    "{}: {:?}  ({} decisions, {} conflicts, {} theory edges)",
                    row.mode, row.verdict, stats.decisions, stats.conflicts, stats.theory_edges
                );
            }
            ExitCode::SUCCESS
        }
    }
}
