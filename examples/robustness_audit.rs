//! Static robustness audit (§6): given only read/write sets, decide which
//! applications can be run under SI (or PSI) without paying for stronger
//! isolation.
//!
//! Run with `cargo run --example robustness_audit`.

use analysing_si::chopping::ProgramSet;
use analysing_si::robustness::{
    check_ser_robustness, check_ser_robustness_refined, check_si_robustness, StaticDepGraph,
};
use analysing_si::workloads::bank::program_set_unchopped;
use analysing_si::workloads::fork::program_set_figure12;
use analysing_si::workloads::{smallbank, tpcc_lite};

fn audit(name: &str, programs: &ProgramSet) {
    let graph = StaticDepGraph::from_programs(programs);
    let ser = check_ser_robustness(&graph);
    let psi = check_si_robustness(&graph, 1_000_000).unwrap();
    println!("── {name} ──");
    println!("  robust against SI (towards SER)?  {ser}");
    println!("  robust against PSI (towards SI)?  {psi}");
    match (ser.robust, psi.robust) {
        (true, true) => println!("  ⇒ run it on a PSI store; behaviour stays serializable."),
        (true, false) => println!("  ⇒ SI suffices for serializability, but PSI would fork."),
        (false, true) => println!("  ⇒ PSI behaves like SI here, but SI already anomalous."),
        (false, false) => println!("  ⇒ needs a serializable store (or code changes)."),
    }
    println!();
}

fn main() {
    // The banking application of Figure 4 (unchopped): transfer can write
    // what the lookups read — write skew is impossible here? transfer
    // reads and writes both accounts, so every anti-dependency pairs with
    // a write-write conflict.
    audit("banking {transfer, lookup1, lookup2}", &program_set_unchopped());

    // The Figure 12 social-network-style app: blind posts plus two-object
    // readers — the long fork.
    audit("posts {write1, write2, read1, read2}", &program_set_figure12());

    // The guarded-withdrawal app of Figure 2(d): the classic write skew.
    let mut ws = ProgramSet::new();
    let a1 = ws.object("acct1");
    let a2 = ws.object("acct2");
    let w1 = ws.add_program("withdraw1");
    ws.add_piece(w1, "if acct1+acct2 > 100 { acct1 -= 100 }", [a1, a2], [a1]);
    let w2 = ws.add_program("withdraw2");
    ws.add_piece(w2, "if acct1+acct2 > 100 { acct2 -= 100 }", [a1, a2], [a2]);
    audit("guarded withdrawals (write skew)", &ws);

    // A TPC-C-like mix: known to be robust against SI.
    audit(
        "tpcc-lite {new_order, payment, order_status, stock_level}",
        &tpcc_lite::program_set(4, 3),
    );

    // SmallBank: the canonical NON-robust application — write_check reads
    // savings without writing it while transact_savings writes it blindly.
    audit(
        "smallbank {balance, deposit, transact_savings, amalgamate, write_check}",
        &smallbank::program_set(2),
    );

    // Fixing write skew by materialising the constraint: both withdrawals
    // also write a shared "combined_total" object, turning the
    // anti-dependency pair into a write-write conflict — the standard
    // promotion fix. The plain §6.1 analysis cannot see the fix; the
    // vulnerability refinement of Fekete et al. [18] can: an RW edge
    // between write-conflicting programs is never part of a concurrent
    // pivot under first-committer-wins.
    let mut fixed = ProgramSet::new();
    let a1 = fixed.object("acct1");
    let a2 = fixed.object("acct2");
    let total = fixed.object("combined_total");
    let w1 = fixed.add_program("withdraw1");
    fixed.add_piece(w1, "guarded withdraw, updates total", [a1, a2, total], [a1, total]);
    let w2 = fixed.add_program("withdraw2");
    fixed.add_piece(w2, "guarded withdraw, updates total", [a1, a2, total], [a2, total]);
    let graph = StaticDepGraph::from_programs(&fixed);
    println!("── guarded withdrawals + materialised constraint ──");
    println!("  plain §6.1 analysis:     {}", check_ser_robustness(&graph));
    println!("  refined (Fekete [18]):   {}", check_ser_robustness_refined(&graph));
    assert!(!check_ser_robustness(&graph).robust);
    assert!(check_ser_robustness_refined(&graph).robust);
}
