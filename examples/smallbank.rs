//! SmallBank end to end: the canonical SI-robustness case study, from
//! static verdict to operational anomaly to the SSI fix.
//!
//! Run with `cargo run --example smallbank`.

use analysing_si::analysis::{check_ser, classify_graph};
use analysing_si::depgraph::extract;
use analysing_si::mvcc::{Scheduler, SchedulerConfig, SiEngine, SsiEngine};
use analysing_si::robustness::{
    check_ser_robustness, check_ser_robustness_refined, StaticDepGraph,
};
use analysing_si::workloads::smallbank::{self, Accounts};

fn main() {
    // ── Static analysis (§6.1): SmallBank is not robust against SI ─────
    let programs = smallbank::program_set(2);
    let graph = StaticDepGraph::from_programs(&programs);
    let plain = check_ser_robustness(&graph);
    let refined = check_ser_robustness_refined(&graph);
    println!("=== SmallBank static robustness (§6.1) ===");
    println!("  plain:   {plain}");
    println!("  refined: {refined}");
    assert!(!plain.robust && !refined.robust);
    println!("  ⇒ write_check reads savings that transact_savings writes blindly;");
    println!("    with a concurrent balance() reader the anti-dependencies close into");
    println!("    the three-transaction pivot cycle (the read-only-transaction anomaly).\n");

    // ── Operational reproduction on the SI engine ──────────────────────
    let accounts = Accounts::new(1);
    let scenario = smallbank::skew_scenario(&accounts, 0);
    let mut skew_runs = 0;
    let mut serializable_runs = 0;
    let seeds = 60;
    for seed in 0..seeds {
        let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
        let run = s.run(&mut SiEngine::new(accounts.object_count()), &scenario);
        let g = extract(&run.execution).unwrap();
        let class = classify_graph(&g);
        if class.ser {
            serializable_runs += 1;
        } else {
            assert!(class.si, "SI engine must stay within GraphSI");
            skew_runs += 1;
        }
    }
    println!("=== SI engine on the write_check/transact_savings race ({seeds} seeds) ===");
    println!("  serializable runs: {serializable_runs}");
    println!("  write-skew runs:   {skew_runs}");
    assert!(skew_runs > 0, "the anomaly should be reachable");

    // ── The fix: run the same scenario on the SSI engine ───────────────
    let mut ssi_anomalies = 0;
    let mut ssi_aborts = 0;
    for seed in 0..seeds {
        let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
        let run = s.run(&mut SsiEngine::new(accounts.object_count()), &scenario);
        ssi_aborts += run.stats.aborted;
        let g = extract(&run.execution).unwrap();
        if check_ser(&g).is_err() {
            ssi_anomalies += 1;
        }
    }
    println!("\n=== SSI engine on the same scenario ({seeds} seeds) ===");
    println!("  non-serializable runs: {ssi_anomalies}");
    println!("  aborts paid for safety: {ssi_aborts}");
    assert_eq!(ssi_anomalies, 0, "SSI must prevent the skew");
    println!("\nSmallBank: statically flagged, operationally reproduced, fixed by SSI.");
}
