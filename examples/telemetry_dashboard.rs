//! Comparative telemetry dashboard: run SmallBank and write-skew
//! workloads across all four engines and print the metrics the
//! `si-telemetry` instrumentation collects along the way.
//!
//! Run with `cargo run --example telemetry_dashboard`. Besides the
//! tables below, the run writes a structured JSONL trace (one event
//! per line) to `target/telemetry_dashboard.jsonl`.

use std::sync::Arc;

use analysing_si::mvcc::{
    Engine, PsiEngine, RunResult, Scheduler, SchedulerConfig, SerEngine, SiEngine, SsiEngine,
    Workload,
};
use analysing_si::telemetry::{
    CountingSink, FanoutSink, JsonlSink, MetricsRegistry, Telemetry, TelemetrySink,
};
use analysing_si::workloads::{bank, smallbank};

/// One engine run under full instrumentation: a `CountingSink` for the
/// event totals, a shared `JsonlSink` for the trace, and a fresh
/// `MetricsRegistry` on the scheduler for counters and latencies.
fn run_instrumented(
    engine_name: &str,
    workload: &Workload,
    seeds: u64,
    jsonl: &Arc<JsonlSink>,
    make_engine: &dyn Fn() -> Box<dyn Engine>,
) -> (RunResult, Arc<CountingSink>) {
    let counting = Arc::new(CountingSink::new());
    let fanout: Arc<dyn TelemetrySink> = Arc::new(FanoutSink::new(vec![
        counting.clone() as Arc<dyn TelemetrySink>,
        jsonl.clone() as Arc<dyn TelemetrySink>,
    ]));
    let telemetry = Telemetry::new(fanout);

    // One registry shared across every seed, so the report aggregates
    // the whole sweep for this engine.
    let metrics = MetricsRegistry::new();
    let mut last = None;
    for seed in 0..seeds {
        let mut engine = make_engine();
        engine.set_telemetry(telemetry.clone());
        let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
        s.set_metrics(metrics.clone());
        last = Some(s.run(engine.as_mut(), workload));
    }
    let run = last.expect("at least one seed");
    let _ = engine_name;
    (run, counting)
}

fn print_table(rows: &[(String, RunResult, Arc<CountingSink>)]) {
    println!(
        "  {:<6} {:>8} {:>9} {:>9} {:>8} {:>8} {:>12} {:>12}",
        "engine",
        "commits",
        "ww-abort",
        "rw-abort",
        "retries",
        "gave-up",
        "p50 latency",
        "p99 latency"
    );
    for (name, run, _) in rows {
        let m = &run.metrics;
        let hist = m.histograms.get("txn.commit_latency_nanos");
        let fmt_q = |q: f64| -> String {
            match hist.and_then(|h| h.quantile(q)) {
                Some(n) => format!("≤{:.1}µs", n as f64 / 1_000.0),
                None => "-".to_string(),
            }
        };
        println!(
            "  {:<6} {:>8} {:>9} {:>9} {:>8} {:>8} {:>12} {:>12}",
            name,
            m.counter("txn.committed"),
            m.counter("txn.aborted.ww_conflict"),
            m.counter("txn.aborted.rw_conflict"),
            m.counter("txn.retries"),
            m.counter("txn.gave_up"),
            fmt_q(0.5),
            fmt_q(0.99),
        );
    }
    println!();
    println!("  event-sink cross-check (CountingSink totals over the same sweep):");
    for (name, run, counting) in rows {
        println!(
            "    {:<6} begins={:<6} commits={:<6} conflict-aborts={:<5} (scheduler saw {} commits, {} aborts in final seed)",
            name,
            counting.begins(),
            counting.commits(),
            counting.conflict_aborts(),
            run.stats.committed,
            run.stats.aborted,
        );
    }
}

/// A named engine factory; boxed so the four variants share one list.
type EngineMaker<'a> = (&'a str, Box<dyn Fn() -> Box<dyn Engine>>);

fn sweep(
    title: &str,
    workload: &Workload,
    seeds: u64,
    jsonl: &Arc<JsonlSink>,
) -> Vec<(String, RunResult, Arc<CountingSink>)> {
    println!("=== {title} ({seeds} seeds per engine) ===");
    let objects = workload.object_count();
    let engines: Vec<EngineMaker> = vec![
        ("SI", Box::new(move || Box::new(SiEngine::new(objects)))),
        ("SER", Box::new(move || Box::new(SerEngine::new(objects)))),
        ("PSI", Box::new(move || Box::new(PsiEngine::new(objects, 2)))),
        ("SSI", Box::new(move || Box::new(SsiEngine::new(objects)))),
    ];
    let rows: Vec<_> = engines
        .iter()
        .map(|(name, make)| {
            let (run, counting) = run_instrumented(name, workload, seeds, jsonl, make.as_ref());
            (name.to_string(), run, counting)
        })
        .collect();
    print_table(&rows);
    println!();
    rows
}

fn main() {
    let trace_path = std::path::Path::new("target").join("telemetry_dashboard.jsonl");
    std::fs::create_dir_all("target").expect("create target dir");
    let jsonl = Arc::new(JsonlSink::to_file(&trace_path).expect("open trace file"));

    // SmallBank: the paper's §6.1 case study. Mixed procedures over two
    // customers keep the engines contending on the same six objects.
    let accounts = smallbank::Accounts::new(2);
    let smallbank_w = smallbank::mixed_workload(&accounts, 4, 3, 100);
    let smallbank_rows = sweep("SmallBank mixed workload", &smallbank_w, 20, &jsonl);

    // Write skew: Figure 2(d) as a workload. SI and PSI admit the
    // anomaly silently; SER and SSI pay for its absence in rw-aborts.
    let skew_w = bank::write_skew(2, 100);
    let skew_rows = sweep("Write-skew (Figure 2(d)) workload", &skew_w, 20, &jsonl);

    jsonl.flush().expect("flush trace");
    println!("Structured trace written to {}", trace_path.display());

    // Sanity: every engine committed work in both sweeps, and the SER/SSI
    // engines reported rw-conflict aborts somewhere across the two
    // contended workloads (their serializability enforcement at work).
    for rows in [&smallbank_rows, &skew_rows] {
        for (name, run, counting) in rows {
            assert!(run.metrics.counter("txn.committed") > 0, "{name}: no commits");
            assert!(counting.commits() > 0, "{name}: sink saw no commits");
        }
    }
    let rw = |rows: &[(String, RunResult, Arc<CountingSink>)], name: &str| {
        rows.iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, run, _)| run.metrics.counter("txn.aborted.rw_conflict"))
            .unwrap_or(0)
    };
    let ser_rw = rw(&smallbank_rows, "SER") + rw(&skew_rows, "SER");
    let ssi_rw = rw(&smallbank_rows, "SSI") + rw(&skew_rows, "SSI");
    assert!(
        ser_rw > 0 && ssi_rw > 0,
        "expected rw-conflict aborts from the serializable engines (ser={ser_rw}, ssi={ssi_rw})"
    );
}
