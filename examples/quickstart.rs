//! Quickstart: classify the paper's Figure 2 anomalies and materialise an
//! SI execution with the Theorem 10(i) construction.
//!
//! Run with `cargo run --example quickstart`.

use analysing_si::prelude::*;

fn main() {
    // ── Figure 2(d): write skew ────────────────────────────────────────
    // Two transactions check that the combined balance of two accounts
    // allows a withdrawal and then debit *different* accounts.
    let mut b = HistoryBuilder::new();
    let acct1 = b.object("acct1");
    let acct2 = b.object("acct2");
    let (s1, s2) = (b.session(), b.session());
    b.push_tx(s1, [Op::read(acct1, 60), Op::read(acct2, 60), Op::write(acct1, 0)]);
    b.push_tx(s2, [Op::read(acct1, 60), Op::read(acct2, 60), Op::write(acct2, 0)]);
    let write_skew = b.build_with_initial_values([(acct1, 60), (acct2, 60)]);

    println!("=== write skew (Figure 2(d)) ===");
    println!("{write_skew}");
    let verdict = classify_history(&write_skew, &SearchBudget::default()).unwrap();
    println!("verdict: {verdict}\n");
    assert!(verdict.si && !verdict.ser);

    // Obtain the witnessing dependency graph and rebuild a concrete SI
    // execution from it (the paper's soundness construction).
    let graph = history_witness(SpecModel::Si, &write_skew, &SearchBudget::default())
        .unwrap()
        .expect("write skew is allowed by SI");
    println!("witness dependency graph:\n{graph}");
    let exec = execution_from_graph(&graph).expect("graph is in GraphSI");
    assert!(SpecModel::Si.check(&exec).is_ok());
    println!(
        "constructed execution: CO total = {}, VIS edges = {}, CO edges = {}\n",
        exec.is_co_total(),
        exec.vis().edge_count(),
        exec.co().edge_count(),
    );

    // ── Figure 2(b): lost update ───────────────────────────────────────
    let mut b = HistoryBuilder::new();
    let acct = b.object("acct");
    let (s1, s2) = (b.session(), b.session());
    b.push_tx(s1, [Op::read(acct, 0), Op::write(acct, 50)]);
    b.push_tx(s2, [Op::read(acct, 0), Op::write(acct, 25)]);
    let lost_update = b.build();
    println!("=== lost update (Figure 2(b)) ===");
    let verdict = classify_history(&lost_update, &SearchBudget::default()).unwrap();
    println!("verdict: {verdict}\n");
    assert!(!verdict.si && !verdict.psi);

    // ── Figure 2(c): long fork ─────────────────────────────────────────
    let mut b = HistoryBuilder::new();
    let x = b.object("x");
    let y = b.object("y");
    let (s1, s2, s3, s4) = (b.session(), b.session(), b.session(), b.session());
    b.push_tx(s1, [Op::write(x, 1)]);
    b.push_tx(s2, [Op::write(y, 1)]);
    b.push_tx(s3, [Op::read(x, 1), Op::read(y, 0)]);
    b.push_tx(s4, [Op::read(x, 0), Op::read(y, 1)]);
    let long_fork = b.build();
    println!("=== long fork (Figure 2(c)) ===");
    let verdict = classify_history(&long_fork, &SearchBudget::default()).unwrap();
    println!("verdict: {verdict}");
    assert!(!verdict.si && verdict.psi);
}
