//! Online monitoring: feed the committed transactions of running engines
//! into the incremental [`SiMonitor`] and watch it certify SI runs and
//! flag PSI forks the moment they commit — the runtime-monitoring
//! application the paper motivates in §1.
//!
//! Run with `cargo run --example online_monitor`.

use std::sync::Arc;

use analysing_si::analysis::{ObservedTx, SiMonitor};
use analysing_si::depgraph::{extract, DependencyGraph};
use analysing_si::execution::SpecModel;
use analysing_si::mvcc::{Engine, PsiEngine, Scheduler, SchedulerConfig, SiEngine};
use analysing_si::relations::TxId;
use analysing_si::telemetry::{JsonlSink, MetricsRegistry, Telemetry};
use analysing_si::workloads::fork::long_fork_repeated;
use analysing_si::workloads::random::{random_mix, RandomMix};

/// Replays a finished run's dependency graph into a monitor, transaction
/// by transaction in commit order (TxId order for recorded runs), and
/// returns the step at which the monitor flagged a violation, if any.
fn replay(
    graph: &DependencyGraph,
    model: SpecModel,
    telemetry: &Telemetry,
) -> (SiMonitor, Option<usize>) {
    let mut monitor = SiMonitor::with_telemetry(model, telemetry.clone());
    let h = graph.history();
    let mut first_violation = None;
    // Recorded histories order TxIds by commit; sessions give SO
    // predecessors.
    let mut last_of_session: Vec<Option<TxId>> = vec![None; h.session_count()];
    for (step, t) in h.tx_ids().enumerate() {
        let session = h.session_of(t);
        let observed = ObservedTx {
            session_predecessor: session.and_then(|s| last_of_session[s.index()]),
            reads_from: h
                .transaction(t)
                .external_read_set()
                .into_iter()
                .map(|x| (x, graph.writer_for(t, x).expect("reads have writers")))
                .collect(),
            writes: h.transaction(t).write_set(),
        };
        monitor.append(observed);
        if let Some(s) = session {
            last_of_session[s.index()] = Some(t);
        }
        if first_violation.is_none() && !monitor.is_consistent() {
            first_violation = Some(step);
        }
    }
    (monitor, first_violation)
}

fn main() {
    // Every engine transaction and every monitor verdict below streams
    // into one JSONL trace; the scheduler's counters aggregate into one
    // metrics report printed at the end.
    let trace_path = std::path::Path::new("target").join("online_monitor.jsonl");
    std::fs::create_dir_all("target").expect("create target dir");
    let jsonl = Arc::new(JsonlSink::to_file(&trace_path).expect("open trace file"));
    let telemetry = Telemetry::new(jsonl.clone());
    let metrics = MetricsRegistry::new();

    // ── SI engine runs certify clean under the SI monitor ─────────────
    println!("=== monitoring SI-engine runs (SI monitor) ===");
    let mix = RandomMix { sessions: 4, txs_per_session: 8, objects: 6, ..Default::default() };
    for seed in 0..5 {
        let w = random_mix(&RandomMix { seed, ..mix });
        let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
        s.set_metrics(metrics.clone());
        let mut engine = SiEngine::new(mix.objects);
        engine.set_telemetry(telemetry.clone());
        let run = s.run(&mut engine, &w);
        let g = extract(&run.execution).unwrap();
        let (monitor, violation) = replay(&g, SpecModel::Si, &telemetry);
        println!(
            "  seed {seed}: {} transactions monitored, violation: {:?}",
            monitor.tx_count(),
            violation
        );
        assert!(violation.is_none(), "SI runs must monitor clean");
    }

    // ── PSI engine runs get flagged the moment the fork commits ───────
    println!("\n=== monitoring PSI-engine runs (SI monitor) ===");
    let workload = long_fork_repeated(1, 6);
    let mut flagged = 0;
    let mut clean = 0;
    for seed in 0..30 {
        let mut s = Scheduler::new(SchedulerConfig {
            seed,
            background_probability: 0.02,
            ..Default::default()
        });
        s.set_metrics(metrics.clone());
        let mut engine = PsiEngine::new(2, 2);
        engine.set_telemetry(telemetry.clone());
        let run = s.run(&mut engine, &workload);
        let g = extract(&run.execution).unwrap();

        let (monitor, violation) = replay(&g, SpecModel::Si, &telemetry);
        // The PSI monitor must stay quiet on its own model…
        let (psi_monitor, psi_violation) = replay(&g, SpecModel::Psi, &telemetry);
        assert!(psi_violation.is_none(), "PSI run flagged by the PSI monitor");
        assert!(psi_monitor.is_consistent());

        match violation {
            Some(step) => {
                flagged += 1;
                if flagged == 1 {
                    println!(
                        "  seed {seed}: fork flagged at transaction {step} of {}; witness {:?}",
                        monitor.tx_count(),
                        monitor.violation().unwrap()
                    );
                }
            }
            None => clean += 1,
        }
    }
    println!("  {flagged} forked runs flagged, {clean} fork-free runs clean (30 seeds)");
    assert!(flagged > 0, "expected at least one long fork");
    println!("\nonline monitor verdicts match the offline characterisations.");

    // ── Final metrics report across both monitored sweeps ─────────────
    jsonl.flush().expect("flush trace");
    let report = metrics.snapshot();
    println!("\n=== aggregated scheduler metrics (35 runs) ===");
    for (name, value) in &report.counters {
        println!("  {name:<28} {value}");
    }
    for (name, hist) in &report.histograms {
        let mean = hist.mean().map_or("-".to_string(), |m| format!("{:.1}µs", m / 1_000.0));
        println!("  {name:<28} count={} mean={mean}", hist.count);
    }
    println!("structured trace written to {}", trace_path.display());
}
