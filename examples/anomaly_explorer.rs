//! Anomaly explorer: run the same workloads on all three engines across
//! many seeds, extract the dependency graph of every run, and classify it
//! with Theorems 8/9/21 — an empirical reproduction of Figure 2's anomaly
//! table.
//!
//! Run with `cargo run --example anomaly_explorer`.

use analysing_si::analysis::classify_graph;
use analysing_si::depgraph::extract;
use analysing_si::execution::SpecModel;
use analysing_si::mvcc::{Engine, PsiEngine, Scheduler, SchedulerConfig, SerEngine, SiEngine};
use analysing_si::workloads::{bank, counter, fork};

#[derive(Default)]
struct Tally {
    serializable: usize,
    si_only: usize,
    psi_only: usize,
    runs: usize,
}

fn explore(
    name: &str,
    workload: &analysing_si::mvcc::Workload,
    make_engine: impl Fn() -> Box<dyn Engine>,
    background_probability: f64,
    seeds: u64,
) -> Tally {
    let mut tally = Tally::default();
    for seed in 0..seeds {
        let mut scheduler =
            Scheduler::new(SchedulerConfig { seed, background_probability, ..Default::default() });
        let mut engine = make_engine();
        let run = scheduler.run(engine.as_mut(), workload);

        // The run's ground-truth execution must satisfy its own model —
        // the engines are validated on every single run.
        let model = match engine.name() {
            "SI" => SpecModel::Si,
            "SER" => SpecModel::Ser,
            _ => SpecModel::Psi,
        };
        assert!(
            model.check(&run.execution).is_ok(),
            "{name}: engine {} produced an invalid execution (seed {seed})",
            engine.name()
        );

        let graph = extract(&run.execution).expect("valid executions extract cleanly");
        let class = classify_graph(&graph);
        tally.runs += 1;
        if class.ser {
            tally.serializable += 1;
        } else if class.si {
            tally.si_only += 1;
        } else if class.psi {
            tally.psi_only += 1;
        }
    }
    println!(
        "  {name:34} runs {:3}  serializable {:3}  SI-only {:3}  PSI-only {:3}",
        tally.runs, tally.serializable, tally.si_only, tally.psi_only
    );
    tally
}

fn main() {
    let seeds = 60;

    println!("=== SI engine ===");
    let ws = explore(
        "write-skew bank (Fig 2(d))",
        &bank::write_skew(1, 60),
        || Box::new(SiEngine::new(2)),
        0.0,
        seeds,
    );
    assert!(ws.si_only > 0, "SI engine should exhibit write skew");
    let lu = explore(
        "shared counter (Fig 2(b))",
        &counter::shared_counter(3, 3, 1),
        || Box::new(SiEngine::new(1)),
        0.0,
        seeds,
    );
    assert_eq!(lu.psi_only, 0, "SI engine must never lose updates");
    let lf = explore(
        "long-fork posts (Fig 2(c))",
        &fork::long_fork(1),
        || Box::new(SiEngine::new(2)),
        0.0,
        seeds,
    );
    assert_eq!(lf.psi_only, 0, "SI engine must never produce long forks");

    println!("\n=== SER engine (OCC baseline) ===");
    let t = explore(
        "write-skew bank (Fig 2(d))",
        &bank::write_skew(1, 60),
        || Box::new(SerEngine::new(2)),
        0.0,
        seeds,
    );
    assert_eq!(t.si_only + t.psi_only, 0, "SER engine must stay serializable");

    println!("\n=== PSI engine (2 replicas, lazy replication) ===");
    let t = explore(
        "long-fork posts (Fig 2(c))",
        &fork::long_fork_repeated(1, 6),
        || Box::new(PsiEngine::new(2, 2)),
        0.02,
        seeds,
    );
    assert!(t.psi_only > 0, "PSI engine should produce long forks");
    println!("  ({} of {} lazy-replication runs exhibited the fork)", t.psi_only, t.runs);

    println!("\nAll engine/anomaly relationships match Figure 2.");
}
