//! `si-sanitizer` front-end: hunt interleaving bugs in the MVCC engines.
//!
//! ```text
//! cargo run --example sanitize                      # all engines × all workloads
//! cargo run --example sanitize -- --engine SSI      # one engine
//! cargo run --example sanitize -- --workload lost_update
//! cargo run --example sanitize -- --mutants         # seeded-mutant demo
//! cargo run --example sanitize -- --random 500      # random walks instead of DFS
//! cargo run --example sanitize -- --replay repro.json
//! ```
//!
//! The default run exhaustively explores every bundled conflict workload
//! against every correct engine and reports interleaving counts, prune
//! ratios and oracle verdicts. `--mutants` switches to the seeded
//! defects and prints each minimised repro as JSON — paste it into a
//! file and `--replay` it to watch the same failure reproduce
//! byte-identically.
//!
//! Exits non-zero if a *correct* engine diverges (never expected) or a
//! *mutant* survives (its defect went undetected).

use std::process::ExitCode;

use analysing_si::sanitizer::{
    sanitize, scripts, EngineSpec, ExploreMode, ReplayScript, SanitizeConfig, SanitizeReport,
};

fn engines() -> Vec<EngineSpec> {
    vec![
        EngineSpec::Si,
        EngineSpec::Ser,
        EngineSpec::Ssi,
        EngineSpec::Psi { replicas: 2 },
        EngineSpec::ShardedSi { shards: 2, gc_interval: 1 },
    ]
}

fn mutants() -> Vec<EngineSpec> {
    vec![
        EngineSpec::MutantDropFcw,
        EngineSpec::MutantSnapshotLag { lag: 1 },
        EngineSpec::MutantShardFcwSkip { shards: 2, skip: 0 },
        EngineSpec::MutantShardLockOrder { shards: 2 },
    ]
}

fn print_report(name: &str, report: &SanitizeReport) {
    let prune_ratio = if report.explored + report.pruned > 0 {
        report.pruned as f64 / (report.explored + report.pruned) as f64
    } else {
        0.0
    };
    println!(
        "  {:4} × {:15} {:>7} interleavings, {:>6} pruned ({:4.1}%), {}",
        report.engine,
        name,
        report.explored,
        report.pruned,
        100.0 * prune_ratio,
        if report.is_clean() {
            "clean".to_string()
        } else {
            format!("{} FAILURES", report.failures.len())
        },
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value_of =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();

    if let Some(path) = value_of("--replay") {
        return replay(&path);
    }

    let mode = match value_of("--random") {
        Some(walks) => ExploreMode::Random {
            walks: walks.parse().expect("--random takes a walk count"),
            seed: 0x5A01_712E,
        },
        None => ExploreMode::Exhaustive,
    };
    let config = SanitizeConfig { mode, stop_at_first_failure: true, ..SanitizeConfig::default() };

    let engine_filter = value_of("--engine");
    let workload_filter = value_of("--workload");
    let specs = if flag("--mutants") { mutants() } else { engines() };
    let specs: Vec<EngineSpec> = specs
        .into_iter()
        .filter(|s| engine_filter.as_deref().is_none_or(|f| s.name().eq_ignore_ascii_case(f)))
        .collect();

    let mut failed = false;
    for spec in &specs {
        for (name, workload) in scripts::bundled() {
            if workload_filter.as_deref().is_some_and(|f| f != name) {
                continue;
            }
            let report = sanitize(spec, &workload, &config);
            print_report(name, &report);
            if flag("--mutants") {
                if report.is_clean() {
                    // Some workloads cannot expose a given defect; only a
                    // mutant clean across ALL workloads is a miss.
                    continue;
                }
                let case = &report.failures[0];
                println!(
                    "    caught: {} (schedule {} → {} decisions after ddmin)",
                    case.failures[0],
                    case.found_decisions,
                    case.replay.decisions.len(),
                );
                println!("    repro JSON:\n{}", indent(&case.replay.to_json(), 6));
            } else if !report.is_clean() {
                failed = true;
                for case in &report.failures {
                    for f in &case.failures {
                        eprintln!("    DIVERGENCE: {f}");
                    }
                    eprintln!("    repro:\n{}", indent(&case.replay.to_json(), 6));
                }
            }
        }
    }

    if flag("--mutants") {
        // Every mutant must be killed by at least one workload.
        for spec in &specs {
            let caught =
                scripts::bundled().iter().any(|(_, w)| !sanitize(spec, w, &config).is_clean());
            if !caught {
                eprintln!("mutant {} survived every bundled workload", spec.name());
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn replay(path: &str) -> ExitCode {
    let json = match std::fs::read_to_string(path) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let script = match ReplayScript::from_json(&json) {
        Ok(script) => script,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let artifacts = script.replay();
    let failures = analysing_si::sanitizer::check_artifacts(&script.engine, &artifacts);
    println!(
        "replayed {} decisions against {}: {} committed, {} aborted",
        artifacts.decisions.len(),
        script.engine.name(),
        artifacts.counters.committed,
        artifacts.counters.aborted,
    );
    if failures.is_empty() {
        println!("verdict: clean");
    } else {
        for f in &failures {
            println!("verdict: {f}");
        }
    }
    ExitCode::SUCCESS
}

fn indent(text: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    text.lines().map(|l| format!("{pad}{l}")).collect::<Vec<_>>().join("\n")
}
