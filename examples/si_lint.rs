//! `si-lint` front-end: lint the built-in workloads (or a chosen subset)
//! and print text or JSON reports.
//!
//! ```text
//! cargo run --example si_lint                      # all targets, text
//! cargo run --example si_lint -- --json            # all targets, JSON
//! cargo run --example si_lint -- smallbank fig5    # chosen targets
//! cargo run --example si_lint -- --list            # list target names
//! cargo run --example si_lint -- --explain SI001   # what a code means
//! cargo run --example si_lint -- --confirm         # run every witness
//! ```
//!
//! `--confirm` compiles each diagnostic's witness into concrete scripts
//! plus a scheduler advisory, replays it on the matching live MVCC
//! engine, and judges the recorded history with the CDCL solver; robust
//! verdicts are counter-validated by exhaustive exploration. The
//! resulting matrix is printed as text (or JSON with `--json`, diffed
//! against `tests/golden/si_lint_confirm.json` in CI).
//!
//! The JSON output is deterministic and is diffed against
//! `tests/golden/si_lint_all.json` in CI — regenerate the files with
//! `cargo run --example si_lint -- --json > tests/golden/si_lint_all.json`
//! and
//! `cargo run --release --example si_lint -- --confirm --json > tests/golden/si_lint_confirm.json`
//! after an intentional behaviour change.
//!
//! Exits non-zero when any linted target has an error-severity finding
//! *that the built-in expectation does not allow* — this binary is a
//! demonstration, and SmallBank (for example) is *supposed* to be flagged
//! — or when `--confirm` finds a row the runtime stack contradicts.

use analysing_si::chopping::ProgramSet;
use analysing_si::lint::{
    confirm_app, confirm_program_set, confirms_to_json, lint_app_with_metrics,
    lint_program_set_with_metrics, ConfirmOptions, ConfirmationReport, DiagCode, IrApp,
    LintOptions, LintReport, SessionLevel, Stmt,
};
use analysing_si::telemetry::MetricsRegistry;
use analysing_si::workloads::{bank, fork, smallbank, tpcc_lite};

/// A built-in lint target: a name and the program set (or IR) behind it.
struct Target {
    name: &'static str,
    about: &'static str,
    kind: TargetKind,
}

enum TargetKind {
    Sets(ProgramSet),
    Ir(IrApp),
}

/// The guarded-withdrawal write skew of Figure 2(d), written in the IR:
/// parameterised accounts, a conditional debit — the derived sets flag it
/// even though every write sits behind a branch.
fn write_skew_ir() -> IrApp {
    let mut app = IrApp::new();
    let acct1 = app.scalar("acct1");
    let acct2 = app.scalar("acct2");
    let w1 = app.program("withdraw1");
    app.piece(
        w1,
        "if acct1+acct2 > 100 { acct1 -= 100 }",
        vec![Stmt::branch(
            vec![acct1.clone(), acct2.clone()],
            vec![Stmt::write(acct1.clone())],
            vec![],
        )],
    );
    let w2 = app.program("withdraw2");
    app.piece(
        w2,
        "if acct1+acct2 > 100 { acct2 -= 100 }",
        vec![Stmt::branch(
            vec![acct1.clone(), acct2.clone()],
            vec![Stmt::write(acct2.clone())],
            vec![],
        )],
    );
    app
}

/// SmallBank with its pivot program (`write_check`) annotated to run at
/// SER: the dangerous structure is discharged by the session-level
/// annotation (SI007 instead of SI001) while the long fork remains.
fn mixed_ssi_ir() -> IrApp {
    let mut app = IrApp::from_program_set(&smallbank::program_set(1));
    let pivot = (0..app.program_count())
        .map(analysing_si::lint::IrProgramId)
        .find(|&p| app.program_name(p) == "write_check")
        .expect("smallbank has a write_check program");
    app.set_level(pivot, SessionLevel::Ser);
    app
}

/// Two writers whose constraint is already materialised: both write the
/// shared `total` object, so first-committer-wins serialises them and
/// the would-be dangerous structure cannot occur (SI007 only).
fn materialised_set() -> ProgramSet {
    let mut ps = ProgramSet::new();
    let x = ps.object("x");
    let y = ps.object("y");
    let total = ps.object("total");
    let w1 = ps.add_program("update_x");
    ps.add_piece(w1, "x += d; total += d", [x, y, total], [x, total]);
    let w2 = ps.add_program("update_y");
    ps.add_piece(w2, "y += d; total += d", [x, y, total], [y, total]);
    ps
}

fn targets() -> Vec<Target> {
    vec![
        Target {
            name: "smallbank",
            about: "the canonical non-robust OLTP mix (must emit SI001)",
            kind: TargetKind::Sets(smallbank::program_set(1)),
        },
        Target {
            name: "tpcc-lite",
            about: "TPC-C-like mix, known SER-robust under SI",
            kind: TargetKind::Sets(tpcc_lite::program_set(2, 2)),
        },
        Target {
            name: "write-skew",
            about: "guarded withdrawals in the IR (conditional writes, derived sets)",
            kind: TargetKind::Ir(write_skew_ir()),
        },
        Target {
            name: "fig5",
            about: "banking chopping of Figure 5 (incorrect under SI)",
            kind: TargetKind::Sets(bank::program_set_figure5()),
        },
        Target {
            name: "fig6",
            about: "banking chopping of Figure 6 (correct everywhere)",
            kind: TargetKind::Sets(bank::program_set_figure6()),
        },
        Target {
            name: "fig11",
            about: "chopping correct under SI but not SER",
            kind: TargetKind::Sets(fork::program_set_figure11()),
        },
        Target {
            name: "fig12",
            about: "the long fork: PSI-only chopping, not PSI-robust",
            kind: TargetKind::Sets(fork::program_set_figure12()),
        },
        Target {
            name: "mixed-ssi",
            about: "smallbank with the pivot annotated SER (structure discharged)",
            kind: TargetKind::Ir(mixed_ssi_ir()),
        },
        Target {
            name: "materialised",
            about: "write-write conflict already materialised (SI007 only)",
            kind: TargetKind::Sets(materialised_set()),
        },
    ]
}

/// Targets whose error findings are expected (the linter doing its job on
/// a knowingly broken application).
fn errors_expected(name: &str) -> bool {
    matches!(name, "smallbank" | "write-skew" | "fig5" | "fig11" | "fig12")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let list = args.iter().any(|a| a == "--list");
    let confirm = args.iter().any(|a| a == "--confirm");
    if let Some(pos) = args.iter().position(|a| a == "--explain") {
        let Some(code) = args.get(pos + 1) else {
            eprintln!("--explain needs a code, e.g. --explain SI001");
            std::process::exit(2);
        };
        let known = [
            DiagCode::Si001,
            DiagCode::Si002,
            DiagCode::Si003,
            DiagCode::Si004,
            DiagCode::Si005,
            DiagCode::Si006,
            DiagCode::Si007,
        ];
        match known.iter().find(|c| c.as_str().eq_ignore_ascii_case(code)) {
            Some(c) => println!("{}", c.explain()),
            None => {
                eprintln!("unknown code {code:?}; codes are SI001..SI007");
                std::process::exit(2);
            }
        }
        return;
    }
    let chosen: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();

    let all = targets();
    if list {
        for t in &all {
            println!("{:<12} {}", t.name, t.about);
        }
        return;
    }
    for name in &chosen {
        if !all.iter().any(|t| t.name == *name) {
            eprintln!("unknown target {name:?}; try --list");
            std::process::exit(2);
        }
    }

    if confirm {
        let opts = ConfirmOptions::default();
        let mut confirms: Vec<ConfirmationReport> = Vec::new();
        for t in &all {
            if !chosen.is_empty() && !chosen.contains(&t.name) {
                continue;
            }
            confirms.push(match &t.kind {
                TargetKind::Sets(ps) => confirm_program_set(t.name, ps, &opts),
                TargetKind::Ir(app) => confirm_app(t.name, app, &opts),
            });
        }
        if json {
            println!("{}", confirms_to_json(&confirms));
        } else {
            for c in &confirms {
                print!("{}", c.render_text());
                println!();
            }
        }
        let contradicted = confirms.iter().filter(|c| !c.is_confirmed()).count();
        if contradicted > 0 {
            eprintln!("{contradicted} target(s) have UNCONFIRMED rows");
            std::process::exit(1);
        }
        return;
    }

    let metrics = MetricsRegistry::new();
    let opts = LintOptions::default();
    let mut reports: Vec<LintReport> = Vec::new();
    for t in &all {
        if !chosen.is_empty() && !chosen.contains(&t.name) {
            continue;
        }
        let report = match &t.kind {
            TargetKind::Sets(ps) => lint_program_set_with_metrics(t.name, ps, &opts, &metrics),
            TargetKind::Ir(app) => lint_app_with_metrics(t.name, app, &opts, &metrics),
        };
        reports.push(report);
    }

    let mut unexpected = 0;
    if json {
        println!("{}", analysing_si::lint::diag::reports_to_json(&reports));
    } else {
        for r in &reports {
            print!("{}", r.render_text());
            println!();
        }
        let snap = metrics.snapshot();
        println!("── metrics ──");
        for key in ["lint.runs", "lint.diagnostics", "lint.repairs_proposed"] {
            println!("  {key}: {}", snap.counter(key));
        }
    }
    for r in &reports {
        if !r.is_clean() && !errors_expected(&r.target) {
            eprintln!("unexpected errors in target {:?}", r.target);
            unexpected += 1;
        }
    }
    if unexpected > 0 {
        std::process::exit(1);
    }
}
