//! End-to-end reproduction of Figure 2: each anomaly is checked at every
//! layer of the stack — axiomatic brute force (Definition 4/20),
//! dependency-graph search (Theorems 8/9/21), and the MVCC engines.

use analysing_si::analysis::{classify_history, history_membership, SearchBudget};
use analysing_si::execution::brute::{self, BruteConfig};
use analysing_si::execution::SpecModel;
use analysing_si::model::{History, HistoryBuilder, Op};

fn session_guarantee_history(read_value: u64) -> History {
    let mut b = HistoryBuilder::new();
    let x = b.object("x");
    let s = b.session();
    b.push_tx(s, [Op::write(x, 1)]);
    b.push_tx(s, [Op::read(x, read_value)]);
    b.build()
}

fn lost_update() -> History {
    let mut b = HistoryBuilder::new();
    let acct = b.object("acct");
    let (s1, s2) = (b.session(), b.session());
    b.push_tx(s1, [Op::read(acct, 0), Op::write(acct, 50)]);
    b.push_tx(s2, [Op::read(acct, 0), Op::write(acct, 25)]);
    b.build()
}

fn long_fork() -> History {
    let mut b = HistoryBuilder::new();
    let x = b.object("x");
    let y = b.object("y");
    let (s1, s2, s3, s4) = (b.session(), b.session(), b.session(), b.session());
    b.push_tx(s1, [Op::write(x, 1)]);
    b.push_tx(s2, [Op::write(y, 1)]);
    b.push_tx(s3, [Op::read(x, 1), Op::read(y, 0)]);
    b.push_tx(s4, [Op::read(x, 0), Op::read(y, 1)]);
    b.build()
}

fn write_skew() -> History {
    let mut b = HistoryBuilder::new();
    let a1 = b.object("acct1");
    let a2 = b.object("acct2");
    let (s1, s2) = (b.session(), b.session());
    b.push_tx(s1, [Op::read(a1, 70), Op::read(a2, 80), Op::write(a1, 0)]);
    b.push_tx(s2, [Op::read(a1, 70), Op::read(a2, 80), Op::write(a2, 0)]);
    b.build_with_initial_values([(a1, 70), (a2, 80)])
}

/// The expected verdict triples (SER, SI, PSI) for each figure.
fn expectations() -> Vec<(&'static str, History, (bool, bool, bool))> {
    vec![
        ("Fig 2(a) fresh session read", session_guarantee_history(1), (true, true, true)),
        ("Fig 2(a) stale session read", session_guarantee_history(0), (false, false, false)),
        ("Fig 2(b) lost update", lost_update(), (false, false, false)),
        ("Fig 2(c) long fork", long_fork(), (false, false, true)),
        ("Fig 2(d) write skew", write_skew(), (false, true, true)),
    ]
}

#[test]
fn figure2_via_dependency_graphs() {
    for (name, history, (ser, si, psi)) in expectations() {
        let verdict = classify_history(&history, &SearchBudget::default()).unwrap();
        assert_eq!(verdict.ser, ser, "{name}: SER verdict");
        assert_eq!(verdict.si, si, "{name}: SI verdict");
        assert_eq!(verdict.psi, psi, "{name}: PSI verdict");
        assert!(verdict.respects_inclusions(), "{name}: inclusion chain broken");
    }
}

#[test]
fn figure2_via_axiomatic_brute_force() {
    let cfg = BruteConfig::default();
    for (name, history, (ser, si, psi)) in expectations() {
        assert_eq!(brute::is_allowed(SpecModel::Ser, &history, &cfg).unwrap(), ser, "{name}");
        assert_eq!(brute::is_allowed(SpecModel::Si, &history, &cfg).unwrap(), si, "{name}");
        assert_eq!(brute::is_allowed(SpecModel::Psi, &history, &cfg).unwrap(), psi, "{name}");
    }
}

#[test]
fn graph_search_and_brute_force_agree_on_all_figures() {
    let cfg = BruteConfig::default();
    let budget = SearchBudget::default();
    for (name, history, _) in expectations() {
        for model in SpecModel::ALL {
            assert_eq!(
                history_membership(model, &history, &budget).unwrap(),
                brute::is_allowed(model, &history, &cfg).unwrap(),
                "{name} disagreement under {model}"
            );
        }
    }
}

#[test]
fn anomaly_labels_match_the_figure() {
    let budget = SearchBudget::default();
    let label = |h: &History| classify_history(h, &budget).unwrap().anomaly_label().to_owned();
    assert_eq!(label(&write_skew()), "SI-only (write-skew-like)");
    assert_eq!(label(&long_fork()), "PSI-only (long-fork-like)");
    assert_eq!(label(&lost_update()), "aborted-by-all (lost-update-like)");
    assert_eq!(label(&session_guarantee_history(1)), "serializable");
}
