//! Integration tests for §6: the Theorem 19 and 22 dichotomies as
//! properties over random graphs, and the static analyses' soundness
//! against engine runs.

mod common;

use common::arb_dependency_graph;
use proptest::prelude::*;

use analysing_si::analysis::{check_psi, check_ser, check_si};
use analysing_si::chopping::ProgramSet;
use analysing_si::depgraph::extract;
use analysing_si::mvcc::{Scheduler, SchedulerConfig, SiEngine};
use analysing_si::robustness::{
    check_ser_robustness, check_ser_robustness_refined, check_si_robustness, in_psi_not_si,
    in_si_not_ser, shape_psi_not_si, shape_si_not_ser, DangerousStructure, StaticDepGraph,
};
use analysing_si::workloads::tpcc_lite;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Theorem 19: the cycle-shape characterisation of GraphSI \ GraphSER
    /// coincides with the membership difference.
    #[test]
    fn theorem19_shape_equivalence(g in arb_dependency_graph(7, 3)) {
        prop_assert_eq!(shape_si_not_ser(&g), in_si_not_ser(&g));
    }

    /// Theorem 22: likewise for GraphPSI \ GraphSI.
    #[test]
    fn theorem22_shape_equivalence(g in arb_dependency_graph(7, 3)) {
        prop_assert_eq!(shape_psi_not_si(&g), in_psi_not_si(&g));
    }

    /// The three graph classes are totally ordered by inclusion.
    #[test]
    fn graph_class_inclusions(g in arb_dependency_graph(8, 3)) {
        if check_ser(&g).is_ok() {
            prop_assert!(check_si(&g).is_ok(), "GraphSER ⊄ GraphSI");
        }
        if check_si(&g).is_ok() {
            prop_assert!(check_psi(&g).is_ok(), "GraphSI ⊄ GraphPSI");
        }
    }

    /// The refined §6.1 analysis accepts everything the plain one accepts.
    #[test]
    fn refined_is_laxer(
        sets in proptest::collection::vec(
            (proptest::collection::vec(0..4usize, 0..3),
             proptest::collection::vec(0..4usize, 0..3)),
            1..5,
        ),
    ) {
        let mut ps = ProgramSet::new();
        let objs: Vec<_> = (0..4).map(|i| ps.object(&format!("o{i}"))).collect();
        for (i, (reads, writes)) in sets.iter().enumerate() {
            let p = ps.add_program(&format!("p{i}"));
            ps.add_piece(
                p,
                "piece",
                reads.iter().map(|&r| objs[r]),
                writes.iter().map(|&w| objs[w]),
            );
        }
        let g = StaticDepGraph::from_programs(&ps);
        if check_ser_robustness(&g).robust {
            prop_assert!(check_ser_robustness_refined(&g).robust);
        }
    }
}

/// Soundness of the §6.1 static analysis against the running SI engine:
/// if the analysis declares an application robust, then *no* run of that
/// application on the SI engine may leave `GraphSER`.
#[test]
fn static_ser_robustness_is_sound_for_tpcc() {
    let ps = tpcc_lite::program_set(3, 2);
    let graph = StaticDepGraph::from_programs(&ps);
    assert!(check_ser_robustness(&graph).robust, "tpcc-lite should be robust");

    let schema = tpcc_lite::Schema::new(3, 2);
    let w = tpcc_lite::mixed_workload(&schema, 4, 3, 100);
    for seed in 0..30 {
        let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
        let run = s.run(&mut SiEngine::new(schema.object_count()), &w);
        let g = extract(&run.execution).unwrap();
        assert!(
            check_ser(&g).is_ok(),
            "robust application produced a non-serializable SI run (seed {seed})"
        );
    }
}

/// The write-skew application is (correctly) flagged, and the witness
/// structure is genuine.
#[test]
fn write_skew_witness_structure_is_genuine() {
    let mut ps = ProgramSet::new();
    let x = ps.object("x");
    let y = ps.object("y");
    let w1 = ps.add_program("w1");
    ps.add_piece(w1, "p", [x, y], [x]);
    let w2 = ps.add_program("w2");
    ps.add_piece(w2, "p", [x, y], [y]);
    let graph = StaticDepGraph::from_programs(&ps);
    let report = check_ser_robustness(&graph);
    assert!(!report.robust);
    let Some(DangerousStructure::AdjacentAntiDependencies { a, b, c, closing_path }) =
        report.witness
    else {
        panic!("expected an adjacent anti-dependency witness");
    };
    assert!(graph.rw().contains(a, b));
    assert!(graph.rw().contains(b, c));
    if c != a {
        assert_eq!(closing_path.first(), Some(&c));
        assert_eq!(closing_path.last(), Some(&a));
        for pair in closing_path.windows(2) {
            assert!(graph.all().contains(pair[0], pair[1]));
        }
    }
}

/// §6.2 separates the long-fork app from the write-skew app.
#[test]
fn psi_robustness_separates_the_figures() {
    // Long-fork app (Figure 12 unchopped): not robust against PSI.
    let mut lf = ProgramSet::new();
    let x = lf.object("x");
    let y = lf.object("y");
    let w1 = lf.add_program("write1");
    lf.add_piece(w1, "p", [], [x]);
    let w2 = lf.add_program("write2");
    lf.add_piece(w2, "p", [], [y]);
    let r1 = lf.add_program("read1");
    lf.add_piece(r1, "p", [x, y], []);
    let r2 = lf.add_program("read2");
    lf.add_piece(r2, "p", [x, y], []);
    let g = StaticDepGraph::from_programs(&lf);
    assert!(!check_si_robustness(&g, 1_000_000).unwrap().robust);
    // But it *is* robust against SI towards SER (writers read nothing).
    assert!(check_ser_robustness(&g).robust);

    // Write-skew app: exactly the other way around.
    let mut ws = ProgramSet::new();
    let x = ws.object("x");
    let y = ws.object("y");
    let w1 = ws.add_program("w1");
    ws.add_piece(w1, "p", [x, y], [x]);
    let w2 = ws.add_program("w2");
    ws.add_piece(w2, "p", [x, y], [y]);
    let g = StaticDepGraph::from_programs(&ws);
    assert!(check_si_robustness(&g, 1_000_000).unwrap().robust);
    assert!(!check_ser_robustness(&g).robust);
}
