//! Shared generators for the cross-crate integration and property tests.
#![allow(dead_code)] // each test binary uses a different subset

use proptest::prelude::*;

use analysing_si::depgraph::{DepGraphBuilder, DependencyGraph};
use analysing_si::model::{History, HistoryBuilder, Obj, Op};
use analysing_si::relations::TxId;

/// Parameters of a random dependency-graph shape.
#[derive(Debug, Clone)]
pub struct GraphShape {
    /// Per transaction: `(reads, writes)` object index sets.
    pub txs: Vec<(Vec<usize>, Vec<usize>)>,
    /// Number of sessions the transactions are dealt into (round-robin).
    pub sessions: usize,
    /// Number of objects.
    pub objects: usize,
    /// Per object: a permutation seed for the WW order.
    pub ww_seeds: Vec<u64>,
    /// Per (tx, object): selector for which writer the read observes.
    pub wr_seed: u64,
}

/// Strategy for random well-formed dependency graphs.
///
/// Construction guarantees Definition 6 well-formedness:
/// * every write value is unique (`100 × tx + obj`), so read values pin
///   writers unambiguously;
/// * each transaction lists its external reads before its writes;
/// * `WW(x)` is the init transaction followed by a seeded permutation of
///   the writers;
/// * each external read of `x` observes a seeded choice among `x`'s
///   writers (or init).
///
/// The generated graph may or may not lie in `GraphSI` — membership tests
/// filter as needed.
pub fn arb_dependency_graph(
    max_txs: usize,
    max_objects: usize,
) -> impl Strategy<Value = DependencyGraph> {
    let tx = (
        proptest::collection::vec(0..max_objects, 0..3), // reads
        proptest::collection::vec(0..max_objects, 0..3), // writes
    );
    (
        proptest::collection::vec(tx, 1..=max_txs),
        1..4usize,
        proptest::collection::vec(any::<u64>(), max_objects),
        any::<u64>(),
    )
        .prop_map(move |(txs, sessions, ww_seeds, wr_seed)| {
            build_graph(&GraphShape { txs, sessions, objects: max_objects, ww_seeds, wr_seed })
        })
}

/// Deterministically materialises a [`GraphShape`].
pub fn build_graph(shape: &GraphShape) -> DependencyGraph {
    let history = build_history(shape);
    let n = history.tx_count();

    let mut builder = DepGraphBuilder::new(history.clone());
    for x_index in 0..shape.objects {
        let x = Obj::from_index(x_index);
        // Writers of x, excluding init.
        let mut writers: Vec<TxId> =
            (1..n).map(TxId::from_index).filter(|&t| history.transaction(t).writes_to(x)).collect();
        // Seeded permutation (Fisher-Yates with a splitmix-style stream).
        let mut state = shape.ww_seeds.get(x_index).copied().unwrap_or(0);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for i in (1..writers.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            writers.swap(i, j);
        }
        let mut order = vec![TxId(0)];
        order.extend(writers);
        builder.ww_order(x, order);
    }
    // WR edges follow from the unique values: infer_wr resolves all.
    builder.infer_wr();
    builder.build().expect("generated shape is well-formed")
}

/// Builds the history of a [`GraphShape`]: unique write values, external
/// reads before writes, transactions dealt into sessions round-robin.
pub fn build_history(shape: &GraphShape) -> History {
    let mut b = HistoryBuilder::new();
    let objects: Vec<Obj> = (0..shape.objects).map(|i| b.object(&format!("x{i}"))).collect();
    let session_ids: Vec<_> = (0..shape.sessions).map(|_| b.session()).collect();

    // Pre-compute each transaction's final write values (unique).
    let write_value = |tx_number: usize, obj: usize| 100 * (tx_number as u64 + 1) + obj as u64;

    // For reads we need the value of the chosen writer; writers can only
    // be transactions appearing anywhere in the history (or init). Choice
    // is seeded.
    let mut state = shape.wr_seed;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state
    };

    for (i, (reads, writes)) in shape.txs.iter().enumerate() {
        let mut reads: Vec<usize> = reads.clone();
        reads.sort_unstable();
        reads.dedup();
        let mut writes: Vec<usize> = writes.clone();
        writes.sort_unstable();
        writes.dedup();
        if reads.is_empty() && writes.is_empty() {
            writes.push(i % shape.objects.max(1));
        }
        let mut ops = Vec::new();
        for &r in &reads {
            // Candidate writers of object r: any other transaction that
            // writes r, or the init transaction (value 0).
            let writer_candidates: Vec<Option<usize>> = std::iter::once(None)
                .chain(
                    shape
                        .txs
                        .iter()
                        .enumerate()
                        .filter(|(j, (_, w))| *j != i && w.contains(&r))
                        .map(|(j, _)| Some(j)),
                )
                .collect();
            let pick = writer_candidates[(next() % writer_candidates.len() as u64) as usize];
            let value = match pick {
                None => 0,
                Some(j) => write_value(j, r),
            };
            ops.push(Op::read(objects[r], value));
        }
        for &w in &writes {
            ops.push(Op::write(objects[w], write_value(i, w)));
        }
        b.push_tx(session_ids[i % shape.sessions], ops);
    }
    b.build()
}

/// Strategy for a random history alone (same construction as
/// [`arb_dependency_graph`], without fixing the dependencies).
pub fn arb_history(max_txs: usize, max_objects: usize) -> impl Strategy<Value = History> {
    arb_dependency_graph(max_txs, max_objects).prop_map(|g| g.history().clone())
}
