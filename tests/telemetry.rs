//! Telemetry correctness: event totals cross-check the scheduler's own
//! accounting, instrumentation is observationally neutral, and the
//! JSONL trace format is machine-parseable.

use std::sync::Arc;

use analysing_si::analysis::{check_si_traced, ObservedTx, SiMonitor};
use analysing_si::depgraph::{extract, DependencyGraph};
use analysing_si::execution::SpecModel;
use analysing_si::model::Obj;
use analysing_si::mvcc::{
    Engine, PsiEngine, RunResult, Scheduler, SchedulerConfig, Script, SerEngine, SiEngine,
    SsiEngine, Workload,
};
use analysing_si::telemetry::{
    AbortCause, CountingSink, JsonlSink, MetricsRegistry, NullSink, Telemetry,
};
use analysing_si::workloads::{bank, smallbank};

/// A deterministic contended workload: four sessions increment the same
/// counter, which forces first-committer-wins refusals under every
/// engine.
fn contended_counter() -> Workload {
    let x = Obj(0);
    let inc = Script::new().read(x).write_computed(x, [0], 1);
    let mut w = Workload::new(1);
    for _ in 0..4 {
        w = w.session(vec![inc.clone(), inc.clone(), inc.clone()]);
    }
    w
}

fn run_with(
    engine: &mut dyn Engine,
    workload: &Workload,
    seed: u64,
    telemetry: Telemetry,
) -> RunResult {
    engine.set_telemetry(telemetry);
    let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
    s.set_metrics(MetricsRegistry::new());
    s.run(engine, workload)
}

#[test]
fn counting_sink_totals_match_run_stats() {
    let w = contended_counter();
    for seed in 0..10 {
        for maker in [
            (|| Box::new(SiEngine::new(1)) as Box<dyn Engine>) as fn() -> Box<dyn Engine>,
            || Box::new(SerEngine::new(1)),
            || Box::new(PsiEngine::new(1, 2)),
            || Box::new(SsiEngine::new(1)),
        ] {
            let counting = Arc::new(CountingSink::new());
            let mut engine = maker();
            let run = run_with(engine.as_mut(), &w, seed, Telemetry::new(counting.clone()));

            // The engine's event stream and the scheduler's accounting
            // are produced independently; they must agree exactly.
            assert_eq!(counting.commits(), run.stats.committed);
            assert_eq!(counting.aborts(AbortCause::WwConflict), run.stats.aborted_ww);
            assert_eq!(counting.aborts(AbortCause::RwConflict), run.stats.aborted_rw);
            assert_eq!(run.stats.aborted, run.stats.aborted_ww + run.stats.aborted_rw);
            // Every begin ends in exactly one commit or conflict abort
            // (crash probability is zero, so no explicit aborts).
            assert_eq!(counting.begins(), counting.commits() + counting.conflict_aborts());
            assert_eq!(counting.aborts(AbortCause::Explicit), 0);

            // The metrics registry mirrors the same totals.
            assert_eq!(run.metrics.counter("txn.committed"), run.stats.committed);
            assert_eq!(run.metrics.counter("txn.aborted.ww_conflict"), run.stats.aborted_ww);
            assert_eq!(run.metrics.counter("txn.aborted.rw_conflict"), run.stats.aborted_rw);
            assert_eq!(run.metrics.counter("txn.gave_up"), run.stats.gave_up);
            let latency = &run.metrics.histograms["txn.commit_latency_nanos"];
            assert_eq!(latency.count, run.stats.committed);
        }
    }
}

#[test]
fn explicit_aborts_surface_under_crashes() {
    let w = contended_counter();
    let counting = Arc::new(CountingSink::new());
    let mut engine = SiEngine::new(1);
    engine.set_telemetry(Telemetry::new(counting.clone()));
    let mut s =
        Scheduler::new(SchedulerConfig { seed: 7, crash_probability: 0.3, ..Default::default() });
    s.set_metrics(MetricsRegistry::new());
    let run = s.run(&mut engine, &w);
    assert!(run.stats.crashes > 0, "crash probability 0.3 should fire");
    assert_eq!(counting.aborts(AbortCause::Explicit), run.stats.crashes);
    assert_eq!(run.metrics.counter("scheduler.crashes"), run.stats.crashes);
}

#[test]
fn disabled_telemetry_is_observationally_neutral() {
    // Instrumentation must never influence behaviour: the same seed
    // must produce bit-identical runs with and without a sink attached.
    let accounts = smallbank::Accounts::new(2);
    let workloads = [smallbank::mixed_workload(&accounts, 3, 2, 100), bank::write_skew(2, 100)];
    for w in &workloads {
        for seed in 0..5 {
            let makers: [fn(usize) -> Box<dyn Engine>; 4] = [
                |n| Box::new(SiEngine::new(n)),
                |n| Box::new(SerEngine::new(n)),
                |n| Box::new(PsiEngine::new(n, 2)),
                |n| Box::new(SsiEngine::new(n)),
            ];
            for maker in makers {
                let mut plain = maker(w.object_count());
                let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
                let baseline = s.run(plain.as_mut(), w);

                let mut instrumented = maker(w.object_count());
                let run =
                    run_with(instrumented.as_mut(), w, seed, Telemetry::new(Arc::new(NullSink)));

                assert_eq!(baseline.history, run.history, "seed {seed}");
                assert_eq!(baseline.stats, run.stats, "seed {seed}");
            }
        }
    }
}

#[test]
fn jsonl_trace_is_well_formed() {
    use serde::Content;

    let (jsonl, buffer) = JsonlSink::in_memory();
    let w = contended_counter();
    let mut engine = SsiEngine::new(1);
    let run = run_with(&mut engine, &w, 3, Telemetry::new(Arc::new(jsonl)));
    assert!(run.stats.committed > 0);

    let text = buffer.contents();
    let known = [
        "TxBegin",
        "TxCommit",
        "TxAbort",
        "EdgeAdded",
        "CycleSearchStep",
        "VerdictEmitted",
        "SolverIteration",
    ];
    let mut commits = 0;
    let mut lines = 0;
    for line in text.lines() {
        lines += 1;
        let value: Content =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        // Externally tagged enum: exactly one known variant key per line.
        match &value {
            Content::Map(entries) => {
                assert_eq!(entries.len(), 1, "one event per line: {line}");
                assert!(known.contains(&entries[0].0.as_str()), "unknown event: {line}");
            }
            other => panic!("expected an object, got {other:?}"),
        }
        if value.get("TxCommit").is_some() {
            commits += 1;
        }
    }
    assert!(lines > 0, "trace must not be empty");
    assert_eq!(commits, run.stats.committed);
}

/// Replays a finished run's dependency graph into a monitor in commit
/// order, as `examples/online_monitor.rs` does.
fn observed_stream(graph: &DependencyGraph) -> Vec<ObservedTx> {
    let h = graph.history();
    let mut last_of_session = vec![None; h.session_count()];
    let mut stream = Vec::new();
    for t in h.tx_ids() {
        let session = h.session_of(t);
        stream.push(ObservedTx {
            session_predecessor: session.and_then(|s| last_of_session[s.index()]),
            reads_from: h
                .transaction(t)
                .external_read_set()
                .into_iter()
                .map(|x| (x, graph.writer_for(t, x).expect("reads have writers")))
                .collect(),
            writes: h.transaction(t).write_set(),
        });
        if let Some(s) = session {
            last_of_session[s.index()] = Some(t);
        }
    }
    stream
}

#[test]
fn monitor_and_traced_checkers_emit_verdicts() {
    // Run the SI engine, replay the extracted graph through an
    // instrumented SiMonitor, and check an instrumented membership call
    // on the same graph: both must report verdicts through the sink.
    let w = contended_counter();
    let mut s = Scheduler::new(SchedulerConfig { seed: 11, ..Default::default() });
    let run = s.run(&mut SiEngine::new(1), &w);
    let g = extract(&run.execution).unwrap();

    let counting = Arc::new(CountingSink::new());
    let telemetry = Telemetry::new(counting.clone());
    let mut monitor = SiMonitor::with_telemetry(SpecModel::Si, telemetry.clone());
    for tx in observed_stream(&g) {
        monitor.append(tx);
        assert!(monitor.is_consistent(), "SI engine output must pass the SI monitor");
    }
    let appended = g.history().tx_count() as u64;
    let (total, ok) = counting.verdicts();
    assert_eq!(total, appended, "one verdict per append");
    assert_eq!(ok, appended, "every verdict passes on an SI-engine run");
    assert!(counting.total_edges() > 0, "the replay must add dependency edges");
    assert!(counting.cycle_search_steps() >= appended);

    assert!(check_si_traced(&g, &telemetry).is_ok());
    assert_eq!(counting.verdicts(), (total + 1, ok + 1), "check_si_traced emits its verdict");
}
