//! Differential testing of the CDCL membership solver against the
//! backtracking enumerator: two independent implementations of the same
//! Theorem 8 / 9 / 21 characterisations must agree on every random
//! history, at every isolation level — and when the solver says *member*
//! its extracted abstract execution must independently pass the
//! corresponding graph check.
//!
//! A deterministic suite rounds this out with `histgen`'s seeded
//! anomalies, pinning the expected verdict pattern per class (lost
//! update outside everything, write skew SI-but-not-SER, long fork
//! PSI-but-not-SI).

mod common;

use common::arb_history;
use proptest::prelude::*;

use analysing_si::analysis::{check_psi, check_ser, check_si, history_membership, SearchBudget};
use analysing_si::execution::SpecModel;
use analysing_si::model::History;
use analysing_si::mvcc::{stress, StressConfig, StressEngine};
use analysing_si::solver::{solve, SolveOutcome, SolverMode};
use analysing_si::workloads::histgen::{generate, Anomaly, HistGen};

/// Enumerator verdict under a budget comfortably above anything a
/// ≤ 12-transaction history needs.
fn enumerate(spec: SpecModel, h: &History) -> bool {
    history_membership(spec, h, &SearchBudget { max_nodes: 20_000_000 })
        .expect("tiny histories fit the enumerator budget")
}

/// Asserts solver/enumerator agreement for one class, and that a SAT
/// witness survives the independent dependency-graph check.
fn assert_agreement(h: &History, mode: SolverMode, spec: SpecModel) {
    let via_enumerator = enumerate(spec, h);
    let result = solve(h, mode);
    prop_assert_eq!(
        result.outcome.is_member(),
        via_enumerator,
        "{:?}: solver and enumerator disagree on:\n{}",
        mode,
        h
    );
    if let SolveOutcome::Sat(witness) = &result.outcome {
        let graph = witness.to_graph(h).expect("witness rebuilds a dependency graph");
        let checked = match mode {
            SolverMode::Ser => check_ser(&graph),
            SolverMode::Si => check_si(&graph),
            SolverMode::Psi => check_psi(&graph),
        };
        prop_assert!(
            checked.is_ok(),
            "{:?}: witness fails the graph check ({:?}) on:\n{}",
            mode,
            checked.err(),
            h
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ser_solver_matches_enumerator(h in arb_history(12, 4)) {
        assert_agreement(&h, SolverMode::Ser, SpecModel::Ser);
    }

    #[test]
    fn si_solver_matches_enumerator(h in arb_history(12, 4)) {
        assert_agreement(&h, SolverMode::Si, SpecModel::Si);
    }

    #[test]
    fn psi_solver_matches_enumerator(h in arb_history(12, 4)) {
        assert_agreement(&h, SolverMode::Psi, SpecModel::Psi);
    }
}

/// The scale smoke: a 10^4-transaction history is far beyond the
/// enumerator, but the solver must certify it (and refute its long-fork
/// twin) in seconds. Runs in release only — the point is the release
/// fast path CI exercises, not a slow debug walk.
#[test]
#[cfg_attr(debug_assertions, ignore = "release-only scale smoke")]
fn solver_certifies_ten_thousand_txs() {
    let cfg = HistGen {
        sessions: 20,
        txs_per_session: 500,
        ops_per_tx: 4,
        objects: 2_000,
        read_ratio: 0.5,
        blind_write_ratio: 0.05,
        duplicate_ratio: 0.05,
        zipf_s: 0.5,
        seed: 0xC0DE,
        inject: None,
    };
    let clean = generate(&cfg);
    assert!(clean.tx_count() > 10_000);
    assert!(solve(&clean, SolverMode::Si).outcome.is_member(), "clean 10^4-tx load is SI");

    let forked = generate(&HistGen { inject: Some(Anomaly::LongFork), ..cfg });
    assert!(
        !solve(&forked, SolverMode::Si).outcome.is_member(),
        "seeded long fork must be refuted at 10^4 tx"
    );
}

/// Regression: `ShardedStore::commit` once returned before the
/// publication watermark covered its own sequence, so a session's next
/// snapshot — a single watermark load — could miss the session's *own
/// just-committed writes* whenever an earlier-allocated sequence was
/// still installing on another thread. The resulting histories violated
/// read-your-writes and fell outside SER, SI *and* PSI; si-solve caught
/// it by refuting a 20k-transaction stress recording. The window needs
/// real threads and enough transactions for a preemption to land between
/// sequence allocation and publication, hence the scale (and the
/// release-only gate).
#[test]
#[cfg_attr(debug_assertions, ignore = "release-only scale smoke")]
fn sharded_stress_recordings_stay_in_hist_si() {
    for (txs_per_thread, seed) in [(3_000usize, 0x5EED ^ 3_000u64), (5_000, 0x5EED ^ 5_000)] {
        let config = StressConfig::low_contention(4, txs_per_thread, seed);
        let outcome = stress(&config, StressEngine::Sharded { shards: 8, gc_interval: 512 });
        let h = outcome.result.history;
        let result = solve(&h, SolverMode::Si);
        assert!(
            result.outcome.is_member(),
            "sharded stress recording ({} txs, seed {seed:#x}) fell outside HistSI",
            h.tx_count()
        );
    }
}

/// The seeded-anomaly suite: generated base loads with one injected
/// anomaly cluster, checked against the verdict pattern the paper's
/// Figure 2 fixes for each class.
mod seeded_anomalies {
    use super::*;

    fn base(seed: u64, inject: Option<Anomaly>) -> History {
        generate(&HistGen {
            sessions: 3,
            txs_per_session: 3,
            ops_per_tx: 2,
            objects: 4,
            seed,
            inject,
            ..HistGen::default()
        })
    }

    /// `(SER, SI, PSI)` solver verdicts, each cross-checked against the
    /// enumerator.
    fn verdicts(h: &History) -> (bool, bool, bool) {
        let pairs = [
            (SolverMode::Ser, SpecModel::Ser),
            (SolverMode::Si, SpecModel::Si),
            (SolverMode::Psi, SpecModel::Psi),
        ];
        let mut out = [false; 3];
        for (i, &(mode, spec)) in pairs.iter().enumerate() {
            let member = solve(h, mode).outcome.is_member();
            assert_eq!(member, enumerate(spec, h), "{mode:?} disagreement on:\n{h}");
            out[i] = member;
        }
        (out[0], out[1], out[2])
    }

    #[test]
    fn clean_loads_stay_in_hist_si() {
        for seed in 0..4 {
            let (_, si, psi) = verdicts(&base(seed, None));
            assert!(si, "seed {seed}: clean generated history left HistSI");
            assert!(psi, "seed {seed}: HistSI ⊆ HistPSI violated");
        }
    }

    #[test]
    fn lost_update_leaves_every_class() {
        for seed in 0..4 {
            let (ser, si, psi) = verdicts(&base(seed, Some(Anomaly::LostUpdate)));
            assert!(!ser && !si && !psi, "seed {seed}: lost update must refute all classes");
        }
    }

    #[test]
    fn write_skew_splits_ser_from_si() {
        for seed in 0..4 {
            let (ser, si, psi) = verdicts(&base(seed, Some(Anomaly::WriteSkew)));
            assert!(!ser, "seed {seed}: write skew must leave HistSER");
            assert!(si && psi, "seed {seed}: write skew stays in HistSI and HistPSI");
        }
    }

    #[test]
    fn long_fork_splits_si_from_psi() {
        for seed in 0..4 {
            let (ser, si, psi) = verdicts(&base(seed, Some(Anomaly::LongFork)));
            assert!(!ser && !si, "seed {seed}: long fork must leave HistSER and HistSI");
            assert!(psi, "seed {seed}: long fork stays in HistPSI");
        }
    }
}
