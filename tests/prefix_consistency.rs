//! Mechanical validation of the derived prefix-consistency
//! characterisation (the §7 programme carried out in `si_core::pc`):
//!
//! * graph-level membership (`GraphPC`: `((SO ∪ WR) ; RW?) ∪ WW` acyclic)
//!   must equal brute-force search over executions of the PC axiom set,
//!   exhaustively on all two-transaction histories and on random ones;
//! * the PC soundness construction must realise every `GraphPC` member as
//!   an execution satisfying the PC axioms with `graph(X) = G`;
//! * the inclusion chain `HistSER ⊆ HistSI ⊆ HistPC` holds, and PC is
//!   *incomparable* with PSI (lost update ∈ PC \ PSI; long fork ∈
//!   PSI \ PC).

mod common;

use common::{arb_dependency_graph, arb_history};
use proptest::prelude::*;

use analysing_si::analysis::pc::{check_pc_graph, execution_from_graph_pc, history_membership_pc};
use analysing_si::analysis::{check_si, history_membership, SearchBudget};
use analysing_si::depgraph::extract;
use analysing_si::execution::brute::{self, BruteConfig};
use analysing_si::execution::{check_pc, SpecModel};
use analysing_si::model::{HistoryBuilder, Obj, Op};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline: graph-level PC membership ≡ axiomatic PC membership
    /// on random tiny histories.
    #[test]
    fn pc_verdicts_agree(h in arb_history(4, 2)) {
        let via_graphs = history_membership_pc(&h, &SearchBudget::default()).unwrap();
        let via_axioms = brute::is_allowed_pc(&h, &BruteConfig::default()).unwrap();
        prop_assert_eq!(via_graphs, via_axioms, "GraphPC characterisation failed on:\n{}", h);
    }

    /// PC soundness: every GraphPC member is realised by the construction.
    #[test]
    fn pc_soundness_construction(g in arb_dependency_graph(7, 3)) {
        prop_assume!(check_pc_graph(&g).is_ok());
        let exec = execution_from_graph_pc(&g).expect("G ∈ GraphPC must be realisable");
        prop_assert!(exec.is_co_total());
        prop_assert!(check_pc(&exec).is_ok(), "{:?}", check_pc(&exec));
        prop_assert_eq!(extract(&exec).unwrap(), g);
    }

    /// PC completeness on constructed executions: extraction stays in
    /// GraphPC.
    #[test]
    fn pc_completeness_roundtrip(g in arb_dependency_graph(7, 3)) {
        prop_assume!(check_pc_graph(&g).is_ok());
        let exec = execution_from_graph_pc(&g).unwrap();
        prop_assert!(check_pc_graph(&extract(&exec).unwrap()).is_ok());
    }

    /// GraphSI ⊆ GraphPC (SI = PC + NOCONFLICT).
    #[test]
    fn graph_si_subset_graph_pc(g in arb_dependency_graph(8, 3)) {
        if check_si(&g).is_ok() {
            prop_assert!(check_pc_graph(&g).is_ok(), "GraphSI ⊄ GraphPC");
        }
    }

    /// History-level inclusion chain with PC in the middle.
    #[test]
    fn hist_inclusions_with_pc(h in arb_history(5, 3)) {
        let budget = SearchBudget::default();
        let si = history_membership(SpecModel::Si, &h, &budget).unwrap();
        let pc = history_membership_pc(&h, &budget).unwrap();
        prop_assert!(!si || pc, "HistSI ⊄ HistPC on:\n{}", h);
    }
}

#[test]
fn exhaustive_two_transaction_pc() {
    // The same exhaustive census as tests/exhaustive_tiny.rs, now for PC.
    let budget = SearchBudget::default();
    let cfg = BruteConfig::default();
    let slot = |tx: u64| {
        let mut ops = Vec::new();
        for obj in [Obj(0), Obj(1)] {
            for v in 0..=2u64 {
                ops.push(Op::read(obj, v));
            }
            ops.push(Op::write(obj, tx));
        }
        ops
    };
    let candidates = |tx: u64| {
        let slots = slot(tx);
        let mut out: Vec<Vec<Op>> = slots.iter().map(|&op| vec![op]).collect();
        for &a in &slots {
            for &b in &slots {
                out.push(vec![a, b]);
            }
        }
        out
    };
    let mut checked = 0;
    let mut pc_allowed = 0;
    let mut si_allowed = 0;
    for t1 in candidates(1) {
        // Thin the quadratic product to keep the run in seconds while
        // still covering every t1 against a spread of t2s.
        for t2 in candidates(2).into_iter().step_by(5) {
            let mut b = HistoryBuilder::new();
            b.object("x");
            b.object("y");
            let (s1, s2) = (b.session(), b.session());
            b.push_tx(s1, t1.clone());
            b.push_tx(s2, t2);
            let h = b.build();
            let via_graphs = history_membership_pc(&h, &budget).unwrap();
            let via_axioms = brute::is_allowed_pc(&h, &cfg).unwrap();
            assert_eq!(via_graphs, via_axioms, "GraphPC failed on:\n{h}");
            let si = history_membership(SpecModel::Si, &h, &budget).unwrap();
            assert!(!si || via_graphs, "HistSI ⊄ HistPC on:\n{h}");
            checked += 1;
            pc_allowed += usize::from(via_graphs);
            si_allowed += usize::from(si);
        }
    }
    assert!(checked > 1000, "checked {checked}");
    // HistSI ⊆ HistPC on the census (the strict separation — lost update —
    // is asserted in `pc_and_psi_are_incomparable`; the thinned sample may
    // or may not contain a separator).
    assert!(
        pc_allowed >= si_allowed,
        "census violates HistSI ⊆ HistPC (PC {pc_allowed} vs SI {si_allowed} of {checked})"
    );
    eprintln!("checked {checked}: SI {si_allowed}, PC {pc_allowed}");
}

#[test]
fn pc_and_psi_are_incomparable() {
    let budget = SearchBudget::default();

    // Lost update: in HistPC (no conflict detection), not in HistPSI.
    let mut b = HistoryBuilder::new();
    let acct = b.object("acct");
    let (s1, s2) = (b.session(), b.session());
    b.push_tx(s1, [Op::read(acct, 0), Op::write(acct, 50)]);
    b.push_tx(s2, [Op::read(acct, 0), Op::write(acct, 25)]);
    let lu = b.build();
    assert!(history_membership_pc(&lu, &budget).unwrap());
    assert!(!history_membership(SpecModel::Psi, &lu, &budget).unwrap());

    // Long fork: in HistPSI, not in HistPC (PREFIX).
    let mut b = HistoryBuilder::new();
    let x = b.object("x");
    let y = b.object("y");
    let (s1, s2, s3, s4) = (b.session(), b.session(), b.session(), b.session());
    b.push_tx(s1, [Op::write(x, 1)]);
    b.push_tx(s2, [Op::write(y, 1)]);
    b.push_tx(s3, [Op::read(x, 1), Op::read(y, 0)]);
    b.push_tx(s4, [Op::read(x, 0), Op::read(y, 1)]);
    let lf = b.build();
    assert!(!history_membership_pc(&lf, &budget).unwrap());
    assert!(history_membership(SpecModel::Psi, &lf, &budget).unwrap());
}
