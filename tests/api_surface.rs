//! Cross-cutting API tests: serde round-trips (the checker CLI's data
//! path), witness rendering, the advisor on the Appendix B figures, and
//! DOT export of engine runs.

use analysing_si::analysis::{classify_history, SearchBudget};
use analysing_si::chopping::{advise_chopping, analyse_chopping, Criterion};
use analysing_si::depgraph::{extract, to_dot};
use analysing_si::model::{History, HistoryBuilder, Op};
use analysing_si::mvcc::{Scheduler, SchedulerConfig, SiEngine};
use analysing_si::workloads::bank::{program_set_figure5, write_skew};
use analysing_si::workloads::fork::program_set_figure12;

fn write_skew_history() -> History {
    let mut b = HistoryBuilder::new();
    let x = b.object("acct1");
    let y = b.object("acct2");
    let (s1, s2) = (b.session(), b.session());
    b.push_tx(s1, [Op::read(x, 0), Op::read(y, 0), Op::write(x, 1)]);
    b.push_tx(s2, [Op::read(x, 0), Op::read(y, 0), Op::write(y, 1)]);
    b.build()
}

#[test]
fn history_json_roundtrip_preserves_verdicts() {
    let h = write_skew_history();
    let json = serde_json::to_string_pretty(&h).expect("histories serialise");
    let back: History = serde_json::from_str(&json).expect("histories deserialise");
    assert_eq!(h, back);
    assert!(back.validate().is_ok());
    // The verdict survives the round-trip (the checker CLI's contract).
    let budget = SearchBudget::default();
    assert_eq!(classify_history(&h, &budget).unwrap(), classify_history(&back, &budget).unwrap());
}

#[test]
fn malformed_json_is_rejected() {
    let bad = r#"{"transactions": [], "sessions": [[0]], "init": null, "object_names": []}"#;
    // Either deserialisation fails or validation catches the dangling id.
    if let Ok(h) = serde_json::from_str::<History>(bad) {
        assert!(h.validate().is_err());
    }
}

#[test]
fn chopping_witness_rendering_names_pieces() {
    let fig5 = program_set_figure5();
    let report = analyse_chopping(&fig5, Criterion::Si, 2_000_000).unwrap();
    assert!(!report.correct);
    let description = report.describe_witness(&fig5);
    // The rendering resolves vertex ids to the human-readable piece
    // labels given when the programs were defined.
    assert!(
        description.contains("acct1") || description.contains("var1"),
        "witness should use piece labels: {description}"
    );
    assert!(description.matches("->").count() >= 3, "{description}");
}

#[test]
fn advisor_fixes_figure12_under_si() {
    // Figure 12 is correct under PSI but not SI; the advisor must find an
    // SI-correct coarsening (at worst the unchopped readers).
    let fig12 = program_set_figure12();
    assert!(!analyse_chopping(&fig12, Criterion::Si, 2_000_000).unwrap().correct);
    let advice = advise_chopping(&fig12, Criterion::Si, 2_000_000).unwrap();
    assert!(advice.merges > 0);
    assert!(analyse_chopping(&advice.programs, Criterion::Si, 2_000_000).unwrap().correct);
    // Under PSI the original chopping is already fine: zero merges.
    let psi_advice = advise_chopping(&fig12, Criterion::Psi, 2_000_000).unwrap();
    assert_eq!(psi_advice.merges, 0);
}

#[test]
fn dot_export_of_engine_runs() {
    let w = write_skew(1, 60);
    // Find a seed where the skew materialises so the DOT contains RW
    // edges both ways.
    for seed in 0..40 {
        let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
        let run = s.run(&mut SiEngine::new(2), &w);
        let g = extract(&run.execution).unwrap();
        if analysing_si::analysis::check_ser(&g).is_err() {
            let dot = to_dot(&g);
            assert!(dot.contains("digraph"));
            assert!(dot.contains("RW("), "skewed run must render RW edges");
            assert!(dot.contains("(init)"));
            return;
        }
    }
    panic!("write skew never materialised in 40 seeds");
}

#[test]
fn classification_is_send_sync_and_debuggable() {
    fn assert_send_sync<T: Send + Sync + std::fmt::Debug>() {}
    assert_send_sync::<analysing_si::analysis::Classification>();
    assert_send_sync::<analysing_si::model::History>();
    assert_send_sync::<analysing_si::depgraph::DependencyGraph>();
    assert_send_sync::<analysing_si::relations::Relation>();
    assert_send_sync::<analysing_si::execution::AbstractExecution>();
}

#[test]
fn errors_implement_std_error() {
    fn assert_error<T: std::error::Error>() {}
    assert_error::<analysing_si::model::HistoryError>();
    assert_error::<analysing_si::model::IntViolation>();
    assert_error::<analysing_si::depgraph::DepGraphError>();
    assert_error::<analysing_si::depgraph::ExtractError>();
    assert_error::<analysing_si::execution::AxiomViolation>();
    assert_error::<analysing_si::execution::StructureError>();
    assert_error::<analysing_si::analysis::MembershipError>();
    assert_error::<analysing_si::analysis::NotInGraphSi>();
    assert_error::<analysing_si::analysis::SearchExhausted>();
    assert_error::<analysing_si::chopping::SearchBudgetExceeded>();
    assert_error::<analysing_si::chopping::SpliceError>();
    assert_error::<analysing_si::workloads::coverage::CoverageError>();
}
