//! End-to-end confirmation of every lint verdict: compile each
//! diagnostic's witness into concrete scripts plus a scheduler advisory,
//! replay it on the matching live engine, judge the recorded history
//! with the CDCL solver, and counter-validate robust verdicts by
//! exploration. The full matrix is compared byte-for-byte against
//! `tests/golden/si_lint_confirm.json`.
//!
//! After an intentional change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test si_witness_confirm
//! cargo run --release --example si_lint -- --confirm --json > tests/golden/si_lint_confirm.json
//! ```
//!
//! (both produce the same bytes — the CLI route is just faster).

use analysing_si::chopping::ProgramSet;
use analysing_si::lint::{
    confirm_app, confirm_program_set, confirms_from_json, confirms_to_json, ConfirmOptions,
    ConfirmOutcome, ConfirmationReport, IrApp, IrProgramId, SessionLevel, Stmt,
};
use analysing_si::workloads::{bank, fork, smallbank, tpcc_lite};

/// The guarded-withdrawal write skew in the IR — mirrors the CLI target.
fn write_skew_ir() -> IrApp {
    let mut app = IrApp::new();
    let acct1 = app.scalar("acct1");
    let acct2 = app.scalar("acct2");
    let w1 = app.program("withdraw1");
    app.piece(
        w1,
        "if acct1+acct2 > 100 { acct1 -= 100 }",
        vec![Stmt::branch(
            vec![acct1.clone(), acct2.clone()],
            vec![Stmt::write(acct1.clone())],
            vec![],
        )],
    );
    let w2 = app.program("withdraw2");
    app.piece(
        w2,
        "if acct1+acct2 > 100 { acct2 -= 100 }",
        vec![Stmt::branch(
            vec![acct1.clone(), acct2.clone()],
            vec![Stmt::write(acct2.clone())],
            vec![],
        )],
    );
    app
}

/// SmallBank with `write_check` annotated SER — mirrors the CLI target.
fn mixed_ssi_ir() -> IrApp {
    let mut app = IrApp::from_program_set(&smallbank::program_set(1));
    let pivot = (0..app.program_count())
        .map(IrProgramId)
        .find(|&p| app.program_name(p) == "write_check")
        .expect("smallbank has a write_check program");
    app.set_level(pivot, SessionLevel::Ser);
    app
}

/// Materialised-constraint pair — mirrors the CLI target.
fn materialised_set() -> ProgramSet {
    let mut ps = ProgramSet::new();
    let x = ps.object("x");
    let y = ps.object("y");
    let total = ps.object("total");
    let w1 = ps.add_program("update_x");
    ps.add_piece(w1, "x += d; total += d", [x, y, total], [x, total]);
    let w2 = ps.add_program("update_y");
    ps.add_piece(w2, "y += d; total += d", [x, y, total], [y, total]);
    ps
}

fn confirm_all() -> Vec<ConfirmationReport> {
    let opts = ConfirmOptions::default();
    vec![
        confirm_program_set("smallbank", &smallbank::program_set(1), &opts),
        confirm_program_set("tpcc-lite", &tpcc_lite::program_set(2, 2), &opts),
        confirm_app("write-skew", &write_skew_ir(), &opts),
        confirm_program_set("fig5", &bank::program_set_figure5(), &opts),
        confirm_program_set("fig6", &bank::program_set_figure6(), &opts),
        confirm_program_set("fig11", &fork::program_set_figure11(), &opts),
        confirm_program_set("fig12", &fork::program_set_figure12(), &opts),
        confirm_app("mixed-ssi", &mixed_ssi_ir(), &opts),
        confirm_program_set("materialised", &materialised_set(), &opts),
    ]
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/si_lint_confirm.json")
}

/// The full matrix, byte-for-byte.
#[test]
fn confirmation_matrix_matches_golden() {
    let reports = confirm_all();
    let actual = format!("{}\n", confirms_to_json(&reports));
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "confirmation matrix changed; rerun with UPDATE_GOLDEN=1 if intentional"
    );
    // And the committed bytes round-trip through the vendored serde.
    let back = confirms_from_json(&expected).expect("golden JSON parses");
    assert_eq!(format!("{}\n", confirms_to_json(&back)), expected);
}

/// The acceptance criteria, independent of exact golden bytes:
/// no verdict is contradicted, every anomaly diagnostic that compiles is
/// operationally refuted at its level, and every robust claim survives
/// exploration clean.
#[test]
fn every_verdict_is_confirmed_or_explained() {
    let reports = confirm_all();
    for report in &reports {
        assert!(
            report.is_confirmed(),
            "{}: a static verdict was contradicted at run time:\n{}",
            report.target,
            report.render_text()
        );
        for row in &report.rows {
            match row.outcome {
                ConfirmOutcome::Reproduced
                | ConfirmOutcome::RefutedAtLevel
                | ConfirmOutcome::RobustClean => {}
                // The only tolerated inconclusive rows are witnesses the
                // compiler *proved* unrealisable, with the obstruction
                // spelled out (e.g. a long fork collapsed by PSI's
                // write-conflict detection).
                ConfirmOutcome::Inconclusive => assert!(
                    row.detail.contains("not realisable"),
                    "{}: unexplained inconclusive row: {row:?}",
                    report.target
                ),
                ConfirmOutcome::Unconfirmed => unreachable!("checked by is_confirmed"),
            }
        }
    }
    // The known realisability gap: SmallBank's long fork (and its
    // mixed-ssi variant) is syntactically flagged by Theorem 22 but
    // collapsed by write-conflict detection. Everything else runs.
    let inconclusive: Vec<(&str, &str)> = reports
        .iter()
        .flat_map(|r| {
            r.rows
                .iter()
                .filter(|row| row.outcome == ConfirmOutcome::Inconclusive)
                .map(move |row| (r.target.as_str(), row.code.map_or("--", |c| c.as_str())))
        })
        .collect();
    assert_eq!(inconclusive, vec![("smallbank", "SI005"), ("mixed-ssi", "SI005")]);
}
