//! The decisive cross-validation of the paper's characterisations: for
//! random *tiny* histories, membership decided through dependency graphs
//! (Theorems 8, 9, 21) must coincide with membership decided by
//! brute-force search over abstract executions (Definitions 4 and 20).

mod common;

use common::arb_history;
use proptest::prelude::*;

use analysing_si::analysis::{history_membership, SearchBudget};
use analysing_si::execution::brute::{self, BruteConfig};
use analysing_si::execution::SpecModel;

proptest! {
    // Brute force is factorial; keep the case count moderate and the
    // histories tiny (≤ 4 transactions + init).
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn si_verdicts_agree(h in arb_history(4, 2)) {
        let via_graphs =
            history_membership(SpecModel::Si, &h, &SearchBudget::default()).unwrap();
        let via_axioms = brute::is_allowed(SpecModel::Si, &h, &BruteConfig::default()).unwrap();
        prop_assert_eq!(via_graphs, via_axioms, "Theorem 9 failed on:\n{}", h);
    }

    #[test]
    fn ser_verdicts_agree(h in arb_history(4, 2)) {
        let via_graphs =
            history_membership(SpecModel::Ser, &h, &SearchBudget::default()).unwrap();
        let via_axioms = brute::is_allowed(SpecModel::Ser, &h, &BruteConfig::default()).unwrap();
        prop_assert_eq!(via_graphs, via_axioms, "Theorem 8 failed on:\n{}", h);
    }

    #[test]
    fn psi_verdicts_agree(h in arb_history(3, 2)) {
        let via_graphs =
            history_membership(SpecModel::Psi, &h, &SearchBudget::default()).unwrap();
        let via_axioms = brute::is_allowed(SpecModel::Psi, &h, &BruteConfig::default()).unwrap();
        prop_assert_eq!(via_graphs, via_axioms, "Theorem 21 failed on:\n{}", h);
    }

    /// The model inclusions HistSER ⊆ HistSI ⊆ HistPSI, via the graph
    /// characterisations, on slightly larger histories.
    #[test]
    fn inclusion_chain(h in arb_history(6, 3)) {
        let budget = SearchBudget::default();
        let ser = history_membership(SpecModel::Ser, &h, &budget).unwrap();
        let si = history_membership(SpecModel::Si, &h, &budget).unwrap();
        let psi = history_membership(SpecModel::Psi, &h, &budget).unwrap();
        prop_assert!(!ser || si, "HistSER ⊄ HistSI on:\n{}", h);
        prop_assert!(!si || psi, "HistSI ⊄ HistPSI on:\n{}", h);
    }
}
