//! Golden-output regression tests for `si-lint`.
//!
//! Each target's text and JSON renderings are compared byte-for-byte
//! against committed files under `tests/golden/`. The point is *stability*:
//! diagnostic codes, witness renderings and repair descriptions are part
//! of the tool's interface (suppression lists, CI diffs), so an
//! unintentional change must fail loudly.
//!
//! After an intentional change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test si_lint_golden
//! cargo run --example si_lint -- --json > tests/golden/si_lint_all.json
//! ```

use analysing_si::chopping::ProgramSet;
use analysing_si::lint::{
    lint_program_set, reports_from_json, reports_to_json, LintOptions, LintReport,
};
use analysing_si::workloads::{bank, smallbank};

/// A hand-built write-skew pair: the two guarded withdrawals of
/// Figure 2(d) with exact (declared) read/write sets.
fn write_skew_pair() -> ProgramSet {
    let mut ps = ProgramSet::new();
    let a1 = ps.object("acct1");
    let a2 = ps.object("acct2");
    let w1 = ps.add_program("withdraw1");
    ps.add_piece(w1, "if acct1+acct2 > 100 { acct1 -= 100 }", [a1, a2], [a1]);
    let w2 = ps.add_program("withdraw2");
    ps.add_piece(w2, "if acct1+acct2 > 100 { acct2 -= 100 }", [a1, a2], [a2]);
    ps
}

fn golden_path(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(file)
}

/// Compares `actual` against the committed golden file, or rewrites the
/// file when `UPDATE_GOLDEN` is set.
fn assert_golden(file: &str, actual: &str) {
    let path = golden_path(file);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "output for {file} changed; rerun with UPDATE_GOLDEN=1 if intentional"
    );
}

fn lint(target: &str, ps: &ProgramSet) -> LintReport {
    lint_program_set(target, ps, &LintOptions::default())
}

fn check_target(name: &str, report: &LintReport) {
    assert_golden(&format!("{name}.txt"), &report.render_text());
    let json = reports_to_json(std::slice::from_ref(report));
    assert_golden(&format!("{name}.json"), &json);
    // The JSON must round-trip through the vendored serde exactly.
    let back = reports_from_json(&json).expect("golden JSON parses");
    assert_eq!(back.as_slice(), std::slice::from_ref(report));
}

#[test]
fn smallbank_golden() {
    let report = lint("smallbank", &smallbank::program_set(1));
    // Interface guarantees, independent of the exact golden bytes.
    assert!(report.diagnostics.iter().any(|d| d.code.as_str() == "SI001"));
    let text = report.render_text();
    assert!(text.contains("balance -RW-> write_check"), "{text}");
    check_target("smallbank", &report);
}

#[test]
fn banking_chopping_golden() {
    let report = lint("fig5", &bank::program_set_figure5());
    assert!(report.diagnostics.iter().any(|d| d.code.as_str() == "SI002"));
    check_target("fig5", &report);
}

#[test]
fn write_skew_golden() {
    let report = lint("write-skew", &write_skew_pair());
    assert!(report.diagnostics.iter().any(|d| d.code.as_str() == "SI001"));
    check_target("write-skew", &report);
}

/// The committed all-targets JSON (the CI diff target produced by
/// `cargo run --example si_lint -- --json`) stays parseable and its codes
/// stay within the stable set.
#[test]
fn all_targets_json_is_valid() {
    let json = std::fs::read_to_string(golden_path("si_lint_all.json"))
        .expect("tests/golden/si_lint_all.json is committed");
    let reports = reports_from_json(&json).expect("committed JSON parses");
    assert!(reports.len() >= 5, "the CLI lints all built-in targets");
    let targets: Vec<&str> = reports.iter().map(|r| r.target.as_str()).collect();
    assert!(targets.contains(&"smallbank") && targets.contains(&"tpcc-lite"), "{targets:?}");
    // Re-serialising reproduces the committed bytes (determinism).
    assert_eq!(format!("{}\n", reports_to_json(&reports)), json);
}
