//! Integration tests for §5 and Appendix B: the chopping figures, the
//! dynamic criterion (Theorem 16) as a property, and the criterion
//! comparisons (Theorems 29 and 31).

mod common;

use common::arb_dependency_graph;
use proptest::prelude::*;

use analysing_si::analysis::{check_si, execution_from_graph};
use analysing_si::chopping::{
    analyse_chopping, dynamic_chopping_graph, find_critical_cycle, is_spliceable_by_criterion,
    splice_graph, splice_history, Criterion, ProgramSet,
};
use analysing_si::depgraph::DepGraphBuilder;
use analysing_si::model::{HistoryBuilder, Op};
use analysing_si::relations::TxId;
use analysing_si::workloads::bank::{program_set_figure5, program_set_figure6};
use analysing_si::workloads::fork::{program_set_figure11, program_set_figure12};

const BUDGET: usize = 2_000_000;

/// Figure 4's graph G1: lookupAll (one session, two pieces) observes the
/// transfer mid-flight. Not spliceable.
fn figure4_g1() -> analysing_si::depgraph::DependencyGraph {
    let mut b = HistoryBuilder::new();
    let a1 = b.object("acct1");
    let a2 = b.object("acct2");
    let st = b.session();
    let sl = b.session();
    // transfer chopped: debit acct1, credit acct2.
    b.push_tx(st, [Op::read(a1, 100), Op::write(a1, 0)]);
    b.push_tx(st, [Op::read(a2, 0), Op::write(a2, 100)]);
    // lookupAll chopped: sees acct1 already debited but acct2 not yet
    // credited — the mid-transfer state.
    b.push_tx(sl, [Op::read(a1, 0)]);
    b.push_tx(sl, [Op::read(a2, 0)]);
    let h = b.build_with_initial_values([(a1, 100), (a2, 0)]);
    let mut g = DepGraphBuilder::new(h);
    g.infer_wr();
    g.build().unwrap()
}

/// Figure 4's graph G2: both lookups observe consistent states.
/// Spliceable.
fn figure4_g2() -> analysing_si::depgraph::DependencyGraph {
    let mut b = HistoryBuilder::new();
    let a1 = b.object("acct1");
    let a2 = b.object("acct2");
    let st = b.session();
    let sl1 = b.session();
    let sl2 = b.session();
    b.push_tx(st, [Op::read(a1, 100), Op::write(a1, 0)]);
    b.push_tx(st, [Op::read(a2, 0), Op::write(a2, 100)]);
    b.push_tx(sl1, [Op::read(a1, 100)]); // before the transfer
    b.push_tx(sl2, [Op::read(a2, 100)]); // after the transfer
    let h = b.build_with_initial_values([(a1, 100), (a2, 0)]);
    let mut g = DepGraphBuilder::new(h);
    g.infer_wr();
    g.build().unwrap()
}

#[test]
fn figure4_g1_has_critical_cycle_and_is_not_spliceable() {
    let g1 = figure4_g1();
    assert!(check_si(&g1).is_ok(), "G1 itself is an SI behaviour");
    let dcg = dynamic_chopping_graph(&g1);
    let witness = find_critical_cycle(&dcg, Criterion::Si, BUDGET).unwrap();
    assert!(witness.is_some(), "DCG(G1) must contain a critical cycle");
    // And indeed the spliced graph leaves GraphSI (or fails to splice).
    // Failing to lift is also a correct outcome, hence no assertion on Err.
    if let Ok(spliced) = splice_graph(&g1) {
        assert!(check_si(&spliced).is_err(), "splice(G1) must not be in GraphSI");
    }
}

#[test]
fn figure4_g2_is_spliceable() {
    let g2 = figure4_g2();
    assert!(check_si(&g2).is_ok());
    assert!(is_spliceable_by_criterion(&g2, BUDGET).unwrap());
    let spliced = splice_graph(&g2).unwrap();
    assert!(check_si(&spliced).is_ok(), "splice(G2) ∈ GraphSI");
    // The spliced history equals splice(H_{G2}).
    let expected = splice_history(g2.history());
    assert_eq!(spliced.history(), &expected.history);
}

#[test]
fn figure5_and_6_static_analyses() {
    let fig5 = program_set_figure5();
    assert!(!analyse_chopping(&fig5, Criterion::Si, BUDGET).unwrap().correct);
    assert!(!analyse_chopping(&fig5, Criterion::Ser, BUDGET).unwrap().correct);
    assert!(!analyse_chopping(&fig5, Criterion::Psi, BUDGET).unwrap().correct);

    let fig6 = program_set_figure6();
    assert!(analyse_chopping(&fig6, Criterion::Si, BUDGET).unwrap().correct);
    assert!(analyse_chopping(&fig6, Criterion::Ser, BUDGET).unwrap().correct);
    assert!(analyse_chopping(&fig6, Criterion::Psi, BUDGET).unwrap().correct);
}

#[test]
fn appendix_b_criterion_comparisons() {
    // Figure 11: correct under SI (and PSI), incorrect under SER.
    let fig11 = program_set_figure11();
    assert!(analyse_chopping(&fig11, Criterion::Si, BUDGET).unwrap().correct);
    assert!(analyse_chopping(&fig11, Criterion::Psi, BUDGET).unwrap().correct);
    assert!(!analyse_chopping(&fig11, Criterion::Ser, BUDGET).unwrap().correct);

    // Figure 12: correct under PSI, incorrect under SI and SER.
    let fig12 = program_set_figure12();
    assert!(analyse_chopping(&fig12, Criterion::Psi, BUDGET).unwrap().correct);
    assert!(!analyse_chopping(&fig12, Criterion::Si, BUDGET).unwrap().correct);
    assert!(!analyse_chopping(&fig12, Criterion::Ser, BUDGET).unwrap().correct);
}

#[test]
fn figure11_dynamic_counterexample_under_ser() {
    // The history H6 of Figure 11: each session reads the *initial* value
    // of its input and writes its output, producing a write-skew-like
    // result once spliced.
    let mut b = HistoryBuilder::new();
    let x = b.object("x");
    let y = b.object("y");
    let (s1, s2) = (b.session(), b.session());
    b.push_tx(s1, [Op::read(x, 0)]); // var1 = x
    b.push_tx(s1, [Op::write(y, 10)]); // y = var1 (+marker)
    b.push_tx(s2, [Op::read(y, 0)]); // var2 = y
    b.push_tx(s2, [Op::write(x, 20)]); // x = var2 (+marker)
    let h = b.build();
    let mut g = DepGraphBuilder::new(h);
    g.infer_wr();
    let g = g.build().unwrap();
    // The chopped execution is serializable, but its splice is not: the
    // Figure 11 chopping is incorrect under SER.
    assert!(analysing_si::analysis::check_ser(&g).is_ok());
    let spliced = splice_graph(&g).unwrap();
    assert!(analysing_si::analysis::check_ser(&spliced).is_err());
    // …while the splice *is* still an SI behaviour (the chopping is
    // correct under SI).
    assert!(check_si(&spliced).is_ok());
}

#[test]
fn figure13_splicing_executions_directly_fails() {
    // Appendix B.3's exact scenario: session A's two transactions surround
    // session B's transaction in the commit order, so the naive
    // session-wise lift of CO ties a cycle — while splicing the
    // *dependency graph* of the same execution succeeds and stays in
    // GraphSI. This is why §5 splices graphs, not executions.
    use analysing_si::execution::{AbstractExecution, SpecModel};
    use analysing_si::relations::Relation;

    let mut b = HistoryBuilder::new();
    let x = b.object("x");
    let y = b.object("y");
    let sa = b.session();
    let sb = b.session();
    let t1 = b.push_tx(sa, [Op::write(x, 1)]);
    let t2 = b.push_tx(sa, [Op::read(y, 0), Op::write(y, 2)]);
    let s = b.push_tx(sb, [Op::read(x, 1)]);
    let h = b.build();

    // CO: init < T1 < S < T2 (S committed between the session-A pair);
    // VIS = the full prefixes (a serializable, hence SI, execution).
    let order = [TxId(0), t1, s, t2];
    let mut co = Relation::new(4);
    for (i, &a) in order.iter().enumerate() {
        for &b2 in &order[i + 1..] {
            co.insert(a, b2);
        }
    }
    let exec = AbstractExecution::new(h, co.clone(), co).unwrap();
    assert!(SpecModel::Si.check(&exec).is_ok());

    // Naive CO lift: ~T~ -CO→ ~S~ iff ∃ T' ≈ T, S' ≈ S with T' -CO→ S'.
    let spliced_h = splice_history(exec.history());
    let n = spliced_h.history.tx_count();
    let mut lifted_co = Relation::new(n);
    for (a, b2) in exec.co().iter_pairs() {
        let (sa2, sb2) = (spliced_h.map[a.index()], spliced_h.map[b2.index()]);
        if sa2 != sb2 {
            lifted_co.insert(sa2, sb2);
        }
    }
    assert!(
        !lifted_co.is_acyclic(),
        "the naive execution splice must tie a CO cycle (T1 < S < T2)"
    );

    // The dependency-graph route succeeds on the same execution.
    let g = analysing_si::depgraph::extract(&exec).unwrap();
    let spliced = splice_graph(&g).unwrap();
    assert!(check_si(&spliced).is_ok(), "splice(graph(X)) ∈ GraphSI");
    // And the paper's resolution: construct a fresh execution for the
    // spliced graph via Theorem 10(i).
    let rebuilt = execution_from_graph(&spliced).unwrap();
    assert!(SpecModel::Si.check(&rebuilt).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 16 as a property: if G ∈ GraphSI and DCG(G) has no
    /// SI-critical cycle, then splice(G) is a well-formed dependency
    /// graph in GraphSI over splice(H_G).
    #[test]
    fn theorem16_dynamic_criterion(g in arb_dependency_graph(6, 3)) {
        prop_assume!(check_si(&g).is_ok());
        let spliceable = is_spliceable_by_criterion(&g, BUDGET).unwrap();
        if spliceable {
            let spliced = splice_graph(&g)
                .expect("Theorem 16: criterion holds but splice failed");
            prop_assert!(
                check_si(&spliced).is_ok(),
                "Theorem 16: splice left GraphSI"
            );
            prop_assert_eq!(
                spliced.history(),
                &splice_history(g.history()).history
            );
        }
    }

    /// Criterion monotonicity (Appendix B): a chopping correct under SER
    /// is correct under SI; correct under SI implies correct under PSI.
    #[test]
    fn criterion_monotonicity(
        pieces in proptest::collection::vec(
            (proptest::collection::vec(0..3usize, 0..3),
             proptest::collection::vec(0..3usize, 0..3)),
            1..6,
        ),
        splits in proptest::collection::vec(any::<bool>(), 6),
    ) {
        // Build a random program set: each entry is a program; `splits`
        // decides whether consecutive entries merge into one program.
        let mut ps = ProgramSet::new();
        let objs: Vec<_> = (0..3).map(|i| ps.object(&format!("o{i}"))).collect();
        let mut current = None;
        for (i, (reads, writes)) in pieces.iter().enumerate() {
            let program = match current {
                Some(p) if !splits.get(i).copied().unwrap_or(false) => p,
                _ => {
                    let p = ps.add_program(&format!("p{i}"));
                    current = Some(p);
                    p
                }
            };
            ps.add_piece(
                program,
                &format!("piece{i}"),
                reads.iter().map(|&r| objs[r]),
                writes.iter().map(|&w| objs[w]),
            );
        }
        let ser = analyse_chopping(&ps, Criterion::Ser, BUDGET).unwrap().correct;
        let si = analyse_chopping(&ps, Criterion::Si, BUDGET).unwrap().correct;
        let psi = analyse_chopping(&ps, Criterion::Psi, BUDGET).unwrap().correct;
        prop_assert!(!ser || si, "SER-correct must imply SI-correct");
        prop_assert!(!si || psi, "SI-correct must imply PSI-correct");
    }

    /// Splicing preserves operations: the multiset of non-init operations
    /// is unchanged.
    #[test]
    fn splice_preserves_operations(g in arb_dependency_graph(6, 3)) {
        let h = g.history();
        let spliced = splice_history(h);
        let count_ops = |h: &analysing_si::model::History| -> usize {
            h.tx_ids()
                .filter(|&t| Some(t) != h.init_tx())
                .map(|t| h.transaction(t).len())
                .sum()
        };
        prop_assert_eq!(count_ops(h), count_ops(&spliced.history));
        // One spliced transaction per non-empty session.
        let non_empty = h.sessions().filter(|(_, txs)| !txs.is_empty()).count();
        prop_assert_eq!(spliced.history.session_count(), non_empty);
        for (_, txs) in spliced.history.sessions() {
            prop_assert_eq!(txs.len(), 1);
        }
    }

    /// TxId(0) note: the spliced init transaction stays the init.
    #[test]
    fn splice_keeps_init(g in arb_dependency_graph(5, 2)) {
        let spliced = splice_history(g.history());
        prop_assert_eq!(spliced.history.init_tx(), Some(TxId(0)));
    }
}
