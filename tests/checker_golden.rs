//! Golden-output regression tests for the `checker` example's
//! `--format json` reports.
//!
//! The JSON report is a CLI interface (CI diffs it against the committed
//! golden file), so its exact shape — field names, verdict spellings,
//! certificate layout, statistics — must not drift unnoticed. The demo
//! goldens are produced through the same `si_solve::report` functions the
//! example calls, so `cargo run --example checker -- --demo --format json
//! [--engine solver]` reproduces `tests/golden/checker_demo_*.json`
//! byte-for-byte (plus a trailing newline).
//!
//! After an intentional change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test checker_golden
//! ```

use analysing_si::analysis::SearchBudget;
use analysing_si::model::{History, HistoryBuilder, Op};
use analysing_si::solver::report::{enumerator_report, solver_report};
use analysing_si::solver::{CheckVerdict, SolveBudget};

/// The `checker --demo` history: the write skew of Figure 2(d).
fn demo_history() -> History {
    let mut b = HistoryBuilder::new();
    let x = b.object("x");
    let y = b.object("y");
    let (s1, s2) = (b.session(), b.session());
    b.push_tx(s1, [Op::read(x, 0), Op::read(y, 0), Op::write(x, 1)]);
    b.push_tx(s2, [Op::read(x, 0), Op::read(y, 0), Op::write(y, 1)]);
    b.build()
}

/// The lost update of Figure 2(b): outside every class, rejected by the
/// solver at encode time.
fn lost_update_history() -> History {
    let mut b = HistoryBuilder::new();
    let x = b.object("x");
    let (s1, s2) = (b.session(), b.session());
    b.push_tx(s1, [Op::read(x, 0), Op::write(x, 1)]);
    b.push_tx(s2, [Op::read(x, 0), Op::write(x, 2)]);
    b.build()
}

fn golden_path(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(file)
}

/// Compares `actual` against the committed golden file, or rewrites the
/// file when `UPDATE_GOLDEN` is set.
fn assert_golden(file: &str, actual: &str) {
    let path = golden_path(file);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "output for {file} changed; rerun with UPDATE_GOLDEN=1 if intentional"
    );
}

/// Exactly what the example prints: pretty JSON plus `println!`'s newline.
fn render(report: &analysing_si::solver::CheckReport) -> String {
    serde_json::to_string_pretty(report).expect("report serialises") + "\n"
}

#[test]
fn demo_solver_report_golden() {
    let report = solver_report(&demo_history(), SolveBudget::default());
    let verdicts: Vec<CheckVerdict> = report.classes.iter().map(|c| c.verdict).collect();
    assert_eq!(
        verdicts,
        [CheckVerdict::NonMember, CheckVerdict::Member, CheckVerdict::Member],
        "write skew is SI/PSI but not SER"
    );
    assert_golden("checker_demo_solver.json", &render(&report));
}

#[test]
fn demo_enumerator_report_golden() {
    let report = enumerator_report(&demo_history(), &SearchBudget::default());
    let verdicts: Vec<CheckVerdict> = report.classes.iter().map(|c| c.verdict).collect();
    assert_eq!(verdicts, [CheckVerdict::NonMember, CheckVerdict::Member, CheckVerdict::Member]);
    assert_golden("checker_demo_enumerator.json", &render(&report));
}

#[test]
fn lost_update_solver_report_golden() {
    let report = solver_report(&lost_update_history(), SolveBudget::default());
    for row in &report.classes {
        assert_eq!(row.verdict, CheckVerdict::NonMember, "{:?}", row.mode);
    }
    assert_golden("checker_lost_update_solver.json", &render(&report));
}

/// Budget exhaustion is part of the JSON interface: the verdict plus the
/// partial statistics both engines surface.
#[test]
fn exhausted_reports_golden() {
    let mut b = HistoryBuilder::new();
    let x = b.object("x");
    let (s1, s2) = (b.session(), b.session());
    b.push_tx(s1, [Op::write(x, 1)]);
    b.push_tx(s2, [Op::write(x, 2)]);
    let h = b.build();

    let solved = solver_report(&h, SolveBudget { max_conflicts: u64::MAX, max_decisions: 1 });
    assert!(solved.classes.iter().all(|c| c.verdict == CheckVerdict::Exhausted));
    assert_golden("checker_exhausted_solver.json", &render(&solved));

    let enumerated = enumerator_report(&h, &SearchBudget { max_nodes: 1 });
    assert!(enumerated.classes.iter().any(|c| c.verdict == CheckVerdict::Exhausted));
    assert_golden("checker_exhausted_enumerator.json", &render(&enumerated));
}
