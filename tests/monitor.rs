//! The online monitor must agree with the offline membership checks on
//! engine-produced streams, and the explainer must produce genuine
//! forbidden-shape witnesses.

mod common;

use common::arb_dependency_graph;
use proptest::prelude::*;

use analysing_si::analysis::{
    check_psi, check_ser, check_si, explain_si_violation, ObservedTx, SiMonitor,
};
use analysing_si::depgraph::{extract, DependencyGraph};
use analysing_si::execution::SpecModel;
use analysing_si::mvcc::{Scheduler, SchedulerConfig, SiEngine};
use analysing_si::relations::TxId;
use analysing_si::workloads::random::{random_mix, RandomMix};

/// Replays a dependency graph into a monitor in TxId order.
fn replay(graph: &DependencyGraph, model: SpecModel) -> SiMonitor {
    let mut monitor = SiMonitor::new(model);
    let h = graph.history();
    let mut last_of_session: Vec<Option<TxId>> = vec![None; h.session_count()];
    for t in h.tx_ids() {
        let session = h.session_of(t);
        monitor.append(ObservedTx {
            session_predecessor: session.and_then(|s| last_of_session[s.index()]),
            reads_from: h
                .transaction(t)
                .external_read_set()
                .into_iter()
                .map(|x| (x, graph.writer_for(t, x).expect("reads have writers")))
                .collect(),
            writes: h.transaction(t).write_set(),
        });
        if let Some(s) = session {
            last_of_session[s.index()] = Some(t);
        }
    }
    monitor
}

#[test]
fn monitor_agrees_with_offline_checks_on_engine_runs() {
    for seed in 0..10 {
        let mix =
            RandomMix { seed, sessions: 4, txs_per_session: 6, objects: 5, ..Default::default() };
        let w = random_mix(&mix);
        let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
        let run = s.run(&mut SiEngine::new(mix.objects), &w);
        let g = extract(&run.execution).unwrap();
        // Offline: SI runs are in GraphSI; online must agree.
        assert!(check_si(&g).is_ok());
        assert!(replay(&g, SpecModel::Si).is_consistent(), "seed {seed}");
        assert!(replay(&g, SpecModel::Psi).is_consistent(), "seed {seed}");
        // SER verdicts must also agree, whichever way they go.
        assert_eq!(
            replay(&g, SpecModel::Ser).is_consistent(),
            check_ser(&g).is_ok(),
            "seed {seed}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Replaying any random well-formed graph through the monitor yields
    /// the same verdict as the offline checks — for all three models.
    ///
    /// Caveat: the monitor's version orders follow commit (TxId) order,
    /// so only graphs whose WW orders agree with TxId order replay
    /// faithfully; restrict to those.
    #[test]
    fn monitor_matches_offline_on_commit_ordered_graphs(g in arb_dependency_graph(6, 3)) {
        let commit_ordered = g.objects().iter().all(|&x| {
            g.ww_order(x).windows(2).all(|w| w[0] < w[1])
                && g.wr_pairs(x).iter().all(|&(w, r)| w < r)
        });
        prop_assume!(commit_ordered);
        prop_assert_eq!(replay(&g, SpecModel::Si).is_consistent(), check_si(&g).is_ok());
        prop_assert_eq!(replay(&g, SpecModel::Ser).is_consistent(), check_ser(&g).is_ok());
        prop_assert_eq!(replay(&g, SpecModel::Psi).is_consistent(), check_psi(&g).is_ok());
    }

    /// The incremental engine and the dense oracle engine must emit the
    /// same verdict after *every* append — in particular they must agree
    /// on the first transaction whose arrival breaks consistency.
    #[test]
    fn incremental_and_dense_engines_agree_per_append(g in arb_dependency_graph(6, 3)) {
        let commit_ordered = g.objects().iter().all(|&x| {
            g.ww_order(x).windows(2).all(|w| w[0] < w[1])
                && g.wr_pairs(x).iter().all(|&(w, r)| w < r)
        });
        prop_assume!(commit_ordered);
        for model in [SpecModel::Si, SpecModel::Ser, SpecModel::Psi] {
            let mut incremental = SiMonitor::new(model);
            let mut dense = SiMonitor::new_dense(model);
            prop_assert!(!incremental.is_dense_oracle());
            prop_assert!(dense.is_dense_oracle());
            let h = g.history();
            let mut last_of_session: Vec<Option<TxId>> = vec![None; h.session_count()];
            let mut first_violating: Option<TxId> = None;
            for t in h.tx_ids() {
                let session = h.session_of(t);
                let observed = ObservedTx {
                    session_predecessor: session.and_then(|s| last_of_session[s.index()]),
                    reads_from: h
                        .transaction(t)
                        .external_read_set()
                        .into_iter()
                        .map(|x| (x, g.writer_for(t, x).expect("reads have writers")))
                        .collect(),
                    writes: h.transaction(t).write_set(),
                };
                incremental.append(observed.clone());
                dense.append(observed);
                if let Some(s) = session {
                    last_of_session[s.index()] = Some(t);
                }
                prop_assert_eq!(
                    incremental.is_consistent(),
                    dense.is_consistent(),
                    "{} diverged at {}",
                    model,
                    t
                );
                if first_violating.is_none() && !incremental.is_consistent() {
                    first_violating = Some(t);
                }
            }
            // Cross-check the final verdict against the offline check too.
            let offline_ok = match model {
                SpecModel::Si => check_si(&g).is_ok(),
                SpecModel::Ser => check_ser(&g).is_ok(),
                SpecModel::Psi => check_psi(&g).is_ok(),
            };
            prop_assert_eq!(incremental.is_consistent(), offline_ok);
            prop_assert_eq!(first_violating.is_some(), !offline_ok);
        }
    }

    /// The explainer produces a connected cycle of real edges without two
    /// adjacent anti-dependencies, exactly when the graph is outside
    /// GraphSI (and INT holds, which the generator guarantees).
    #[test]
    fn explainer_witnesses_are_genuine(g in arb_dependency_graph(7, 3)) {
        match explain_si_violation(&g) {
            None => prop_assert!(check_si(&g).is_ok()),
            Some(cycle) => {
                prop_assert!(check_si(&g).is_err());
                prop_assert!(!cycle.edges.is_empty());
                for w in cycle.edges.windows(2) {
                    prop_assert_eq!(w[0].to(), w[1].from());
                }
                prop_assert_eq!(
                    cycle.edges.last().unwrap().to(),
                    cycle.edges.first().unwrap().from()
                );
                prop_assert!(!cycle.has_adjacent_rw(), "witness not in the forbidden shape");
            }
        }
    }
}
