//! Operational validation: every run of every engine must satisfy its
//! model's axioms (ground truth) *and* land in the corresponding history
//! set via the dependency-graph characterisations.

mod common;

use analysing_si::analysis::{check_psi, check_ser, check_si, classify_graph};
use analysing_si::depgraph::extract;
use analysing_si::execution::SpecModel;
use analysing_si::mvcc::{
    stress_si_engine, Engine, PsiEngine, Scheduler, SchedulerConfig, SerEngine, ShardedSiEngine,
    SiEngine, SsiEngine,
};
use analysing_si::workloads::random::{random_mix, RandomMix};
use analysing_si::workloads::{bank, counter, fork};

fn mixes(seed: u64) -> Vec<(RandomMix, f64)> {
    vec![
        (
            RandomMix { seed, sessions: 3, txs_per_session: 5, objects: 4, ..Default::default() },
            0.0,
        ),
        (
            RandomMix {
                seed,
                sessions: 4,
                txs_per_session: 6,
                objects: 8,
                read_ratio: 0.4,
                ..Default::default()
            },
            0.2,
        ),
    ]
}

#[test]
fn si_engine_stays_in_graph_si() {
    for seed in 0..15 {
        for (mix, _) in mixes(seed) {
            let w = random_mix(&mix);
            let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
            let run = s.run(&mut SiEngine::new(mix.objects), &w);
            assert!(SpecModel::Si.check(&run.execution).is_ok(), "axioms (seed {seed})");
            let g = extract(&run.execution).unwrap();
            assert!(check_si(&g).is_ok(), "graph class (seed {seed})");
        }
    }
}

#[test]
fn sharded_si_engine_stays_in_graph_si() {
    // The lock-striped engine makes exactly the same promises as the
    // reference SI engine; `tests/sharded_differential.rs` additionally
    // proves run-for-run byte identity.
    for seed in 0..15 {
        for (mix, _) in mixes(seed) {
            let w = random_mix(&mix);
            let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
            let run = s.run(&mut ShardedSiEngine::new(mix.objects), &w);
            assert!(SpecModel::Si.check(&run.execution).is_ok(), "axioms (seed {seed})");
            let g = extract(&run.execution).unwrap();
            assert!(check_si(&g).is_ok(), "graph class (seed {seed})");
        }
    }
}

#[test]
fn ser_engine_stays_in_graph_ser() {
    for seed in 0..15 {
        for (mix, _) in mixes(seed) {
            let w = random_mix(&mix);
            let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
            let run = s.run(&mut SerEngine::new(mix.objects), &w);
            assert!(SpecModel::Ser.check(&run.execution).is_ok(), "axioms (seed {seed})");
            let g = extract(&run.execution).unwrap();
            assert!(check_ser(&g).is_ok(), "graph class (seed {seed})");
        }
    }
}

#[test]
fn psi_engine_stays_in_graph_psi() {
    for seed in 0..15 {
        for (mix, bg) in mixes(seed) {
            let w = random_mix(&mix);
            let mut s = Scheduler::new(SchedulerConfig {
                seed,
                background_probability: bg,
                ..Default::default()
            });
            let run = s.run(&mut PsiEngine::new(mix.objects, 3), &w);
            assert!(SpecModel::Psi.check(&run.execution).is_ok(), "axioms (seed {seed})");
            let g = extract(&run.execution).unwrap();
            assert!(check_psi(&g).is_ok(), "graph class (seed {seed})");
        }
    }
}

#[test]
fn ssi_engine_stays_in_graph_ser() {
    // The whole point of SSI: SI reads, serializable histories. Every run
    // must land in GraphSER — Theorem 19 says preventing pivots suffices.
    for seed in 0..15 {
        for (mix, _) in mixes(seed) {
            let w = random_mix(&mix);
            let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
            let run = s.run(&mut SsiEngine::new(mix.objects), &w);
            // The run is an SI execution operationally…
            assert!(SpecModel::Si.check(&run.execution).is_ok(), "axioms (seed {seed})");
            // …and its history is serializable.
            let g = extract(&run.execution).unwrap();
            assert!(check_ser(&g).is_ok(), "SSI produced a non-SER graph (seed {seed})");
        }
    }
    // Including on the write-skew workload that plain SI fails.
    let ws = bank::write_skew(2, 60);
    for seed in 0..30 {
        let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
        let run = s.run(&mut SsiEngine::new(4), &ws);
        let g = extract(&run.execution).unwrap();
        assert!(check_ser(&g).is_ok(), "SSI permitted write skew (seed {seed})");
    }
}

#[test]
fn engine_strength_ordering_on_anomaly_workloads() {
    // The engines' reachable anomaly classes are strictly ordered:
    // SER ⊆ SI ⊆ PSI. Check each engine's runs against the *stronger*
    // classes: SER runs are always in GraphSER; SI runs always in GraphSI
    // but at least one leaves GraphSER; PSI runs always in GraphPSI but at
    // least one leaves GraphSI.
    let ws = bank::write_skew(1, 60);
    let mut si_left_ser = false;
    for seed in 0..40 {
        let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
        let run = s.run(&mut SiEngine::new(2), &ws);
        let g = extract(&run.execution).unwrap();
        let class = classify_graph(&g);
        assert!(class.si);
        if !class.ser {
            si_left_ser = true;
        }
    }
    assert!(si_left_ser, "SI engine never produced write skew");

    let lf = fork::long_fork_repeated(1, 5);
    let mut psi_left_si = false;
    for seed in 0..40 {
        let mut s = Scheduler::new(SchedulerConfig {
            seed,
            background_probability: 0.02,
            ..Default::default()
        });
        let run = s.run(&mut PsiEngine::new(2, 2), &lf);
        let g = extract(&run.execution).unwrap();
        let class = classify_graph(&g);
        assert!(class.psi);
        if !class.si {
            psi_left_si = true;
        }
    }
    assert!(psi_left_si, "PSI engine never produced a long fork");
}

#[test]
fn si_engine_never_loses_updates_or_forks() {
    // Lost update and long fork are outside GraphSI; the SI engine can
    // therefore never produce them, on any seed.
    let lu = counter::shared_counter(3, 4, 1);
    let lf = fork::long_fork(2);
    for seed in 0..25 {
        for w in [&lu, &lf] {
            let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
            let run = s.run(&mut SiEngine::new(4), w);
            let g = extract(&run.execution).unwrap();
            assert!(check_si(&g).is_ok(), "seed {seed}");
        }
    }
}

#[test]
fn concurrent_stress_is_validated_end_to_end() {
    for seed in [1, 2, 3] {
        let result = stress_si_engine(3, 4, 30, seed);
        assert!(SpecModel::Si.check(&result.execution).is_ok());
        let g = extract(&result.execution).unwrap();
        assert!(check_si(&g).is_ok());
    }
}

#[test]
fn abort_rates_reflect_model_strength() {
    // On a read-heavy contended mix, the SER engine (validating reads)
    // aborts at least as often as the SI engine (validating only writes).
    let mix = RandomMix {
        sessions: 6,
        txs_per_session: 10,
        ops_per_tx: 5,
        objects: 6,
        read_ratio: 0.7,
        zipf_s: 1.0,
        seed: 99,
    };
    let w = random_mix(&mix);
    let mut si_aborts = 0;
    let mut ser_aborts = 0;
    for seed in 0..10 {
        let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
        si_aborts += s.run(&mut SiEngine::new(mix.objects), &w).stats.aborted;
        let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
        ser_aborts += s.run(&mut SerEngine::new(mix.objects), &w).stats.aborted;
    }
    assert!(
        ser_aborts >= si_aborts,
        "SER aborted less than SI on a read-heavy mix: {ser_aborts} < {si_aborts}"
    );
}

#[test]
fn engine_names() {
    assert_eq!(SiEngine::new(1).name(), "SI");
    assert_eq!(SerEngine::new(1).name(), "SER");
    assert_eq!(PsiEngine::new(1, 2).name(), "PSI");
    assert_eq!(ShardedSiEngine::new(1).name(), "SI-sharded");
}
