//! Differential validation of the lock-striped engine.
//!
//! Two obligations, one per execution regime:
//!
//! * **Deterministic** — driven by the [`Scheduler`], the sharded engine
//!   must be *observationally identical* to the reference [`SiEngine`]:
//!   the recorded history serialises to byte-identical JSON and the run
//!   counters match, for every seed, workload shape, stripe count and GC
//!   interval. Striping and epoch GC are pure synchronisation changes;
//!   any visible divergence is a bug.
//! * **Concurrent** — under the real multi-threaded stress harness the
//!   interleaving is no longer deterministic, so there is no reference
//!   run to compare against. Instead every recorded run must satisfy the
//!   paper's ground truth: the Definition 4 axiom instantiation of SI
//!   and membership in `GraphSI` (Theorem 9).

use analysing_si::analysis::check_si;
use analysing_si::depgraph::extract;
use analysing_si::execution::SpecModel;
use analysing_si::mvcc::{
    stress, Scheduler, SchedulerConfig, ShardedSiEngine, ShardedStoreConfig, SiEngine,
    StressConfig, StressEngine,
};
use analysing_si::workloads::random::{random_mix, RandomMix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Byte-identity: the sharded recorder output equals the unsharded
    /// one under the deterministic scheduler, for any striping.
    #[test]
    fn sharded_runs_are_byte_identical_to_unsharded(
        seed in 0u64..500,
        sessions in 2usize..5,
        txs in 2usize..6,
        objects in 2usize..9,
        read_pct in 0u32..80,
        shards in 1usize..6,
        gc_interval in 0u64..3,
    ) {
        let read_ratio = f64::from(read_pct) / 100.0;
        let mix = RandomMix { seed, sessions, txs_per_session: txs, objects, read_ratio, ..Default::default() };
        let w = random_mix(&mix);

        let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
        let reference = s.run(&mut SiEngine::new(objects), &w);

        let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
        let mut sharded = ShardedSiEngine::with_config(
            objects,
            ShardedStoreConfig { shards, gc_interval, ..Default::default() },
        );
        let run = s.run(&mut sharded, &w);

        prop_assert_eq!(
            serde_json::to_string(&run.history).unwrap(),
            serde_json::to_string(&reference.history).unwrap(),
            "recorder output diverged (shards={}, gc_interval={})", shards, gc_interval
        );
        prop_assert_eq!(run.stats, reference.stats);
    }

    /// Ground truth: concurrent sharded runs are legal SI executions.
    #[test]
    fn concurrent_sharded_runs_satisfy_si_axioms_and_graph(
        seed in 0u64..200,
        threads in 2usize..5,
        shards in 1usize..5,
        hot in any::<bool>(),
    ) {
        let config = if hot {
            StressConfig::high_contention(threads, 12, seed)
        } else {
            StressConfig::low_contention(threads, 12, seed)
        };
        let outcome = stress(&config, StressEngine::Sharded { shards, gc_interval: 16 });
        prop_assert!(
            SpecModel::Si.check(&outcome.result.execution).is_ok(),
            "axioms failed (seed={}, threads={}, shards={})", seed, threads, shards
        );
        let g = extract(&outcome.result.execution).unwrap();
        prop_assert!(
            check_si(&g).is_ok(),
            "left GraphSI (seed={}, threads={}, shards={})", seed, threads, shards
        );
    }
}

/// The GC-on-every-install configuration is the most adversarial: the
/// store prunes as eagerly as the live-snapshot floor allows while the
/// scheduler holds snapshots open. Identity must still hold.
#[test]
fn eager_gc_does_not_change_observable_behaviour() {
    for seed in 0..40 {
        let mix =
            RandomMix { seed, sessions: 3, txs_per_session: 6, objects: 4, ..Default::default() };
        let w = random_mix(&mix);
        let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
        let reference = s.run(&mut SiEngine::new(4), &w);

        let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
        let mut sharded = ShardedSiEngine::with_config(
            4,
            ShardedStoreConfig { shards: 3, gc_interval: 1, ..Default::default() },
        );
        let run = s.run(&mut sharded, &w);
        assert_eq!(
            serde_json::to_string(&run.history).unwrap(),
            serde_json::to_string(&reference.history).unwrap(),
            "seed {seed}"
        );
        assert!(sharded.gc_stats().passes > 0 || run.stats.committed == 0, "GC never ran");
    }
}
