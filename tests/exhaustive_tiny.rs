//! Exhaustive validation of the characterisations on *all* two-transaction
//! histories over two objects (several thousand histories): membership
//! via dependency graphs (Theorems 8/9/21) must equal membership via
//! brute-force search over executions (Definitions 4/20), for every
//! history and every model — including internally inconsistent and
//! unjustifiable-read histories, which both sides must reject.

use analysing_si::analysis::{history_membership, SearchBudget};
use analysing_si::execution::brute::{self, BruteConfig};
use analysing_si::execution::SpecModel;
use analysing_si::model::{History, HistoryBuilder, Obj, Op};

/// All candidate operations for one slot of transaction `tx_number`
/// (writes write a per-transaction value so write provenance is
/// non-trivial; reads guess values 0..=2, most of which are
/// unjustifiable — intentionally).
fn slot_candidates(tx_number: u64) -> Vec<Op> {
    let mut ops = Vec::new();
    for obj in [Obj(0), Obj(1)] {
        for v in 0..=2u64 {
            ops.push(Op::read(obj, v));
        }
        ops.push(Op::write(obj, tx_number));
    }
    ops
}

/// All op sequences of length 1 or 2 for one transaction.
fn tx_candidates(tx_number: u64) -> Vec<Vec<Op>> {
    let slots = slot_candidates(tx_number);
    let mut out: Vec<Vec<Op>> = slots.iter().map(|&op| vec![op]).collect();
    for &a in &slots {
        for &b in &slots {
            out.push(vec![a, b]);
        }
    }
    out
}

fn build_history(t1: &[Op], t2: &[Op], same_session: bool) -> History {
    let mut b = HistoryBuilder::new();
    b.object("x");
    b.object("y");
    let s1 = b.session();
    let s2 = if same_session { s1 } else { b.session() };
    b.push_tx(s1, t1.to_vec());
    b.push_tx(s2, t2.to_vec());
    b.build()
}

#[test]
fn exhaustive_two_transaction_histories() {
    let budget = SearchBudget::default();
    let cfg = BruteConfig::default();
    let t1s = tx_candidates(1);
    let t2s = tx_candidates(2);

    let mut checked = 0usize;
    let mut allowed = [0usize; 3];
    for t1 in &t1s {
        for t2 in &t2s {
            for same_session in [false, true] {
                let h = build_history(t1, t2, same_session);
                for (mi, model) in SpecModel::ALL.into_iter().enumerate() {
                    let via_graphs = history_membership(model, &h, &budget)
                        .expect("budget ample for tiny histories");
                    let via_axioms = brute::is_allowed(model, &h, &cfg).expect("budget ample");
                    assert_eq!(
                        via_graphs, via_axioms,
                        "characterisation disagreement under {model} on:\n{h}"
                    );
                    if via_graphs {
                        allowed[mi] += 1;
                    }
                }
                // Model inclusions, exhaustively.
                let ser = history_membership(SpecModel::Ser, &h, &budget).unwrap();
                let si = history_membership(SpecModel::Si, &h, &budget).unwrap();
                let psi = history_membership(SpecModel::Psi, &h, &budget).unwrap();
                assert!(!ser || si, "HistSER ⊄ HistSI on:\n{h}");
                assert!(!si || psi, "HistSI ⊄ HistPSI on:\n{h}");
                checked += 1;
            }
        }
    }
    // Sanity on the census: we checked thousands of histories and the
    // model sets are strictly nested somewhere in the space.
    assert!(checked > 5_000, "expected thousands of histories, got {checked}");
    let [ser, si, psi] = allowed;
    assert!(ser > 0, "some tiny histories must be serializable");
    assert!(si >= ser && psi >= si);
    eprintln!("checked {checked} histories: SER {ser}, SI {si}, PSI {psi}");
}

/// With only two transactions there is no room for a long fork, so SI and
/// PSI coincide — while write skew already separates SI from SER. The
/// census above must reflect both facts.
#[test]
fn two_transaction_separations() {
    let budget = SearchBudget::default();
    // Write skew separates SER from SI.
    let mut b = HistoryBuilder::new();
    let x = b.object("x");
    let y = b.object("y");
    let (s1, s2) = (b.session(), b.session());
    b.push_tx(s1, [Op::read(x, 0), Op::write(y, 1)]);
    b.push_tx(s2, [Op::read(y, 0), Op::write(x, 2)]);
    let h = b.build();
    assert!(!history_membership(SpecModel::Ser, &h, &budget).unwrap());
    assert!(history_membership(SpecModel::Si, &h, &budget).unwrap());

    // SI = PSI over every two-transaction history.
    for t1 in tx_candidates(1) {
        for t2 in tx_candidates(2).into_iter().step_by(7) {
            let h = build_history(&t1, &t2, false);
            assert_eq!(
                history_membership(SpecModel::Si, &h, &budget).unwrap(),
                history_membership(SpecModel::Psi, &h, &budget).unwrap(),
                "SI ≠ PSI on a two-transaction history:\n{h}"
            );
        }
    }
}
