//! Property tests for the paper's central results: Theorem 10
//! (soundness and completeness of the `GraphSI` characterisation),
//! Lemma 12, Lemma 15 and Proposition 14.

mod common;

use common::arb_dependency_graph;
use proptest::prelude::*;

use analysing_si::analysis::{
    check_si, execution_from_graph, execution_from_graph_iterative, smallest_solution,
};
use analysing_si::depgraph::extract;
use analysing_si::execution::SpecModel;
use analysing_si::relations::Relation;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 10(i), soundness: for every G ∈ GraphSI the construction
    /// yields a full execution X ∈ ExecSI with graph(X) = G.
    #[test]
    fn soundness_one_shot(g in arb_dependency_graph(7, 3)) {
        prop_assume!(check_si(&g).is_ok());
        let exec = execution_from_graph(&g).expect("G ∈ GraphSI must be realisable");
        prop_assert!(exec.is_co_total());
        prop_assert!(SpecModel::Si.check(&exec).is_ok(),
            "constructed execution violates the SI axioms: {:?}",
            SpecModel::Si.check(&exec));
        let roundtrip = extract(&exec).expect("valid executions extract");
        prop_assert_eq!(roundtrip, g, "graph(X) differs from G");
    }

    /// The same property for the paper-literal iterative construction.
    #[test]
    fn soundness_iterative(g in arb_dependency_graph(6, 3)) {
        prop_assume!(check_si(&g).is_ok());
        let exec = execution_from_graph_iterative(&g).expect("G ∈ GraphSI must be realisable");
        prop_assert!(exec.is_co_total());
        prop_assert!(SpecModel::Si.check(&exec).is_ok());
        prop_assert_eq!(extract(&exec).expect("valid executions extract"), g);
    }

    /// The construction succeeds *exactly* on GraphSI members, with a
    /// genuine witness cycle otherwise.
    #[test]
    fn construction_agrees_with_membership(g in arb_dependency_graph(7, 3)) {
        let membership = check_si(&g).is_ok();
        match execution_from_graph(&g) {
            Ok(_) => prop_assert!(membership),
            Err(err) => {
                prop_assert!(!membership);
                let composed = g.dep_relation().compose_opt(&g.rw_relation());
                prop_assert!(!err.cycle.is_empty());
                for w in err.cycle.windows(2) {
                    prop_assert!(composed.contains(w[0], w[1]));
                }
                prop_assert!(composed.contains(*err.cycle.last().unwrap(), err.cycle[0]));
            }
        }
    }

    /// Theorem 10(ii), completeness: graphs of SI executions are in
    /// GraphSI. (Executions are produced by the soundness construction
    /// itself after perturbing the input; the engine-based tests cover
    /// operationally produced executions.)
    #[test]
    fn completeness_roundtrip(g in arb_dependency_graph(7, 3)) {
        prop_assume!(check_si(&g).is_ok());
        let exec = execution_from_graph(&g).unwrap();
        let extracted = extract(&exec).unwrap();
        prop_assert!(check_si(&extracted).is_ok());
    }

    /// Lemma 12: in any SI execution, VIS ; RW ⊆ CO.
    #[test]
    fn lemma12(g in arb_dependency_graph(7, 3)) {
        prop_assume!(check_si(&g).is_ok());
        let exec = execution_from_graph(&g).unwrap();
        let vis_rw = exec.vis().compose(&g.rw_relation());
        prop_assert!(vis_rw.is_subset(exec.co()));
    }

    /// Proposition 14: S -RW→ T iff S ≠ T, S reads some x that T writes,
    /// and T is not visible to S.
    #[test]
    fn proposition14(g in arb_dependency_graph(6, 3)) {
        prop_assume!(check_si(&g).is_ok());
        let exec = execution_from_graph(&g).unwrap();
        let graph = extract(&exec).unwrap();
        let rw = graph.rw_relation();
        let h = exec.history();
        for s in h.tx_ids() {
            for t in h.tx_ids() {
                let lhs = rw.contains(s, t);
                let rhs = s != t
                    && h.objects().iter().any(|&x| {
                        h.transaction(s).reads_externally(x)
                            && h.transaction(t).writes_to(x)
                    })
                    && !exec.vis().contains(t, s);
                prop_assert_eq!(lhs, rhs, "Proposition 14 fails at {} -RW-> {}", s, t);
            }
        }
    }

    /// Lemma 15: the closed-form pair solves (S1)–(S5), contains the
    /// enforced edges, and is the least such solution (spot-checked
    /// against the solution for a larger R).
    #[test]
    fn lemma15_solution_properties(
        g in arb_dependency_graph(7, 3),
        extra in proptest::collection::vec((0..7u32, 0..7u32), 0..4),
    ) {
        let n = g.tx_count();
        let mut r = Relation::new(n);
        for (a, b) in extra {
            let (a, b) = (a as usize % n, b as usize % n);
            if a != b {
                r.insert(
                    analysing_si::relations::TxId::from_index(a),
                    analysing_si::relations::TxId::from_index(b),
                );
            }
        }
        let base = smallest_solution(&g, &Relation::new(n));
        let sol = smallest_solution(&g, &r);
        prop_assert!(sol.satisfies_inequalities(&g));
        prop_assert!(r.is_subset(&sol.co));
        // Monotonicity in R (a consequence of minimality).
        prop_assert!(base.co.is_subset(&sol.co));
        prop_assert!(base.vis.is_subset(&sol.vis));
    }

    /// The one-shot and iterative constructions agree on membership and
    /// both produce executions realising the same dependency graph.
    #[test]
    fn constructions_agree(g in arb_dependency_graph(6, 3)) {
        let one = execution_from_graph(&g);
        let iter = execution_from_graph_iterative(&g);
        prop_assert_eq!(one.is_ok(), iter.is_ok());
        if let (Ok(a), Ok(b)) = (one, iter) {
            prop_assert_eq!(extract(&a).unwrap(), extract(&b).unwrap());
        }
    }
}
