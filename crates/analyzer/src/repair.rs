//! Repair search: machine-verified fix suggestions.
//!
//! Two repair families, matching the two error diagnostics:
//!
//! * **Read promotion** (for SI001): Fekete et al.'s constraint
//!   materialisation. Promoting a read of `o` in program `P` to an
//!   identity write makes formerly-vulnerable anti-dependencies
//!   write-write conflicts, which first-committer-wins serialises. The
//!   search enumerates minimal promotion sets drawn from the conflict
//!   objects of the reported dangerous structure and keeps only those the
//!   re-run analysis verifies.
//!
//! * **Piece merging** (for SI002): coarsening the chopping. The search
//!   first tries every single adjacent merge; if none suffices it falls
//!   back to the greedy advisor walk, recording each step, and verifies
//!   the final chopping.
//!
//! Every returned [`Repair`] has been verified by re-running the exact
//! analysis that produced the diagnostic on the repaired program set —
//! `si-lint` never suggests a fix it cannot prove.

use si_chopping::{analyse_chopping, ChopEdge, Criterion, PieceId, ProgramId, ProgramSet};
use si_model::Obj;
use si_robustness::{check_ser_robustness_refined_split, DangerousStructure, StaticDepGraph};

use crate::diag::{Repair, RepairAction};

/// A promotion candidate: promote reads of `1` in base program `0`.
type Candidate = (ProgramId, Obj);

/// Collects promotion candidates from the conflict objects of the two RW
/// edges of each dangerous structure. For an anti-dependency
/// `reader -RW(o)-> writer` two promotions can help:
///
/// * promote the read of `o` in the *reader* — the classic
///   materialisation, turning the edge into a write-write conflict when
///   the writer's write of `o` is guaranteed;
/// * promote the read of `o` in the *writer* (when it reads `o` at all) —
///   needed when the writer's own write of `o` is only conditional
///   (a may-write): the identity write is unconditional, so it restores
///   the guaranteed conflict the refinement may subtract.
///
/// `whole` is the unchopped (and possibly replicated) program set aligned
/// with the structures' vertex ids; candidates are mapped back to the
/// `base_programs` original programs (vertex `i` is a copy of program
/// `i mod base_programs`).
fn promotion_candidates(
    structures: &[DangerousStructure],
    whole: &ProgramSet,
    base_programs: usize,
) -> Vec<Candidate> {
    let mut out: Vec<Candidate> = Vec::new();
    for s in structures {
        let DangerousStructure::AdjacentAntiDependencies { a, b, c, .. } = s else {
            continue;
        };
        for (reader, writer) in [(*a, *b), (*b, *c)] {
            let rp = PieceId { program: ProgramId(reader.index()), piece: 0 };
            let wp = PieceId { program: ProgramId(writer.index()), piece: 0 };
            for &o in whole.reads(rp) {
                if whole.writes(wp).contains(&o) {
                    out.push((ProgramId(reader.index() % base_programs), o));
                    if whole.reads(wp).contains(&o) {
                        out.push((ProgramId(writer.index() % base_programs), o));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Returns `ps` with each `(program, object)` promotion applied: `object`
/// is added to the write set of every piece of `program` that reads it
/// (or of the first piece if none does — the identity write can go
/// anywhere in the transaction).
fn apply_promotions(ps: &ProgramSet, promotions: &[Candidate]) -> ProgramSet {
    let mut out = ProgramSet::new();
    // Preserve object interning.
    let mut i = 0;
    while let Some(name) = ps.object_name(Obj::from_index(i)) {
        out.object(name);
        i += 1;
    }
    for p in ps.programs() {
        let np = out.add_program(ps.program_name(p));
        let wanted: Vec<Obj> =
            promotions.iter().filter(|(q, _)| *q == p).map(|&(_, o)| o).collect();
        let reads_it = |o: Obj| {
            (0..ps.pieces_of(p)).any(|j| ps.reads(PieceId { program: p, piece: j }).contains(&o))
        };
        for j in 0..ps.pieces_of(p) {
            let piece = PieceId { program: p, piece: j };
            let mut writes: Vec<Obj> = ps.writes(piece).to_vec();
            for &o in &wanted {
                let here = ps.reads(piece).contains(&o);
                // Fall back to the first piece for objects the program
                // never reads (defensive; candidates always come from
                // read sets).
                if here || (j == 0 && !reads_it(o)) {
                    writes.push(o);
                }
            }
            out.add_piece(np, ps.piece_label(piece), ps.reads(piece).iter().copied(), writes);
        }
    }
    out
}

/// Verifies a promotion set: applies it to both the may and must sets
/// (the identity write is unconditional, so it is a guaranteed write) and
/// re-runs the refined split robustness check at the same instance count.
fn promotions_fix(
    may: &ProgramSet,
    must: &ProgramSet,
    promotions: &[Candidate],
    instances: usize,
) -> bool {
    let rmay = apply_promotions(may, promotions);
    let rmust = apply_promotions(must, promotions);
    let gmay = StaticDepGraph::from_programs_with_instances(&rmay, instances);
    let gmust = StaticDepGraph::from_programs_with_instances(&rmust, instances);
    check_ser_robustness_refined_split(&gmay, &gmust).robust
}

fn promotion_repair(base: &ProgramSet, promotions: &[Candidate]) -> Repair {
    let actions: Vec<RepairAction> = promotions
        .iter()
        .map(|&(p, o)| RepairAction::Promote {
            program: base.program_name(p).to_owned(),
            object: base.object_name(o).unwrap_or("?").to_owned(),
        })
        .collect();
    let parts: Vec<String> = actions
        .iter()
        .map(|a| match a {
            RepairAction::Promote { program, object } => {
                format!("promote the read of {object} in {program} to an identity write")
            }
            RepairAction::MergePieces { .. } => unreachable!("promotion repair"),
        })
        .collect();
    Repair { description: parts.join("; "), actions, verified: true }
}

/// Searches for minimal verified promotion sets fixing the given
/// dangerous structures.
///
/// Subsets of the candidate pool are tried in increasing size (then
/// lexicographic candidate order) up to `max_size`; supersets of an
/// already-accepted fix are skipped, so every returned repair is minimal
/// among those found. At most `max_repairs` repairs are returned, each
/// verified by [`promotions_fix`].
pub(crate) fn search_promotions(
    may: &ProgramSet,
    must: &ProgramSet,
    structures: &[DangerousStructure],
    whole: &ProgramSet,
    instances: usize,
    max_size: usize,
    max_repairs: usize,
) -> Vec<Repair> {
    if max_repairs == 0 {
        return Vec::new();
    }
    let candidates = promotion_candidates(structures, whole, may.program_count());
    let mut accepted: Vec<Vec<Candidate>> = Vec::new();
    let mut repairs = Vec::new();
    for size in 1..=max_size.min(candidates.len()) {
        for subset in combinations(&candidates, size) {
            if accepted.iter().any(|fix| fix.iter().all(|c| subset.contains(c))) {
                continue; // strict superset of a known minimal fix
            }
            if promotions_fix(may, must, &subset, instances) {
                repairs.push(promotion_repair(may, &subset));
                accepted.push(subset);
                if repairs.len() >= max_repairs {
                    return repairs;
                }
            }
        }
    }
    repairs
}

/// All `size`-element subsets of `pool`, in lexicographic index order.
fn combinations(pool: &[Candidate], size: usize) -> Vec<Vec<Candidate>> {
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..size).collect();
    if size == 0 || size > pool.len() {
        return out;
    }
    loop {
        out.push(idx.iter().map(|&i| pool[i]).collect());
        // Advance the combination counter.
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + pool.len() - size {
                break;
            }
        }
        idx[i] += 1;
        for j in i + 1..size {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Searches for verified merge repairs making the chopping correct under
/// `criterion`.
///
/// Every single adjacent merge is tried first; all that fix the chopping
/// are returned (up to `max_repairs`). If no single merge suffices, the
/// greedy advisor walk is replayed with each step recorded, yielding one
/// multi-step repair. Budget exhaustion yields no repairs (never an
/// unverified suggestion).
pub(crate) fn search_merges(
    programs: &ProgramSet,
    criterion: Criterion,
    step_budget: usize,
    max_repairs: usize,
) -> Vec<Repair> {
    if max_repairs == 0 {
        return Vec::new();
    }
    let mut repairs = Vec::new();
    for p in programs.programs() {
        for k in 0..programs.pieces_of(p).saturating_sub(1) {
            let merged = programs.merge_adjacent_pieces(p, k);
            match analyse_chopping(&merged, criterion, step_budget) {
                Ok(report) if report.correct => {
                    repairs.push(merge_repair(programs, &[(p, k)]));
                    if repairs.len() >= max_repairs {
                        return repairs;
                    }
                }
                _ => {}
            }
        }
    }
    if !repairs.is_empty() {
        return repairs;
    }
    // No single merge fixes it: replay the greedy advisor walk, recording
    // each step. Each recorded index refers to the set *after* the
    // preceding merges, matching sequential application.
    let mut current = programs.clone();
    let mut steps: Vec<(ProgramId, usize)> = Vec::new();
    loop {
        let Ok(report) = analyse_chopping(&current, criterion, step_budget) else {
            return Vec::new(); // budget exceeded: stay silent
        };
        let Some(cycle) = report.witness else {
            break;
        };
        let Some(pred_at) = cycle.labels.iter().position(|&l| l == ChopEdge::Predecessor) else {
            return Vec::new();
        };
        let from = report.nodes.piece(cycle.nodes[pred_at]);
        let to = report.nodes.piece(cycle.nodes[(pred_at + 1) % cycle.nodes.len()]);
        let merge_at = to.piece.min(from.piece);
        current = current.merge_adjacent_pieces(from.program, merge_at);
        steps.push((from.program, merge_at));
    }
    if steps.is_empty() {
        Vec::new() // already correct: nothing to repair
    } else {
        vec![merge_repair(programs, &steps)]
    }
}

fn merge_repair(base: &ProgramSet, steps: &[(ProgramId, usize)]) -> Repair {
    let actions: Vec<RepairAction> = steps
        .iter()
        .map(|&(p, k)| RepairAction::MergePieces {
            program: base.program_name(p).to_owned(),
            piece: k,
        })
        .collect();
    let parts: Vec<String> = steps
        .iter()
        .map(|&(p, k)| format!("merge pieces {k} and {} of {}", k + 1, base.program_name(p)))
        .collect();
    let mut description = parts.join(", then ");
    if steps.len() > 1 {
        description.push_str(" (applied in order)");
    }
    Repair { description, actions, verified: true }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_robustness::enumerate_dangerous_structures;

    fn write_skew() -> ProgramSet {
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let y = ps.object("y");
        let w1 = ps.add_program("w1");
        ps.add_piece(w1, "p", [x, y], [x]);
        let w2 = ps.add_program("w2");
        ps.add_piece(w2, "p", [x, y], [y]);
        ps
    }

    #[test]
    fn single_promotion_fixes_write_skew() {
        let ps = write_skew();
        let whole = ps.unchopped();
        let g = StaticDepGraph::from_programs(&ps);
        let structures = enumerate_dangerous_structures(&g, true, 16);
        assert!(!structures.is_empty());
        let repairs = search_promotions(&ps, &ps, &structures, &whole, 1, 2, 4);
        assert!(!repairs.is_empty());
        // Minimality: a single promotion suffices for write skew.
        assert_eq!(repairs[0].actions.len(), 1);
        assert!(repairs.iter().all(|r| r.verified));
        assert!(repairs[0].description.contains("promote the read of"));
    }

    #[test]
    fn promotions_really_verify() {
        // Manually check the repair the search claims: promoting y in w1.
        let ps = write_skew();
        let y = Obj(1);
        assert!(promotions_fix(&ps, &ps, &[(ProgramId(0), y)], 1));
        // Promoting an unrelated fresh object would not fix anything, and
        // the search never proposes it (not in any conflict set).
        let whole = ps.unchopped();
        let g = StaticDepGraph::from_programs(&ps);
        let structures = enumerate_dangerous_structures(&g, true, 16);
        let cands = promotion_candidates(&structures, &whole, ps.program_count());
        // Reader-side candidates (w1, y) and (w2, x) from the conflict
        // objects of the two RW edges, plus the writer-side promotions of
        // the same objects (both programs read both objects here).
        assert_eq!(
            cands,
            vec![
                (ProgramId(0), Obj(0)),
                (ProgramId(0), Obj(1)),
                (ProgramId(1), Obj(0)),
                (ProgramId(1), Obj(1)),
            ]
        );
    }

    #[test]
    fn apply_promotions_adds_identity_writes() {
        let ps = write_skew();
        let fixed = apply_promotions(&ps, &[(ProgramId(0), Obj(1))]);
        let p0 = PieceId { program: ProgramId(0), piece: 0 };
        assert_eq!(fixed.writes(p0), &[Obj(0), Obj(1)]);
        // Reads and the other program are untouched.
        assert_eq!(fixed.reads(p0), ps.reads(p0));
        let p1 = PieceId { program: ProgramId(1), piece: 0 };
        assert_eq!(fixed.writes(p1), ps.writes(p1));
        assert_eq!(fixed.object_name(Obj(1)), Some("y"));
    }

    /// Figure 5: lookupAll chopped in two against an atomic-enough transfer.
    fn figure5() -> ProgramSet {
        let mut ps = ProgramSet::new();
        let a1 = ps.object("acct1");
        let a2 = ps.object("acct2");
        let t = ps.add_program("transfer");
        ps.add_piece(t, "debit", [a1], [a1]);
        ps.add_piece(t, "credit", [a2], [a2]);
        let l = ps.add_program("lookupAll");
        ps.add_piece(l, "read1", [a1], []);
        ps.add_piece(l, "read2", [a2], []);
        ps
    }

    #[test]
    fn merge_search_repairs_figure5() {
        let repairs = search_merges(&figure5(), Criterion::Si, 2_000_000, 4);
        assert!(!repairs.is_empty());
        for r in &repairs {
            assert!(r.verified);
            // Verify independently: apply the actions to a fresh copy.
            let mut current = figure5();
            for a in &r.actions {
                let RepairAction::MergePieces { program, piece } = a else {
                    panic!("merge repair with non-merge action");
                };
                let p = current
                    .programs()
                    .find(|&p| current.program_name(p) == program)
                    .expect("named program exists");
                current = current.merge_adjacent_pieces(p, *piece);
            }
            let report = analyse_chopping(&current, Criterion::Si, 2_000_000).unwrap();
            assert!(report.correct, "repair {:?} must verify", r.description);
        }
    }

    #[test]
    fn merge_search_is_empty_on_correct_choppings() {
        let ps = figure5().unchopped();
        assert!(search_merges(&ps, Criterion::Si, 2_000_000, 4).is_empty());
    }

    #[test]
    fn combinations_enumerate_in_order() {
        let pool = vec![(ProgramId(0), Obj(0)), (ProgramId(0), Obj(1)), (ProgramId(1), Obj(0))];
        let pairs = combinations(&pool, 2);
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0], vec![pool[0], pool[1]]);
        assert_eq!(pairs[2], vec![pool[1], pool[2]]);
        assert!(combinations(&pool, 4).is_empty());
    }
}
