//! A small program IR for transactional code, and its conservative
//! lowering to the read/write sets the §5–§6 analyses consume.
//!
//! The library analyses (`si-chopping`, `si-robustness`) take a
//! [`ProgramSet`] of hand-declared per-piece read/write sets. Real
//! programs are not written as set declarations: they read and write
//! *parameterised* locations (`checking[$c]`), scan *ranges* (`SELECT …
//! WHERE balance < 0`), and branch. This module models exactly those
//! shapes and derives the sets instead of trusting the caller:
//!
//! * an [`IrApp`] declares object **families** (a scalar is a family of
//!   size 1) and **programs** split into session-ordered **pieces**;
//! * each piece's body is a sequence of [`Stmt`]s: reads and writes of
//!   [`Access`] paths, and conditionals whose guard reads are explicit;
//! * [`IrApp::approximate`] lowers the app to a [`Lowered`] pair of
//!   program sets — `may` (over-approximated reads *and* writes) and
//!   `must` (under-approximated writes) — with the soundness direction
//!   documented on [`Lowered`].
//!
//! # Approximation soundness direction
//!
//! Every run-time access is contained in the derived **may** sets:
//! a parameterised access may touch any element of its family, a range
//! access may touch all of them, and a conditional may execute either
//! branch. The static dependency/chopping graphs built from the may sets
//! therefore over-approximate every producible dynamic graph, which is
//! the premise of Corollary 18 and the §6 analyses — "robust" /
//! "spliceable" verdicts on the may sets are **sound**, while "not
//! robust" may be a false positive.
//!
//! The one analysis that *subtracts* information — Fekete et al.'s
//! vulnerability refinement, which discounts an anti-dependency when the
//! two programs' write sets intersect — must not be fed over-approximated
//! writes: a write that only *may* happen cannot be relied on to trigger
//! first-committer-wins. The lowering therefore also tracks **must**
//! writes (unconditional writes to statically known objects), and the
//! driver runs the refinement as `RW(may) ∖ WW(must)`
//! ([`si_robustness::check_ser_robustness_refined_split`]).

use si_chopping::ProgramSet;
use si_model::Obj;

/// Identifies an object family within an [`IrApp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FamilyId(pub usize);

/// Identifies a program within an [`IrApp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IrProgramId(pub usize);

#[derive(Debug, Clone)]
struct Family {
    name: String,
    size: usize,
}

/// The isolation level a program's sessions run under. Mixed-level apps
/// annotate each program; the default is the store's baseline, SI.
///
/// The annotation feeds two consumers: the Fekete pivot-promotion
/// discipline (a dangerous structure whose pivot runs under
/// [`SessionLevel::Ser`] is discharged — promoting the pivot is exactly
/// the repair SI001 proposes), and witness confirmation, which judges
/// each compiled execution by the battery matching the session's level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum SessionLevel {
    /// Snapshot isolation (the baseline).
    #[default]
    Si,
    /// Serializability — e.g. the program is wrapped in `SELECT … FOR
    /// UPDATE` promotions or runs on an SER store.
    Ser,
    /// Parallel snapshot isolation — the program tolerates long forks.
    Psi,
}

impl SessionLevel {
    /// The rendered name (`"SI"`, `"SER"`, `"PSI"`).
    pub fn as_str(self) -> &'static str {
        match self {
            SessionLevel::Si => "SI",
            SessionLevel::Ser => "SER",
            SessionLevel::Psi => "PSI",
        }
    }
}

/// An access path: which object(s) a statement may touch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Access {
    /// A statically known element of a family (`checking[3]`; for a
    /// scalar family, element 0).
    Element(FamilyId, usize),
    /// A parameterised element (`checking[$c]`): exactly one element is
    /// touched at run time, but the analysis does not know which.
    Param(FamilyId, String),
    /// A predicate or range access over the whole family (`WHERE …` /
    /// full scan): any subset of the family may be touched.
    Range(FamilyId),
}

impl Access {
    /// The family the access targets.
    pub fn family(&self) -> FamilyId {
        match self {
            Access::Element(f, _) | Access::Param(f, _) | Access::Range(f) => *f,
        }
    }
}

/// One statement of a piece body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Read the access path.
    Read(Access),
    /// Write the access path.
    Write(Access),
    /// A conditional: the guard reads `guard_reads`, then exactly one of
    /// the branches runs. The analysis unions both branches into the may
    /// sets and treats neither as guaranteed.
    If {
        /// Accesses read to evaluate the guard (always performed).
        guard_reads: Vec<Access>,
        /// Statements of the `then` branch.
        then_branch: Vec<Stmt>,
        /// Statements of the `else` branch.
        else_branch: Vec<Stmt>,
    },
}

impl Stmt {
    /// A read statement.
    pub fn read(access: Access) -> Stmt {
        Stmt::Read(access)
    }

    /// A write statement.
    pub fn write(access: Access) -> Stmt {
        Stmt::Write(access)
    }

    /// A conditional statement.
    pub fn branch(
        guard_reads: Vec<Access>,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    ) -> Stmt {
        Stmt::If { guard_reads, then_branch, else_branch }
    }
}

#[derive(Debug, Clone)]
struct IrPiece {
    label: String,
    body: Vec<Stmt>,
}

#[derive(Debug, Clone)]
struct IrProgram {
    name: String,
    pieces: Vec<IrPiece>,
    level: SessionLevel,
}

/// A transactional application in IR form: families, programs, pieces.
#[derive(Debug, Clone, Default)]
pub struct IrApp {
    families: Vec<Family>,
    programs: Vec<IrProgram>,
}

/// The result of lowering an [`IrApp`]: the conservative may-sets the
/// plain analyses run on, and the must-write sets the vulnerability
/// refinement is allowed to subtract.
///
/// Invariant: `must` has the same programs, pieces and object interning
/// as `may`, and each piece's must-write set is a subset of its may-write
/// set. Reads are identical in both (the refinement never subtracts on
/// reads).
#[derive(Debug, Clone)]
pub struct Lowered {
    /// Over-approximated read/write sets (sound for Corollary 18 and the
    /// plain §6 checks).
    pub may: ProgramSet,
    /// Same structure with only the *guaranteed* writes (sound for the
    /// WW-subtraction of the Fekete refinement).
    pub must: ProgramSet,
    /// Per-program isolation-level annotations, indexed by program
    /// declaration order (aligned with `may`'s program order).
    pub levels: Vec<SessionLevel>,
}

impl IrApp {
    /// An empty application.
    pub fn new() -> IrApp {
        IrApp::default()
    }

    /// Declares (or looks up) an object family of `size` elements.
    ///
    /// # Panics
    ///
    /// Panics if the name was already declared with a different size, or
    /// if `size` is zero.
    pub fn family(&mut self, name: &str, size: usize) -> FamilyId {
        assert!(size >= 1, "a family needs at least one element");
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            assert_eq!(self.families[i].size, size, "family {name:?} redeclared with a new size");
            return FamilyId(i);
        }
        self.families.push(Family { name: name.to_owned(), size });
        FamilyId(self.families.len() - 1)
    }

    /// Declares (or looks up) a scalar object — a family of size 1 —
    /// returning the access path to it.
    pub fn scalar(&mut self, name: &str) -> Access {
        let f = self.family(name, 1);
        Access::Element(f, 0)
    }

    /// Adds an empty program; populate it with [`piece`](IrApp::piece).
    pub fn program(&mut self, name: &str) -> IrProgramId {
        self.programs.push(IrProgram {
            name: name.to_owned(),
            pieces: Vec::new(),
            level: SessionLevel::Si,
        });
        IrProgramId(self.programs.len() - 1)
    }

    /// Annotates `program` with the isolation level its sessions run
    /// under (the default is [`SessionLevel::Si`]).
    ///
    /// # Panics
    ///
    /// Panics if `program` is not from this app.
    pub fn set_level(&mut self, program: IrProgramId, level: SessionLevel) {
        self.programs[program.0].level = level;
    }

    /// The isolation level `program` is annotated with.
    ///
    /// # Panics
    ///
    /// Panics if `program` is not from this app.
    pub fn level_of(&self, program: IrProgramId) -> SessionLevel {
        self.programs[program.0].level
    }

    /// Appends a piece (one transaction of the chopped session) to
    /// `program`.
    ///
    /// # Panics
    ///
    /// Panics if `program` is not from this app or a statement references
    /// a family that is not.
    pub fn piece(&mut self, program: IrProgramId, label: &str, body: Vec<Stmt>) {
        fn check(families: usize, stmts: &[Stmt]) {
            for s in stmts {
                match s {
                    Stmt::Read(a) | Stmt::Write(a) => {
                        assert!(a.family().0 < families, "access to undeclared family");
                    }
                    Stmt::If { guard_reads, then_branch, else_branch } => {
                        for a in guard_reads {
                            assert!(a.family().0 < families, "access to undeclared family");
                        }
                        check(families, then_branch);
                        check(families, else_branch);
                    }
                }
            }
        }
        check(self.families.len(), &body);
        self.programs[program.0].pieces.push(IrPiece { label: label.to_owned(), body });
    }

    /// Number of programs.
    pub fn program_count(&self) -> usize {
        self.programs.len()
    }

    /// A program's name.
    ///
    /// # Panics
    ///
    /// Panics if `program` is not from this app.
    pub fn program_name(&self, program: IrProgramId) -> &str {
        &self.programs[program.0].name
    }

    /// The printed name of one element of a family: the bare family name
    /// for scalars, `name[i]` otherwise.
    fn object_label(&self, f: FamilyId, i: usize) -> String {
        let fam = &self.families[f.0];
        if fam.size == 1 {
            fam.name.clone()
        } else {
            format!("{}[{i}]", fam.name)
        }
    }

    /// Lowers the app to [`Lowered`] may/must program sets; see the
    /// module docs for the approximation rules and soundness direction.
    pub fn approximate(&self) -> Lowered {
        let mut may = ProgramSet::new();
        let mut must = ProgramSet::new();
        // Intern every family element up-front, in declaration order, so
        // both sets agree on Obj values and no object is "invisible" just
        // because no statement touches it.
        let mut first_obj = Vec::with_capacity(self.families.len());
        for (fi, fam) in self.families.iter().enumerate() {
            for i in 0..fam.size {
                let label = self.object_label(FamilyId(fi), i);
                let o = may.object(&label);
                let o2 = must.object(&label);
                debug_assert_eq!(o, o2);
                if i == 0 {
                    first_obj.push(o);
                }
            }
        }
        let objects_of = |a: &Access| -> Vec<Obj> {
            let f = a.family();
            let base = first_obj[f.0].index();
            match a {
                Access::Element(_, i) => {
                    assert!(*i < self.families[f.0].size, "family index out of range");
                    vec![Obj::from_index(base + i)]
                }
                // One unknown element (Param) or any subset (Range): the
                // may-approximation is the whole family either way.
                Access::Param(..) | Access::Range(_) => {
                    (0..self.families[f.0].size).map(|i| Obj::from_index(base + i)).collect()
                }
            }
        };

        for prog in &self.programs {
            let mp = may.add_program(&prog.name);
            let up = must.add_program(&prog.name);
            for piece in &prog.pieces {
                let mut reads = Vec::new();
                let mut may_writes = Vec::new();
                let mut must_writes = Vec::new();
                collect(
                    &piece.body,
                    false,
                    &objects_of,
                    &mut reads,
                    &mut may_writes,
                    &mut must_writes,
                );
                may.add_piece(mp, &piece.label, reads.iter().copied(), may_writes);
                must.add_piece(up, &piece.label, reads, must_writes);
            }
        }
        let levels = self.programs.iter().map(|p| p.level).collect();
        Lowered { may, must, levels }
    }

    /// Convenience: the over-approximated (may) program set alone, for
    /// feeding the plain library analyses directly.
    pub fn program_set(&self) -> ProgramSet {
        self.approximate().may
    }

    /// Number of pieces of `program`.
    ///
    /// # Panics
    ///
    /// Panics if `program` is not from this app.
    pub fn piece_count(&self, program: IrProgramId) -> usize {
        self.programs[program.0].pieces.len()
    }

    /// The label of `program`'s `piece`-th piece.
    ///
    /// # Panics
    ///
    /// Panics if the program or piece index is out of range.
    pub fn piece_label(&self, program: IrProgramId, piece: usize) -> &str {
        &self.programs[program.0].pieces[piece].label
    }

    /// The first interned [`Obj`] of family `f` — families are interned
    /// contiguously in declaration order, so element `i` is
    /// `Obj::from_index(base + i)`.
    fn family_base(&self, f: FamilyId) -> usize {
        self.families[..f.0].iter().map(|fam| fam.size).sum()
    }

    /// Number of elements of family `f`.
    pub fn family_size(&self, f: FamilyId) -> usize {
        self.families[f.0].size
    }

    /// Maps an interned object back to its `(family, element index)`
    /// coordinates; `None` if the index is outside every family.
    pub fn object_family(&self, o: Obj) -> Option<(FamilyId, usize)> {
        let mut base = 0;
        for (fi, fam) in self.families.iter().enumerate() {
            if o.index() < base + fam.size {
                return Some((FamilyId(fi), o.index() - base));
            }
            base += fam.size;
        }
        None
    }

    /// The interned object for element `i` of family `f`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for the family.
    pub fn family_element(&self, f: FamilyId, i: usize) -> Obj {
        assert!(i < self.families[f.0].size, "family index out of range");
        Obj::from_index(self.family_base(f) + i)
    }

    /// The ordered concrete `(reads, writes)` a run of one piece
    /// performs, with parameterised accesses instantiated:
    ///
    /// * `Element(f, i)` resolves to that object;
    /// * `Param(f, _)` resolves to `bind(f)` (the concrete family index a
    ///   witness picked, e.g. from a conflict object), else element 0;
    /// * a `Range` *read* scans the whole family, a `Range` *write*
    ///   resolves like a `Param` (one matching row is updated);
    /// * a conditional's guard reads always run, and the branch
    ///   containing writes is the one taken (a witness wants the
    ///   dangerous writes to happen; ties go to the `then` branch).
    ///
    /// Duplicates are preserved in program order — script synthesis
    /// dedups as it sees fit.
    ///
    /// # Panics
    ///
    /// Panics if the program or piece index is out of range.
    pub fn witness_accesses(
        &self,
        program: IrProgramId,
        piece: usize,
        bind: &dyn Fn(FamilyId) -> Option<usize>,
    ) -> (Vec<Obj>, Vec<Obj>) {
        let one = |a: &Access| -> Obj {
            let f = a.family();
            let i = match a {
                Access::Element(_, i) => *i,
                Access::Param(..) | Access::Range(_) => {
                    bind(f).unwrap_or(0).min(self.families[f.0].size - 1)
                }
            };
            self.family_element(f, i)
        };
        fn has_writes(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::Write(_) => true,
                Stmt::Read(_) => false,
                Stmt::If { then_branch, else_branch, .. } => {
                    has_writes(then_branch) || has_writes(else_branch)
                }
            })
        }
        fn walk(
            app: &IrApp,
            stmts: &[Stmt],
            one: &dyn Fn(&Access) -> Obj,
            reads: &mut Vec<Obj>,
            writes: &mut Vec<Obj>,
        ) {
            for s in stmts {
                match s {
                    Stmt::Read(a) => match a {
                        Access::Range(f) => {
                            let base = app.family_base(*f);
                            reads.extend(
                                (0..app.families[f.0].size).map(|i| Obj::from_index(base + i)),
                            );
                        }
                        _ => reads.push(one(a)),
                    },
                    Stmt::Write(a) => writes.push(one(a)),
                    Stmt::If { guard_reads, then_branch, else_branch } => {
                        for a in guard_reads {
                            reads.push(one(a));
                        }
                        let taken = if has_writes(then_branch) || !has_writes(else_branch) {
                            then_branch
                        } else {
                            else_branch
                        };
                        walk(app, taken, one, reads, writes);
                    }
                }
            }
        }
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        walk(self, &self.programs[program.0].pieces[piece].body, &one, &mut reads, &mut writes);
        (reads, writes)
    }

    /// Reconstructs an IR view of a hand-declared [`ProgramSet`]: every
    /// interned object becomes a scalar family (same `Obj` interning),
    /// and each piece's body reads then writes its exact sets in order.
    /// This gives set-declared lint targets the same witness-compilation
    /// path as IR targets — with no `Param`/`Range` shapes to
    /// instantiate, the reconstruction is exact, not approximate.
    pub fn from_program_set(ps: &ProgramSet) -> IrApp {
        let mut app = IrApp::new();
        for i in 0..ps.object_count() {
            let name = ps.object_name(Obj::from_index(i)).expect("interned object");
            app.family(name, 1);
        }
        for p in ps.programs() {
            let prog = app.program(ps.program_name(p));
            for k in 0..ps.pieces_of(p) {
                let piece = si_chopping::PieceId { program: p, piece: k };
                let body = ps
                    .reads(piece)
                    .iter()
                    .map(|o| Stmt::read(Access::Element(FamilyId(o.index()), 0)))
                    .chain(
                        ps.writes(piece)
                            .iter()
                            .map(|o| Stmt::write(Access::Element(FamilyId(o.index()), 0))),
                    )
                    .collect();
                app.piece(prog, ps.piece_label(piece), body);
            }
        }
        app
    }
}

/// Walks a statement list, accumulating may-reads, may-writes and
/// must-writes. `conditional` is true inside any branch.
fn collect(
    stmts: &[Stmt],
    conditional: bool,
    objects_of: &dyn Fn(&Access) -> Vec<Obj>,
    reads: &mut Vec<Obj>,
    may_writes: &mut Vec<Obj>,
    must_writes: &mut Vec<Obj>,
) {
    for s in stmts {
        match s {
            Stmt::Read(a) => reads.extend(objects_of(a)),
            Stmt::Write(a) => {
                may_writes.extend(objects_of(a));
                // A write is guaranteed only when it is unconditional AND
                // targets a statically known single object: a Param write
                // definitely writes *some* element, but no particular one,
                // and a Range write may match nothing.
                if !conditional {
                    if let Access::Element(..) = a {
                        must_writes.extend(objects_of(a));
                    }
                }
            }
            Stmt::If { guard_reads, then_branch, else_branch } => {
                for a in guard_reads {
                    reads.extend(objects_of(a));
                }
                collect(then_branch, true, objects_of, reads, may_writes, must_writes);
                collect(else_branch, true, objects_of, reads, may_writes, must_writes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// write_check in IR: read both accounts of customer `$c`, and only
    /// if the combined balance covers the cheque debit checking.
    fn write_check_ir() -> IrApp {
        let mut app = IrApp::new();
        let checking = app.family("checking", 2);
        let savings = app.family("savings", 2);
        let wc = app.program("write_check");
        app.piece(
            wc,
            "read both, conditionally debit checking",
            vec![
                Stmt::read(Access::Param(savings, "c".into())),
                Stmt::read(Access::Param(checking, "c".into())),
                Stmt::branch(
                    vec![],
                    vec![Stmt::write(Access::Param(checking, "c".into()))],
                    vec![],
                ),
            ],
        );
        app
    }

    #[test]
    fn param_access_expands_to_the_family() {
        let lowered = write_check_ir().approximate();
        let piece = lowered.may.pieces().next().unwrap();
        // Reads: both savings and both checking objects.
        assert_eq!(lowered.may.reads(piece).len(), 4);
        // May-writes: both checking objects; must-writes: none (the write
        // is conditional AND parameterised).
        assert_eq!(lowered.may.writes(piece).len(), 2);
        assert!(lowered.must.writes(piece).is_empty());
        assert_eq!(lowered.may.object_name(Obj(0)), Some("checking[0]"));
    }

    #[test]
    fn scalars_and_elements_lower_exactly() {
        let mut app = IrApp::new();
        let x = app.scalar("x");
        let stock = app.family("stock", 3);
        let p = app.program("p");
        app.piece(
            p,
            "body",
            vec![
                Stmt::read(x.clone()),
                Stmt::write(x.clone()),
                Stmt::write(Access::Element(stock, 1)),
                Stmt::read(Access::Range(stock)),
            ],
        );
        let lowered = app.approximate();
        let piece = lowered.may.pieces().next().unwrap();
        // Reads: x plus the whole stock family.
        assert_eq!(lowered.may.reads(piece).len(), 4);
        // Writes: x and stock[1], both unconditional known elements.
        assert_eq!(lowered.may.writes(piece), lowered.must.writes(piece));
        assert_eq!(lowered.must.writes(piece).len(), 2);
        assert_eq!(lowered.may.object_name(Obj(0)), Some("x"));
        assert_eq!(lowered.may.object_name(Obj(2)), Some("stock[1]"));
    }

    #[test]
    fn conditional_writes_are_may_not_must() {
        let mut app = IrApp::new();
        let x = app.scalar("x");
        let y = app.scalar("y");
        let p = app.program("guarded");
        app.piece(
            p,
            "if x { y := 1 } else { }",
            vec![Stmt::branch(vec![x.clone()], vec![Stmt::write(y.clone())], vec![])],
        );
        let lowered = app.approximate();
        let piece = lowered.may.pieces().next().unwrap();
        assert_eq!(lowered.may.reads(piece).len(), 1); // guard read of x
        assert_eq!(lowered.may.writes(piece).len(), 1); // may write y
        assert!(lowered.must.writes(piece).is_empty());
    }

    #[test]
    fn range_write_has_no_must_part() {
        let mut app = IrApp::new();
        let t = app.family("table", 3);
        let p = app.program("sweep");
        app.piece(p, "update where", vec![Stmt::write(Access::Range(t))]);
        let lowered = app.approximate();
        let piece = lowered.may.pieces().next().unwrap();
        assert_eq!(lowered.may.writes(piece).len(), 3);
        assert!(lowered.must.writes(piece).is_empty());
    }

    #[test]
    fn must_structure_mirrors_may() {
        let app = write_check_ir();
        let lowered = app.approximate();
        assert_eq!(lowered.may.program_count(), lowered.must.program_count());
        assert_eq!(lowered.may.piece_count(), lowered.must.piece_count());
        for (a, b) in lowered.may.pieces().zip(lowered.must.pieces()) {
            assert_eq!(a, b);
            assert_eq!(lowered.may.reads(a), lowered.must.reads(b));
            // must ⊆ may on writes.
            assert!(lowered.must.writes(b).iter().all(|o| lowered.may.writes(a).contains(o)));
        }
    }

    #[test]
    #[should_panic(expected = "redeclared")]
    fn family_size_conflicts_panic() {
        let mut app = IrApp::new();
        app.family("t", 2);
        app.family("t", 3);
    }
}
