//! The analysis driver: run the full battery, emit diagnostics.
//!
//! [`lint_program_set`] (hand-declared exact sets) and [`lint_app`]
//! (IR-derived may/must sets) run, in order:
//!
//! 1. the plain Theorem 19 SER-robustness check;
//! 2. the Fekete-refined check (split over may/must write sets when the
//!    sets are derived), enumerating every dangerous structure → SI001,
//!    each with verified promotion repairs, or SI007 when the refinement
//!    discharges a plain-only finding;
//! 3. the Theorem 22 PSI→SI robustness check → SI005;
//! 4. when any program is chopped: the Corollary 18 / Theorem 29 /
//!    Theorem 31 spliceability battery → SI002 (with verified merge
//!    repairs), SI003, SI004.
//!
//! Budget-limited searches that give out yield SI006 instead of a
//! verdict. Diagnostics are ordered errors-first, then by code.

use si_chopping::{analyse_chopping, ChoppingReport, Criterion, ProgramSet};
use si_model::TxId;
use si_robustness::{
    check_ser_robustness, check_si_robustness, enumerate_dangerous_structures_split,
    DangerousStructure, StaticDepGraph,
};
use si_telemetry::MetricsRegistry;

use crate::diag::{DiagCode, Diagnostic, LintReport, Severity, Summary};
use crate::ir::{IrApp, SessionLevel};
use crate::render::{witness_from_chopping, witness_from_structure};
use crate::repair::{search_merges, search_promotions};

/// The machine-readable witness behind one diagnostic, before name
/// rendering — what witness compilation (`crate::witness`) consumes.
/// Budget exhaustion (SI006) carries no witness.
#[derive(Debug, Clone)]
pub enum RawWitness {
    /// A Theorem 19/22 dangerous structure or long-fork cycle over the
    /// whole-transaction static graph (SI001, SI005, SI007).
    Structure(DangerousStructure),
    /// A chopping-criterion report whose critical cycle indicts the
    /// chopping (SI002, SI003, SI004).
    Chop(ChoppingReport),
}

/// A [`LintReport`] plus the raw witness behind each diagnostic.
///
/// `raws` is index-aligned with `report.diagnostics` (same sort order);
/// `raws[i]` is `None` exactly when diagnostic `i` has no compilable
/// witness (SI006).
#[derive(Debug)]
pub struct LintOutcome {
    /// The rendered report, identical to what the non-`_full` entry
    /// points return.
    pub report: LintReport,
    /// Raw witnesses, aligned with `report.diagnostics`.
    pub raws: Vec<Option<RawWitness>>,
    /// Per-program session levels the run was judged under (all
    /// [`SessionLevel::Si`] for unannotated apps).
    pub levels: Vec<SessionLevel>,
}

/// Tuning knobs for one lint run.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Step budget for each cycle-enumeration search (Theorem 22 and the
    /// chopping battery).
    pub step_budget: usize,
    /// Concurrent run-time instances modelled per program (see
    /// [`StaticDepGraph::from_programs_with_instances`]). 1 analyses the
    /// plain per-program graph.
    pub instances: usize,
    /// Maximum SI001 diagnostics (dangerous structures) reported.
    pub max_diagnostics: usize,
    /// Maximum verified repairs attached per diagnostic.
    pub max_repairs: usize,
    /// Maximum promotions combined in one repair.
    pub max_promotion_size: usize,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            step_budget: 1_000_000,
            instances: 1,
            max_diagnostics: 8,
            max_repairs: 3,
            max_promotion_size: 2,
        }
    }
}

/// Lints an application with hand-declared (exact) read/write sets.
pub fn lint_program_set(target: &str, programs: &ProgramSet, opts: &LintOptions) -> LintReport {
    lint_program_set_full(target, programs, opts).report
}

/// [`lint_program_set`], also returning the raw witnesses
/// ([`LintOutcome`]) that witness compilation consumes.
pub fn lint_program_set_full(
    target: &str,
    programs: &ProgramSet,
    opts: &LintOptions,
) -> LintOutcome {
    let levels = vec![SessionLevel::Si; programs.program_count()];
    lint_split(target, programs, programs, &levels, opts, None)
}

/// [`lint_program_set`] with counters recorded into `metrics` (names
/// `lint.runs`, `lint.diagnostics`, `lint.diag.si001` …,
/// `lint.repairs_proposed`, `lint.budget_exceeded`).
pub fn lint_program_set_with_metrics(
    target: &str,
    programs: &ProgramSet,
    opts: &LintOptions,
    metrics: &MetricsRegistry,
) -> LintReport {
    let levels = vec![SessionLevel::Si; programs.program_count()];
    lint_split(target, programs, programs, &levels, opts, Some(metrics)).report
}

/// Lints an IR application: lowers it with [`IrApp::approximate`] and
/// runs the battery on the derived may/must sets (the refinement only
/// subtracts guaranteed write-write conflicts — see the `ir` module docs
/// for the soundness direction).
pub fn lint_app(target: &str, app: &IrApp, opts: &LintOptions) -> LintReport {
    lint_app_full(target, app, opts).report
}

/// [`lint_app`], also returning the raw witnesses ([`LintOutcome`]).
pub fn lint_app_full(target: &str, app: &IrApp, opts: &LintOptions) -> LintOutcome {
    let lowered = app.approximate();
    lint_split(target, &lowered.may, &lowered.must, &lowered.levels, opts, None)
}

/// [`lint_app`] with metrics.
pub fn lint_app_with_metrics(
    target: &str,
    app: &IrApp,
    opts: &LintOptions,
    metrics: &MetricsRegistry,
) -> LintReport {
    let lowered = app.approximate();
    lint_split(target, &lowered.may, &lowered.must, &lowered.levels, opts, Some(metrics)).report
}

fn lint_split(
    target: &str,
    may: &ProgramSet,
    must: &ProgramSet,
    levels: &[SessionLevel],
    opts: &LintOptions,
    metrics: Option<&MetricsRegistry>,
) -> LintOutcome {
    assert!(opts.instances >= 1, "need at least one instance per program");
    assert_eq!(levels.len(), may.program_count(), "one session level per program");
    if let Some(m) = metrics {
        m.counter("lint.runs").add(1);
    }
    let mut items: Vec<(Diagnostic, Option<RawWitness>)> = Vec::new();

    // Robustness graphs (whole transactions, optionally replicated).
    let (gmay, gmust, whole) = if opts.instances == 1 {
        (StaticDepGraph::from_programs(may), StaticDepGraph::from_programs(must), may.unchopped())
    } else {
        let rmay = may.replicated(opts.instances);
        let rmust = must.replicated(opts.instances);
        (
            StaticDepGraph::from_programs(&rmay),
            StaticDepGraph::from_programs(&rmust),
            rmay.unchopped(),
        )
    };

    let plain = check_ser_robustness(&gmay);
    let structures =
        enumerate_dangerous_structures_split(&gmay, &gmust, opts.max_diagnostics.max(1));
    // Fekete's promotion discipline: a dangerous structure whose pivot
    // (the transaction with both vulnerable edges) is annotated SER is
    // already repaired — running the pivot serializable removes its
    // incoming/outgoing anti-dependency vulnerability, which is exactly
    // the promotion repair SI001 would propose.
    let program_level = |v: TxId| levels[v.index() % may.program_count()];
    let (discharged, structures): (Vec<_>, Vec<_>) =
        structures.into_iter().partition(|s| match s {
            DangerousStructure::AdjacentAntiDependencies { b, .. } => {
                program_level(*b) == SessionLevel::Ser
            }
            DangerousStructure::SeparatedAntiDependencyCycle { .. } => false,
        });
    let refined_robust = structures.is_empty();

    for s in &structures {
        let witness = witness_from_structure(s, &gmay, &whole);
        let mut d = Diagnostic::new(
            DiagCode::Si001,
            format!(
                "not SER-robust under SI: {} — an SI execution can be non-serializable",
                witness.summary
            ),
        );
        d.repairs = search_promotions(
            may,
            must,
            std::slice::from_ref(s),
            &whole,
            opts.instances,
            opts.max_promotion_size,
            opts.max_repairs,
        );
        if let Some(m) = metrics {
            m.counter("lint.repairs_proposed").add(d.repairs.len() as u64);
        }
        d.witness = Some(witness);
        items.push((d, Some(RawWitness::Structure(s.clone()))));
    }
    if !discharged.is_empty() {
        let mut d = Diagnostic::new(
            DiagCode::Si007,
            format!(
                "{} dangerous structure(s) discharged by session-level annotations: each \
                 pivot is declared SER, so the promotion repair is already in place",
                discharged.len()
            ),
        );
        d.witness = Some(witness_from_structure(&discharged[0], &gmay, &whole));
        items.push((d, Some(RawWitness::Structure(discharged[0].clone()))));
    }
    if refined_robust && !plain.robust && discharged.is_empty() {
        let mut d = Diagnostic::new(
            DiagCode::Si007,
            "the plain Theorem 19 analysis finds a dangerous structure, but its programs \
             already write-conflict (the constraint is materialised): the refined analysis \
             certifies SER-robustness"
                .to_owned(),
        );
        d.witness = plain.witness.as_ref().map(|w| witness_from_structure(w, &gmay, &whole));
        let raw = plain.witness.clone().map(RawWitness::Structure);
        items.push((d, raw));
    }

    // §6.2: robustness against PSI towards SI.
    let psi_si_robust = match check_si_robustness(&gmay, opts.step_budget) {
        Ok(report) => {
            if let Some(w) = &report.witness {
                let mut d = Diagnostic::new(
                    DiagCode::Si005,
                    "not robust against parallel SI: a long-fork-shaped cycle exists, so \
                     weakening the store from SI to PSI can change client-observable behaviour"
                        .to_owned(),
                );
                d.witness = Some(witness_from_structure(w, &gmay, &whole));
                items.push((d, Some(RawWitness::Structure(w.clone()))));
            }
            report.robust
        }
        Err(_) => {
            items.push((
                Diagnostic::new(
                    DiagCode::Si006,
                    "the PSI→SI robustness search exceeded its step budget; treat the \
                     application as possibly not robust"
                        .to_owned(),
                ),
                None,
            ));
            if let Some(m) = metrics {
                m.counter("lint.budget_exceeded").add(1);
            }
            false
        }
    };

    // Chopping battery, when any program actually is chopped.
    let chopped = may.piece_count() > may.program_count();
    let mut chop_si = None;
    let mut chop_ser = None;
    let mut chop_psi = None;
    if chopped {
        let mut run = |criterion: Criterion| -> Option<ChoppingReport> {
            match analyse_chopping(may, criterion, opts.step_budget) {
                Ok(report) => Some(report),
                Err(_) => {
                    items.push((
                        Diagnostic::new(
                            DiagCode::Si006,
                            format!(
                                "the {criterion} chopping analysis exceeded its step budget; \
                                 treat the chopping as possibly incorrect"
                            ),
                        ),
                        None,
                    ));
                    if let Some(m) = metrics {
                        m.counter("lint.budget_exceeded").add(1);
                    }
                    None
                }
            }
        };
        let si_report = run(Criterion::Si);
        let ser_report = run(Criterion::Ser);
        let psi_report = run(Criterion::Psi);
        chop_si = si_report.as_ref().map(|r| r.correct);
        chop_ser = ser_report.as_ref().map(|r| r.correct);
        chop_psi = psi_report.as_ref().map(|r| r.correct);
        if let Some(report) = &si_report {
            if !report.correct {
                let mut d = Diagnostic::new(
                    DiagCode::Si002,
                    "the chopping is not spliceable under SI: the static chopping graph \
                     has a critical cycle (Corollary 18), so chopped executions can be \
                     inequivalent to any unchopped execution"
                        .to_owned(),
                );
                d.witness = witness_from_chopping(report, may);
                d.repairs = search_merges(may, Criterion::Si, opts.step_budget, opts.max_repairs);
                if let Some(m) = metrics {
                    m.counter("lint.repairs_proposed").add(d.repairs.len() as u64);
                }
                items.push((d, Some(RawWitness::Chop(report.clone()))));
            }
        }
        if chop_si == Some(true) && chop_ser == Some(false) {
            let mut d = Diagnostic::new(
                DiagCode::Si003,
                "the chopping is spliceable under SI but not under serializability \
                 (Theorem 29): its correctness relies on snapshot reads, so migrating \
                 to an SER store invalidates the chopping"
                    .to_owned(),
            );
            d.witness = ser_report.as_ref().and_then(|r| witness_from_chopping(r, may));
            let raw = ser_report.clone().map(RawWitness::Chop);
            items.push((d, raw));
        }
        if chop_si == Some(false) && chop_psi == Some(true) {
            let mut d = Diagnostic::new(
                DiagCode::Si004,
                "the chopping is spliceable under parallel SI (Theorem 31) but not under \
                 SI: it is only correct if the store weakens snapshots to PSI"
                    .to_owned(),
            );
            d.witness = si_report.as_ref().and_then(|r| witness_from_chopping(r, may));
            let raw = si_report.clone().map(RawWitness::Chop);
            items.push((d, raw));
        }
    }

    // Errors first, then warnings, then infos; stable within a class so
    // discovery order (and hence code order) is preserved. Raw witnesses
    // travel with their diagnostic to stay index-aligned.
    items.sort_by(|a, b| b.0.severity.cmp(&a.0.severity).then(a.0.code.cmp(&b.0.code)));
    let (diagnostics, raws): (Vec<Diagnostic>, Vec<Option<RawWitness>>) = items.into_iter().unzip();

    let count = |sev: Severity| diagnostics.iter().filter(|d| d.severity == sev).count();
    let summary = Summary {
        programs: may.program_count(),
        pieces: may.piece_count(),
        chopped,
        ser_robust_plain: plain.robust,
        ser_robust_refined: refined_robust,
        psi_si_robust,
        chop_si_correct: chop_si,
        chop_ser_correct: chop_ser,
        chop_psi_correct: chop_psi,
        errors: count(Severity::Error),
        warnings: count(Severity::Warning),
        infos: count(Severity::Info),
    };
    if let Some(m) = metrics {
        m.counter("lint.diagnostics").add(diagnostics.len() as u64);
        for d in &diagnostics {
            m.counter(&format!("lint.diag.{}", d.code.as_str().to_lowercase())).add(1);
        }
        m.counter("lint.repairs_verified")
            .add(diagnostics.iter().flat_map(|d| &d.repairs).filter(|r| r.verified).count() as u64);
    }
    LintOutcome {
        report: LintReport { target: target.to_owned(), summary, diagnostics },
        raws,
        levels: levels.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::RepairAction;
    use crate::ir::Stmt;

    fn write_skew() -> ProgramSet {
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let y = ps.object("y");
        let w1 = ps.add_program("withdraw_x");
        ps.add_piece(w1, "p", [x, y], [x]);
        let w2 = ps.add_program("withdraw_y");
        ps.add_piece(w2, "p", [x, y], [y]);
        ps
    }

    #[test]
    fn write_skew_yields_si001_with_verified_repair() {
        let report = lint_program_set("write-skew", &write_skew(), &LintOptions::default());
        assert!(!report.is_clean());
        assert!(!report.summary.ser_robust_refined);
        let d = &report.diagnostics[0];
        assert_eq!(d.code, DiagCode::Si001);
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("withdraw_x"), "{}", d.message);
        assert!(!d.repairs.is_empty());
        assert!(d.repairs.iter().all(|r| r.verified));
        // Chopping battery not applicable: one piece per program.
        assert_eq!(report.summary.chop_si_correct, None);
        assert!(!report.summary.chopped);
    }

    #[test]
    fn materialised_constraint_yields_si007_only() {
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let y = ps.object("y");
        let total = ps.object("total");
        let w1 = ps.add_program("w1");
        ps.add_piece(w1, "p", [x, y, total], [x, total]);
        let w2 = ps.add_program("w2");
        ps.add_piece(w2, "p", [x, y, total], [y, total]);
        let report = lint_program_set("materialised", &ps, &LintOptions::default());
        assert!(report.is_clean());
        assert!(report.summary.ser_robust_refined);
        assert!(!report.summary.ser_robust_plain);
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![DiagCode::Si007]);
        assert_eq!(report.summary.infos, 1);
    }

    /// Figure 5's chopping: SI002 with a verified multi-merge repair.
    #[test]
    fn figure5_yields_si002_with_merge_repair() {
        let mut ps = ProgramSet::new();
        let a1 = ps.object("acct1");
        let a2 = ps.object("acct2");
        let t = ps.add_program("transfer");
        ps.add_piece(t, "debit", [a1], [a1]);
        ps.add_piece(t, "credit", [a2], [a2]);
        let l = ps.add_program("lookupAll");
        ps.add_piece(l, "read1", [a1], []);
        ps.add_piece(l, "read2", [a2], []);
        let report = lint_program_set("figure5", &ps, &LintOptions::default());
        let si002 = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::Si002)
            .expect("figure 5 chopping must be flagged");
        assert_eq!(report.summary.chop_si_correct, Some(false));
        let w = si002.witness.as_ref().unwrap();
        assert!(w.summary.contains("transfer[") || w.summary.contains("lookupAll["));
        assert!(!si002.repairs.is_empty());
        assert!(si002
            .repairs
            .iter()
            .all(|r| r.actions.iter().all(|a| matches!(a, RepairAction::MergePieces { .. }))));
    }

    /// Figure 11's chopping is SI-only: SI003.
    #[test]
    fn figure11_yields_si003() {
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let y = ps.object("y");
        let w1 = ps.add_program("write1");
        ps.add_piece(w1, "var1 = x", [x], []);
        ps.add_piece(w1, "y = var1", [], [y]);
        let w2 = ps.add_program("write2");
        ps.add_piece(w2, "var2 = y", [y], []);
        ps.add_piece(w2, "x = var2", [], [x]);
        let report = lint_program_set("figure11", &ps, &LintOptions::default());
        assert_eq!(report.summary.chop_si_correct, Some(true));
        assert_eq!(report.summary.chop_ser_correct, Some(false));
        assert!(report.diagnostics.iter().any(|d| d.code == DiagCode::Si003));
        assert!(report.diagnostics.iter().all(|d| d.code != DiagCode::Si002));
    }

    /// Figure 12: long fork — SI004 (PSI-only chopping) and SI005 (not
    /// PSI→SI robust).
    #[test]
    fn figure12_yields_si004_and_si005() {
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let y = ps.object("y");
        let w1 = ps.add_program("write1");
        ps.add_piece(w1, "x = post1", [], [x]);
        let w2 = ps.add_program("write2");
        ps.add_piece(w2, "y = post2", [], [y]);
        let r1 = ps.add_program("read1");
        ps.add_piece(r1, "a = y", [y], []);
        ps.add_piece(r1, "b = x", [x], []);
        let r2 = ps.add_program("read2");
        ps.add_piece(r2, "a = x", [x], []);
        ps.add_piece(r2, "b = y", [y], []);
        let report = lint_program_set("figure12", &ps, &LintOptions::default());
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&DiagCode::Si002));
        assert!(codes.contains(&DiagCode::Si004));
        assert!(codes.contains(&DiagCode::Si005));
        assert!(!report.summary.psi_si_robust);
        assert_eq!(report.summary.chop_psi_correct, Some(true));
        // Errors sort before warnings.
        assert_eq!(report.diagnostics[0].severity, Severity::Error);
    }

    #[test]
    fn tiny_budget_yields_si006() {
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let y = ps.object("y");
        let t = ps.add_program("t");
        ps.add_piece(t, "a", [x], [x]);
        ps.add_piece(t, "b", [y], [y]);
        let l = ps.add_program("l");
        ps.add_piece(l, "c", [x, y], []);
        let opts = LintOptions { step_budget: 1, ..LintOptions::default() };
        let report = lint_program_set("tiny-budget", &ps, &opts);
        assert!(report.diagnostics.iter().any(|d| d.code == DiagCode::Si006));
        assert_eq!(report.summary.chop_si_correct, None);
    }

    #[test]
    fn ir_app_with_conditional_write_is_still_flagged() {
        // Write skew where each debit is conditional: the must-writes are
        // empty, so the refinement cannot discount the anti-dependencies —
        // SI001 must still fire (soundness of the split check).
        let mut app = IrApp::new();
        let x = app.scalar("x");
        let y = app.scalar("y");
        let w1 = app.program("withdraw_x");
        app.piece(
            w1,
            "check then debit x",
            vec![Stmt::branch(vec![x.clone(), y.clone()], vec![Stmt::write(x.clone())], vec![])],
        );
        let w2 = app.program("withdraw_y");
        app.piece(
            w2,
            "check then debit y",
            vec![Stmt::branch(vec![x.clone(), y.clone()], vec![Stmt::write(y.clone())], vec![])],
        );
        let report = lint_app("guarded-write-skew", &app, &LintOptions::default());
        assert!(report.diagnostics.iter().any(|d| d.code == DiagCode::Si001));
        // The promotion repair still verifies: the identity write it adds
        // is unconditional, hence a must-write.
        let d = report.diagnostics.iter().find(|d| d.code == DiagCode::Si001).unwrap();
        assert!(!d.repairs.is_empty());
    }

    #[test]
    fn ser_annotated_pivot_discharges_the_structure() {
        use crate::ir::{Access, FamilyId, SessionLevel};
        // IR write skew; annotating ONE program SER discharges both
        // dangerous structures (each 2-cycle's pivot can be either
        // transaction, and the enumerator reports one pivot per
        // structure) — here both structures pivot on a withdraw, so
        // promoting both programs is needed; promoting just one leaves
        // the structure pivoting on the other.
        let mut app = IrApp::new();
        let x = app.scalar("x");
        let y = app.scalar("y");
        let w1 = app.program("withdraw_x");
        app.piece(w1, "p", vec![Stmt::read(x.clone()), Stmt::read(y.clone()), Stmt::write(x)]);
        let w2 = app.program("withdraw_y");
        app.piece(
            w2,
            "p",
            vec![
                Stmt::read(Access::Element(FamilyId(0), 0)),
                Stmt::read(Access::Element(FamilyId(1), 0)),
                Stmt::write(Access::Element(FamilyId(1), 0)),
            ],
        );
        let flagged = lint_app_full("skew", &app, &LintOptions::default());
        assert!(flagged.report.diagnostics.iter().any(|d| d.code == DiagCode::Si001));
        assert_eq!(flagged.raws.len(), flagged.report.diagnostics.len());

        let mut promoted = app.clone();
        promoted.set_level(w1, SessionLevel::Ser);
        promoted.set_level(w2, SessionLevel::Ser);
        let clean = lint_app_full("skew-ser", &promoted, &LintOptions::default());
        assert!(
            clean.report.diagnostics.iter().all(|d| d.code != DiagCode::Si001),
            "SER pivots must discharge every structure"
        );
        assert!(clean.report.diagnostics.iter().any(|d| d.code == DiagCode::Si007));
        assert!(clean.report.summary.ser_robust_refined);
        assert_eq!(clean.levels, vec![SessionLevel::Ser, SessionLevel::Ser]);
    }

    #[test]
    fn metrics_counters_record_the_run() {
        let metrics = MetricsRegistry::new();
        let report = lint_program_set_with_metrics(
            "write-skew",
            &write_skew(),
            &LintOptions::default(),
            &metrics,
        );
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("lint.runs"), 1);
        assert_eq!(snap.counter("lint.diagnostics"), report.diagnostics.len() as u64);
        assert!(snap.counter("lint.diag.si001") >= 1);
        assert!(snap.counter("lint.repairs_proposed") >= 1);
        assert_eq!(snap.counter("lint.repairs_proposed"), snap.counter("lint.repairs_verified"));
    }

    #[test]
    fn instances_surface_self_conflicts() {
        // A read-modify-write program is clean alone but its two instances
        // write-conflict — the refinement discounts the RW pair, so it
        // stays clean; a *blind read then write elsewhere* does not.
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let y = ps.object("y");
        let p = ps.add_program("swap_half");
        ps.add_piece(p, "read x write y", [x], [y]);
        let q = ps.add_program("swap_other");
        ps.add_piece(q, "read y write x", [y], [x]);
        let one = lint_program_set("swap", &ps, &LintOptions::default());
        assert!(!one.summary.ser_robust_refined); // cross-program skew already
        let two = lint_program_set(
            "swap-2x",
            &ps,
            &LintOptions { instances: 2, ..LintOptions::default() },
        );
        assert!(!two.summary.ser_robust_refined);
        // Witness names carry the instance suffix.
        let d = &two.diagnostics[0];
        assert!(d.witness.as_ref().unwrap().summary.contains('#'), "{}", d.message);
    }
}
