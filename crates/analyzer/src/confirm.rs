//! The confirmation layer: run every compiled witness and report what
//! actually happened.
//!
//! [`confirm_app`] / [`confirm_program_set`] re-lint the target with raw
//! witnesses ([`crate::driver::LintOutcome`]), compile each diagnostic's
//! witness ([`crate::witness`]) and *execute* it:
//!
//! * **flagged** verdicts replay the advisory schedule on the matching
//!   live engine and hand the recorded history to the CDCL solver
//!   (`si-solve`): the run counts as confirmed only if the history is
//!   refuted at the diagnosed level *and* accepted at the level the
//!   engine guarantees (so a bogus schedule cannot masquerade as an
//!   anomaly);
//! * **chopping** verdicts additionally splice the recorded history
//!   (Corollary 18) before judging it;
//! * **robust** verdicts are counter-validated: every pair of programs
//!   (self-pairs included) is explored exhaustively under the engine and
//!   judged at the claimed level, plus a seeded random sweep of the
//!   whole application — all interleavings must come back members.
//!
//! Every row lands in a [`ConfirmationReport`] with one of four
//! [`ConfirmOutcome`]s; [`ConfirmOutcome::Unconfirmed`] is the
//! regression marker CI diffs for — a static verdict the runtime stack
//! contradicted.

use serde::{Deserialize, Serialize};
use si_chopping::{splice_history, ProgramSet};
use si_mvcc::{Script, Workload};
use si_sanitizer::{explore_judged, EngineSpec, ExploreMode, RunArtifacts, SanitizeConfig};
use si_solve::{solve, SolverMode};

use crate::diag::DiagCode;
use crate::driver::{lint_app_full, lint_program_set_full, LintOptions, LintOutcome};
use crate::ir::{IrApp, IrProgramId, SessionLevel};
use crate::witness::{
    compile_witness, default_piece_script, default_program_script, ClaimLevel, CompiledWitness,
    WitnessCheck,
};

/// Tuning knobs for one confirmation run.
#[derive(Debug, Clone)]
pub struct ConfirmOptions {
    /// Interleaving cap per exhaustive exploration (robust rows).
    pub explore_cap: u64,
    /// Walk count for the seeded random sweeps.
    pub random_walks: u64,
    /// Seed for the random sweeps.
    pub seed: u64,
    /// Options for the static lint pass being confirmed.
    pub lint: LintOptions,
}

impl Default for ConfirmOptions {
    fn default() -> Self {
        ConfirmOptions {
            explore_cap: 60_000,
            random_walks: 128,
            seed: 0x5EED,
            lint: LintOptions::default(),
        }
    }
}

/// How one confirmation row turned out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfirmOutcome {
    /// The compiled witness reproduced the predicted anomaly: the
    /// engine-recorded history is refuted at the diagnosed level.
    Reproduced,
    /// The (possibly spliced) history is refuted at the diagnosed level
    /// while remaining a member at the weaker cross-check level.
    RefutedAtLevel,
    /// The robust verdict held: every explored interleaving's history
    /// is a member at the claimed level.
    RobustClean,
    /// No executable witness (budget exhaustion, or a shape this
    /// compiler cannot realise) — nothing was contradicted.
    Inconclusive,
    /// The runtime stack contradicted the static verdict. A regression.
    Unconfirmed,
}

impl ConfirmOutcome {
    /// The rendered name.
    pub fn as_str(self) -> &'static str {
        match self {
            ConfirmOutcome::Reproduced => "reproduced",
            ConfirmOutcome::RefutedAtLevel => "refuted-level",
            ConfirmOutcome::RobustClean => "robust-clean",
            ConfirmOutcome::Inconclusive => "inconclusive",
            ConfirmOutcome::Unconfirmed => "UNCONFIRMED",
        }
    }
}

/// One confirmed (or contradicted) claim.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfirmRow {
    /// The diagnostic code, or `None` for a summary-level robust claim.
    pub code: Option<DiagCode>,
    /// The claim being confirmed, in words.
    pub claim: String,
    /// What happened.
    pub outcome: ConfirmOutcome,
    /// Evidence: what ran, what was judged, and the verdicts.
    pub detail: String,
}

/// The per-target confirmation matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfirmationReport {
    /// The lint target.
    pub target: String,
    /// One row per diagnostic plus one per robust summary claim.
    pub rows: Vec<ConfirmRow>,
}

impl ConfirmationReport {
    /// Whether no row contradicts its static verdict.
    pub fn is_confirmed(&self) -> bool {
        self.rows.iter().all(|r| r.outcome != ConfirmOutcome::Unconfirmed)
    }

    /// Plain-text rendering of the matrix.
    pub fn render_text(&self) -> String {
        let mut out = format!("confirm {} ({} rows)\n", self.target, self.rows.len());
        for r in &self.rows {
            let code = r.code.map(DiagCode::as_str).unwrap_or("--   ");
            out.push_str(&format!(
                "  {code} {:<14} {}\n      {}\n",
                r.outcome.as_str(),
                r.claim,
                r.detail
            ));
        }
        out
    }
}

/// Serialises confirmation reports to pretty JSON (golden format).
pub fn confirms_to_json(reports: &[ConfirmationReport]) -> String {
    serde_json::to_string_pretty(reports).expect("confirmation reports are plain data")
}

/// Parses confirmation reports back from JSON.
///
/// # Errors
///
/// Returns the underlying serde error on malformed input.
pub fn confirms_from_json(json: &str) -> Result<Vec<ConfirmationReport>, serde_json::Error> {
    serde_json::from_str(json)
}

/// Confirms an IR application: lint, compile every witness, run it.
pub fn confirm_app(target: &str, app: &IrApp, opts: &ConfirmOptions) -> ConfirmationReport {
    let lowered = app.approximate();
    let outcome = lint_app_full(target, app, &opts.lint);
    confirm(target, app, &lowered.may, &outcome, opts)
}

/// Confirms a set-declared application via its exact IR reconstruction
/// ([`IrApp::from_program_set`]).
pub fn confirm_program_set(
    target: &str,
    programs: &ProgramSet,
    opts: &ConfirmOptions,
) -> ConfirmationReport {
    let app = IrApp::from_program_set(programs);
    let outcome = lint_program_set_full(target, programs, &opts.lint);
    confirm(target, &app, programs, &outcome, opts)
}

fn mode(level: ClaimLevel) -> SolverMode {
    match level {
        ClaimLevel::Ser => SolverMode::Ser,
        ClaimLevel::Si => SolverMode::Si,
        ClaimLevel::Psi => SolverMode::Psi,
    }
}

/// The level the advisory's engine itself guarantees — the membership
/// side of every reproduction check.
fn engine_level(spec: &EngineSpec) -> ClaimLevel {
    match spec {
        EngineSpec::Ser | EngineSpec::Ssi => ClaimLevel::Ser,
        EngineSpec::Psi { .. } => ClaimLevel::Psi,
        _ => ClaimLevel::Si,
    }
}

fn confirm(
    target: &str,
    app: &IrApp,
    may: &ProgramSet,
    outcome: &LintOutcome,
    opts: &ConfirmOptions,
) -> ConfirmationReport {
    let mut rows = Vec::new();
    for (diag, raw) in outcome.report.diagnostics.iter().zip(&outcome.raws) {
        rows.push(match raw {
            None => ConfirmRow {
                code: Some(diag.code),
                claim: "budget-limited verdict".to_owned(),
                outcome: ConfirmOutcome::Inconclusive,
                detail: "no witness to compile (search budget exhausted)".to_owned(),
            },
            Some(raw) => match compile_witness(app, may, &outcome.levels, diag.code, raw) {
                Err(why) => ConfirmRow {
                    code: Some(diag.code),
                    claim: witness_claim(diag.code),
                    outcome: ConfirmOutcome::Inconclusive,
                    detail: format!("witness not realisable: {why}"),
                },
                Ok(cw) => run_witness(&cw, opts),
            },
        });
    }
    rows.extend(robust_rows(app, may, &outcome.levels, outcome, opts));
    ConfirmationReport { target: target.to_owned(), rows }
}

fn witness_claim(code: DiagCode) -> String {
    match code {
        DiagCode::Si001 => "an SI execution is non-serializable".to_owned(),
        DiagCode::Si002 => "a chopped SI execution splices to no SI execution".to_owned(),
        DiagCode::Si003 => "a chopped SER execution splices to no SER execution".to_owned(),
        DiagCode::Si004 => "the chopping only splices below SI".to_owned(),
        DiagCode::Si005 => "a PSI execution is observably non-SI".to_owned(),
        DiagCode::Si006 => "budget-limited verdict".to_owned(),
        DiagCode::Si007 => "the discharged structure stays serializable".to_owned(),
    }
}

/// Executes one compiled witness and judges the claim.
fn run_witness(cw: &CompiledWitness, opts: &ConfirmOptions) -> ConfirmRow {
    let claim = witness_claim(cw.code);
    match cw.check {
        WitnessCheck::HistoryRefutedAt(level) => {
            let artifacts = cw.advisory.replay();
            let history = &artifacts.result.history;
            let refuted = !solve(history, mode(level)).outcome.is_member();
            let own = engine_level(&cw.advisory.engine);
            let member = solve(history, mode(own)).outcome.is_member();
            let ok = refuted && member;
            ConfirmRow {
                code: Some(cw.code),
                claim,
                outcome: if !ok {
                    ConfirmOutcome::Unconfirmed
                } else if cw.code == DiagCode::Si001 {
                    ConfirmOutcome::Reproduced
                } else {
                    ConfirmOutcome::RefutedAtLevel
                },
                detail: format!(
                    "advisory run on {} [{}]: history {} {}, {} {}",
                    cw.advisory.engine.name(),
                    cw.sessions.join("; "),
                    if refuted { "∉" } else { "∈" },
                    level.as_str(),
                    if member { "∈" } else { "∉" },
                    own.as_str(),
                ),
            }
        }
        WitnessCheck::SpliceRefutedAt(refuted) => {
            let artifacts = cw.advisory.replay();
            let member_level = engine_level(&cw.advisory.engine);
            let spliced = splice_history(&artifacts.result.history).history;
            let is_refuted = !solve(&spliced, mode(refuted)).outcome.is_member();
            let is_member =
                solve(&artifacts.result.history, mode(member_level)).outcome.is_member();
            let ok = is_refuted && is_member;
            ConfirmRow {
                code: Some(cw.code),
                claim,
                outcome: if !ok {
                    ConfirmOutcome::Unconfirmed
                } else if cw.code == DiagCode::Si002 {
                    ConfirmOutcome::Reproduced
                } else {
                    ConfirmOutcome::RefutedAtLevel
                },
                detail: format!(
                    "advisory run on {} [{}]: spliced history {} {}, piece-level history {} {}",
                    cw.advisory.engine.name(),
                    cw.sessions.join("; "),
                    if is_refuted { "∉" } else { "∈" },
                    refuted.as_str(),
                    if is_member { "∈" } else { "∉" },
                    member_level.as_str(),
                ),
            }
        }
        WitnessCheck::AllRunsMemberAt(level) => {
            let workload = cw.advisory.workload.to_workload();
            let (row_outcome, detail) = explore_clean(
                &cw.advisory.engine,
                &workload,
                level,
                false,
                opts,
                &format!("[{}]", cw.sessions.join("; ")),
            );
            ConfirmRow { code: Some(cw.code), claim, outcome: row_outcome, detail }
        }
    }
}

/// Explores `workload` on `spec` (exhaustively, or randomly when
/// `random` is set) judging every history at `level`. Returns the row
/// outcome and evidence string.
fn explore_clean(
    spec: &EngineSpec,
    workload: &Workload,
    level: ClaimLevel,
    random: bool,
    opts: &ConfirmOptions,
    what: &str,
) -> (ConfirmOutcome, String) {
    let judge_splice = spec_judges_splice(workload);
    let mut judge = |artifacts: &RunArtifacts| -> bool {
        let history = &artifacts.result.history;
        if judge_splice {
            solve(&splice_history(history).history, mode(level)).outcome.is_member()
        } else {
            solve(history, mode(level)).outcome.is_member()
        }
    };
    // Retry-free: a conflict abort ends the transaction instead of
    // resubmitting it. Retries re-run the same script as a fresh
    // transaction — no new anomaly shapes — while multiplying the
    // exhaustive tree past any budget on conflicting pairs.
    let config = SanitizeConfig {
        mode: if random {
            ExploreMode::Random { walks: opts.random_walks, seed: opts.seed }
        } else {
            ExploreMode::Exhaustive
        },
        max_retries: 0,
        max_interleavings: opts.explore_cap,
        ..SanitizeConfig::default()
    };
    let report = explore_judged(spec, workload, &config, &mut judge);
    let judged = if judge_splice { "spliced history" } else { "history" };
    let how = if random { "random sweep" } else { "exhaustive" };
    if !report.is_clean() {
        (
            ConfirmOutcome::Unconfirmed,
            format!(
                "{how} on {} {what}: an interleaving's {judged} ∉ {} after {} runs",
                spec.name(),
                level.as_str(),
                report.explored
            ),
        )
    } else if report.budget_exhausted {
        (
            ConfirmOutcome::Inconclusive,
            format!(
                "{how} on {} {what}: {} runs all {judged} ∈ {}, but the {} cap cut the tree",
                spec.name(),
                report.explored,
                level.as_str(),
                opts.explore_cap
            ),
        )
    } else {
        (
            ConfirmOutcome::RobustClean,
            format!(
                "{how} on {} {what}: {} runs ({} pruned), every {judged} ∈ {}",
                spec.name(),
                report.explored,
                report.pruned,
                level.as_str()
            ),
        )
    }
}

/// A workload whose sessions carry multiple scripts is a chopped run:
/// judge its splice, not the raw history (each session *is* one
/// logical transaction cut into pieces).
fn spec_judges_splice(workload: &Workload) -> bool {
    workload.session_scripts().any(|s| s.len() > 1)
}

/// Counter-validation of the summary-level robust verdicts.
fn robust_rows(
    app: &IrApp,
    may: &ProgramSet,
    levels: &[SessionLevel],
    outcome: &LintOutcome,
    opts: &ConfirmOptions,
) -> Vec<ConfirmRow> {
    let summary = &outcome.report.summary;
    let mut rows = Vec::new();
    // Mixed-level apps: a SER-annotated session is modelled by SSI (the
    // runtime promotion of the whole mix) — the engines have one global
    // level, so the strongest annotated one drives the stress engine.
    let base_engine =
        if levels.contains(&SessionLevel::Ser) { EngineSpec::Ssi } else { EngineSpec::Si };
    let n = may.program_count();
    let whole_scripts: Vec<Script> = {
        let mut counter = 0u64;
        (0..n).map(|p| default_program_script(app, IrProgramId(p), &mut counter)).collect()
    };

    if summary.ser_robust_refined {
        // Pairwise exhaustive (self-pairs included) …
        let mut explored_total = 0u64;
        let mut verdict = ConfirmOutcome::RobustClean;
        let mut note = String::new();
        'pairs: for p in 0..n {
            for q in p..n {
                if whole_scripts[p].is_empty() || whole_scripts[q].is_empty() {
                    continue;
                }
                let w = Workload::new(may.object_count())
                    .session([whole_scripts[p].clone()])
                    .session([whole_scripts[q].clone()]);
                let (o, d) = explore_clean(
                    &base_engine,
                    &w,
                    ClaimLevel::Ser,
                    false,
                    opts,
                    &format!(
                        "[{} × {}]",
                        may.program_name(si_chopping::ProgramId(p)),
                        may.program_name(si_chopping::ProgramId(q))
                    ),
                );
                explored_total += extract_runs(&d);
                if o != ConfirmOutcome::RobustClean {
                    verdict = o;
                    note = d;
                    break 'pairs;
                }
            }
        }
        // … plus a random sweep of the whole application.
        if verdict == ConfirmOutcome::RobustClean {
            let mut w = Workload::new(may.object_count());
            for s in whole_scripts.iter().filter(|s| !s.is_empty()) {
                w = w.session([s.clone()]);
            }
            let (o, d) =
                explore_clean(&base_engine, &w, ClaimLevel::Ser, true, opts, "[all programs]");
            verdict = o;
            note = d;
        }
        rows.push(ConfirmRow {
            code: None,
            claim: "SER-robust under SI (refined)".to_owned(),
            outcome: verdict,
            detail: format!("pairwise exhaustive ({explored_total} runs) then {note}"),
        });
    }

    if summary.psi_si_robust {
        // A long fork needs two writers and two independent readers, so
        // pairwise PSI exploration is vacuous — sweep the full mix on
        // two replicas instead.
        let mut w = Workload::new(may.object_count());
        for s in whole_scripts.iter().filter(|s| !s.is_empty()) {
            w = w.session([s.clone()]);
        }
        let (o, d) = explore_clean(
            &EngineSpec::Psi { replicas: 2 },
            &w,
            ClaimLevel::Si,
            true,
            opts,
            "[all programs]",
        );
        rows.push(ConfirmRow {
            code: None,
            claim: "robust against PSI towards SI".to_owned(),
            outcome: o,
            detail: d,
        });
    }

    let chop_rows: [(&str, Option<bool>, EngineSpec, ClaimLevel); 3] = [
        ("chopping spliceable under SI", summary.chop_si_correct, EngineSpec::Si, ClaimLevel::Si),
        (
            "chopping spliceable under SER",
            summary.chop_ser_correct,
            EngineSpec::Ser,
            ClaimLevel::Ser,
        ),
        (
            "chopping spliceable under PSI",
            summary.chop_psi_correct,
            EngineSpec::Psi { replicas: 2 },
            ClaimLevel::Psi,
        ),
    ];
    for (claim, correct, engine, level) in chop_rows {
        if correct != Some(true) {
            continue;
        }
        let mut counter = 0u64;
        let mut w = Workload::new(may.object_count());
        for p in may.programs() {
            let scripts: Vec<Script> = (0..may.pieces_of(p))
                .map(|k| default_piece_script(app, IrProgramId(p.0), k, &mut counter))
                .filter(|s| !s.is_empty())
                .collect();
            if !scripts.is_empty() {
                w = w.session(scripts);
            }
        }
        let (o, d) = explore_clean(&engine, &w, level, true, opts, "[chopped, all programs]");
        rows.push(ConfirmRow { code: None, claim: claim.to_owned(), outcome: o, detail: d });
    }
    rows
}

/// Pulls the run count back out of an evidence string ("… N runs …").
fn extract_runs(detail: &str) -> u64 {
    detail
        .split_whitespace()
        .zip(detail.split_whitespace().skip(1))
        .find(|(_, b)| *b == "runs" || b.starts_with("runs"))
        .and_then(|(a, _)| a.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_skew() -> ProgramSet {
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let y = ps.object("y");
        let w1 = ps.add_program("withdraw_x");
        ps.add_piece(w1, "p", [x, y], [x]);
        let w2 = ps.add_program("withdraw_y");
        ps.add_piece(w2, "p", [x, y], [y]);
        ps
    }

    #[test]
    fn write_skew_si001_reproduces() {
        let report = confirm_program_set("write-skew", &write_skew(), &ConfirmOptions::default());
        let si001: Vec<_> =
            report.rows.iter().filter(|r| r.code == Some(DiagCode::Si001)).collect();
        assert!(!si001.is_empty(), "{report:#?}");
        for row in si001 {
            assert_eq!(row.outcome, ConfirmOutcome::Reproduced, "{row:#?}");
        }
        assert!(report.is_confirmed(), "{report:#?}");
    }

    #[test]
    fn figure5_si002_reproduces_and_robust_rows_hold() {
        let mut ps = ProgramSet::new();
        let a1 = ps.object("acct1");
        let a2 = ps.object("acct2");
        let t = ps.add_program("transfer");
        ps.add_piece(t, "debit", [a1], [a1]);
        ps.add_piece(t, "credit", [a2], [a2]);
        let l = ps.add_program("lookupAll");
        ps.add_piece(l, "read1", [a1], []);
        ps.add_piece(l, "read2", [a2], []);
        let report = confirm_program_set("fig5", &ps, &ConfirmOptions::default());
        let si002 = report.rows.iter().find(|r| r.code == Some(DiagCode::Si002)).unwrap();
        assert_eq!(si002.outcome, ConfirmOutcome::Reproduced, "{si002:#?}");
        assert!(report.is_confirmed(), "{report:#?}");
    }

    #[test]
    fn figure12_long_fork_witnesses_confirm() {
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let y = ps.object("y");
        let w1 = ps.add_program("write1");
        ps.add_piece(w1, "x = post1", [], [x]);
        let w2 = ps.add_program("write2");
        ps.add_piece(w2, "y = post2", [], [y]);
        let r1 = ps.add_program("read1");
        ps.add_piece(r1, "a = y", [y], []);
        ps.add_piece(r1, "b = x", [x], []);
        let r2 = ps.add_program("read2");
        ps.add_piece(r2, "a = x", [x], []);
        ps.add_piece(r2, "b = y", [y], []);
        let report = confirm_program_set("fig12", &ps, &ConfirmOptions::default());
        for code in [DiagCode::Si002, DiagCode::Si004, DiagCode::Si005] {
            let row = report.rows.iter().find(|r| r.code == Some(code)).unwrap();
            assert_ne!(row.outcome, ConfirmOutcome::Unconfirmed, "{row:#?}");
            assert_ne!(row.outcome, ConfirmOutcome::Inconclusive, "{row:#?}");
        }
        assert!(report.is_confirmed(), "{report:#?}");
    }
}
