//! Diagnostics: stable codes, severities, witnesses and repairs.
//!
//! `si-lint` reports findings as [`Diagnostic`] values inside a
//! [`LintReport`]. Codes are stable identifiers (suitable for suppression
//! lists and golden tests); messages and witnesses are human-readable and
//! may improve between versions.
//!
//! # Diagnostic codes
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | SI001 | error    | not SER-robust under SI: refined dangerous structure (Theorem 19 + Fekete vulnerability) |
//! | SI002 | error    | chopping not spliceable under SI: critical cycle in the static chopping graph (Corollary 18) |
//! | SI003 | warning  | chopping spliceable under SI but not under SER (Theorem 29): correctness depends on running under SI |
//! | SI004 | warning  | chopping spliceable under PSI (Theorem 31) but not under SI: correctness depends on weakening to PSI |
//! | SI005 | warning  | not PSI→SI robust: long-fork-shaped structure (Theorem 22); behaviour may change if the store weakens SI to PSI |
//! | SI006 | warning  | analysis inconclusive: search budget exceeded |
//! | SI007 | info     | the plain Theorem 19 check flags a dangerous structure that the Fekete refinement discharges (conflict already materialised by a write-write race) |

use serde::{Content, Deserialize, Error, Serialize};

/// A stable diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// Not SER-robust under SI (refined dangerous structure).
    Si001,
    /// Chopping not spliceable under SI (critical cycle).
    Si002,
    /// Chopping spliceable under SI but not under SER.
    Si003,
    /// Chopping spliceable under PSI but not under SI.
    Si004,
    /// Not PSI→SI robust (long-fork-shaped structure).
    Si005,
    /// Analysis inconclusive (budget exceeded).
    Si006,
    /// Plain check flags, refinement certifies.
    Si007,
}

impl DiagCode {
    /// The stable textual form, e.g. `"SI001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::Si001 => "SI001",
            DiagCode::Si002 => "SI002",
            DiagCode::Si003 => "SI003",
            DiagCode::Si004 => "SI004",
            DiagCode::Si005 => "SI005",
            DiagCode::Si006 => "SI006",
            DiagCode::Si007 => "SI007",
        }
    }

    /// The severity this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::Si001 | DiagCode::Si002 => Severity::Error,
            DiagCode::Si003 | DiagCode::Si004 | DiagCode::Si005 | DiagCode::Si006 => {
                Severity::Warning
            }
            DiagCode::Si007 => Severity::Info,
        }
    }

    /// A long-form explanation of the code: the pattern it detects, the
    /// theorem the detection rests on, and the repair strategy.
    pub fn explain(self) -> &'static str {
        match self {
            DiagCode::Si001 => {
                "SI001 — not SER-robust under SI (dangerous structure)\n\
                \n\
                Pattern:  two anti-dependency (RW) edges meeting in a pivot\n\
                transaction, `a -RW-> b -RW-> c`, with a dependency path\n\
                closing the cycle back from c to a, where both RW edges\n\
                connect transactions that can run concurrently (write-\n\
                disjoint, so first-committer-wins does not abort either).\n\
                Theorem:  Theorem 19 (Fekete et al.'s criterion recast over\n\
                the axiomatic SI characterisation): an SI history that is\n\
                not serializable contains such a structure, so an\n\
                application whose static dependency graph has none is\n\
                SER-robust under SI. The refinement subtracts edges whose\n\
                endpoints always conflict on a must-written object.\n\
                Repair:   promote reads — make the pivot (or one vulnerable\n\
                edge's reader) *write* the object it reads, materialising\n\
                the conflict so FCW serialises the pair; or run the pivot\n\
                at SER (see SI007 for the discharge this earns)."
            }
            DiagCode::Si002 => {
                "SI002 — chopping not spliceable under SI (critical cycle)\n\
                \n\
                Pattern:  a cycle in the chopping graph mixing program-order\n\
                successor edges with conflict edges that leaves and re-enters\n\
                the same program through *different* pieces.\n\
                Theorem:  Corollary 18: if every execution of the chopped\n\
                application splices to an execution of the original one, the\n\
                chopping is correct; Theorem 29 gives the graph-theoretic\n\
                test. A critical cycle means some interleaving of pieces\n\
                observes a state no unchopped execution produces.\n\
                Repair:   merge the pieces on the cycle back into one\n\
                transaction (the suggested merge is re-verified), or remove\n\
                the conflicting access from one side."
            }
            DiagCode::Si003 => {
                "SI003 — chopping spliceable under SI but not under SER\n\
                \n\
                Pattern:  the chopping passes the SI spliceability test but\n\
                fails the stricter serializable one: a cycle becomes\n\
                critical only when conflict edges may run under SER's\n\
                tighter commit order.\n\
                Theorem:  Theorems 29 vs 31: the spliceability criteria\n\
                differ per level; a chopping can be safe exactly at SI.\n\
                Repair:   none needed while the system runs SI — but\n\
                migrating the store to SER would silently break the\n\
                chopping; merge the flagged pieces first."
            }
            DiagCode::Si004 => {
                "SI004 — chopping spliceable under PSI but not under SI\n\
                \n\
                Pattern:  the chopping passes the PSI spliceability test but\n\
                fails the SI one.\n\
                Theorem:  Theorems 29/31 instantiated at PSI vs SI: PSI's\n\
                weaker guarantees admit fewer critical cycles (long forks\n\
                are already allowed, so splicing demands less).\n\
                Repair:   safe on a PSI store; on an SI store merge the\n\
                flagged pieces or drop the chopping."
            }
            DiagCode::Si005 => {
                "SI005 — not SI-robust against PSI (long-fork cycle)\n\
                \n\
                Pattern:  a dependency-graph cycle whose anti-dependency\n\
                (RW) edges never coincide with a write-write or write-read\n\
                conflict: under PSI two replicas can each commit one side\n\
                of the fork and the cycle closes without any FCW abort.\n\
                Theorem:  Theorem 22 (robustness against PSI): an\n\
                application without such a cycle behaves identically on a\n\
                PSI store and an SI store.\n\
                Repair:   materialise a write-write conflict on some cycle\n\
                edge (have both sides write a common object), or keep the\n\
                application on a single-replica SI store."
            }
            DiagCode::Si006 => {
                "SI006 — analysis budget exhausted\n\
                \n\
                Pattern:  the cycle search hit its node/edge budget before\n\
                the robustness question was decided.\n\
                Theorem:  none — this is an engineering bound, not a\n\
                verdict. Treat the target as potentially non-robust.\n\
                Repair:   raise `LintOptions::budget` or shrink the\n\
                application model."
            }
            DiagCode::Si007 => {
                "SI007 — constraint already materialised / pivot discharged\n\
                \n\
                Pattern:  a would-be dangerous structure whose pivot is\n\
                declared to run at SER (session-level annotation), or whose\n\
                conflicting pair already writes a common object.\n\
                Theorem:  Theorem 19's side conditions: promoting the pivot\n\
                to SER (or materialising the write-write conflict) removes\n\
                the structure from every SI execution's dependency graph.\n\
                Repair:   none — informational. The repair is already in\n\
                place; this code records *why* the structure is harmless."
            }
        }
    }
}

// Serialized as the bare code string (the derive macro has no rename
// support, and `"Si001"` is not a stable public spelling).
impl Serialize for DiagCode {
    fn to_content(&self) -> Content {
        Content::Str(self.as_str().to_owned())
    }
}

impl Deserialize for DiagCode {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let Content::Str(s) = content else {
            return Err(Error::custom(format!(
                "expected diagnostic code string, found {content:?}"
            )));
        };
        match s.as_str() {
            "SI001" => Ok(DiagCode::Si001),
            "SI002" => Ok(DiagCode::Si002),
            "SI003" => Ok(DiagCode::Si003),
            "SI004" => Ok(DiagCode::Si004),
            "SI005" => Ok(DiagCode::Si005),
            "SI006" => Ok(DiagCode::Si006),
            "SI007" => Ok(DiagCode::Si007),
            other => Err(Error::custom(format!("unknown diagnostic code {other:?}"))),
        }
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: nothing to fix.
    Info,
    /// The application is correct under SI but fragile to isolation-level
    /// changes, or the analysis could not conclude.
    Warning,
    /// The application can produce non-serializable (or non-spliceable)
    /// behaviour under SI.
    Error,
}

impl Severity {
    /// Lower-case stable form: `"error"`, `"warning"`, `"info"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl Serialize for Severity {
    fn to_content(&self) -> Content {
        Content::Str(self.as_str().to_owned())
    }
}

impl Deserialize for Severity {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let Content::Str(s) = content else {
            return Err(Error::custom(format!("expected severity string, found {content:?}")));
        };
        match s.as_str() {
            "info" => Ok(Severity::Info),
            "warning" => Ok(Severity::Warning),
            "error" => Ok(Severity::Error),
            other => Err(Error::custom(format!("unknown severity {other:?}"))),
        }
    }
}

/// One edge of a witness cycle, rendered over program/piece names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WitnessEdge {
    /// Source vertex, e.g. `"write_check"` or `"transfer[acct1 -= 100]"`.
    pub from: String,
    /// Target vertex.
    pub to: String,
    /// Edge kind: `"RW"`, `"WR"`, `"WW"`, `"S"` (successor), `"P"`
    /// (predecessor), or a disjunction like `"RW|WR|WW"` when the closing
    /// path is abstract.
    pub kind: String,
    /// The object the edge conflicts on, when the analysis can name one
    /// (session-order edges have none).
    pub object: Option<String>,
}

/// A counterexample shape backing a diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Witness {
    /// One-line rendering of the whole cycle.
    pub summary: String,
    /// The cycle's edges in order.
    pub edges: Vec<WitnessEdge>,
}

/// One primitive change of a [`Repair`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairAction {
    /// Promote a read of `object` in `program` to a write (Fekete
    /// materialisation: the identity update forces first-committer-wins
    /// to serialise the conflict).
    Promote {
        /// The program to change.
        program: String,
        /// The object whose read is promoted.
        object: String,
    },
    /// Merge pieces `piece` and `piece + 1` of `program` into one
    /// transaction.
    MergePieces {
        /// The program to coarsen.
        program: String,
        /// Zero-based index of the first of the two merged pieces.
        piece: usize,
    },
}

/// A machine-checked fix suggestion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Repair {
    /// Human-readable one-liner.
    pub description: String,
    /// The primitive changes, applied together.
    pub actions: Vec<RepairAction>,
    /// Whether re-running the analysis on the repaired application
    /// verified the fix. `si-lint` only emits verified repairs, so this is
    /// `true` unless a caller constructs unverified ones.
    pub verified: bool,
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagCode,
    /// Severity (always `code.severity()` for `si-lint`-emitted values).
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// The counterexample shape, when the analysis produced one.
    pub witness: Option<Witness>,
    /// Verified fix suggestions, cheapest first.
    pub repairs: Vec<Repair>,
}

impl Diagnostic {
    /// Creates a diagnostic for `code` with its canonical severity.
    pub fn new(code: DiagCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            witness: None,
            repairs: Vec::new(),
        }
    }
}

/// Aggregate verdicts of one lint run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of programs analysed (before instance replication).
    pub programs: usize,
    /// Total pieces across all programs.
    pub pieces: usize,
    /// Whether any program has more than one piece (chopping analyses
    /// apply).
    pub chopped: bool,
    /// Theorem 19 verdict on the unchopped programs (no refinement).
    pub ser_robust_plain: bool,
    /// Theorem 19 + Fekete refinement verdict (the authoritative one).
    pub ser_robust_refined: bool,
    /// Theorem 22 verdict: SI and PSI produce the same behaviours.
    pub psi_si_robust: bool,
    /// Corollary 18 verdict, when chopped (`None` = not applicable or
    /// budget exceeded).
    pub chop_si_correct: Option<bool>,
    /// Theorem 29 verdict, when chopped.
    pub chop_ser_correct: Option<bool>,
    /// Theorem 31 verdict, when chopped.
    pub chop_psi_correct: Option<bool>,
    /// Count of error-severity diagnostics.
    pub errors: usize,
    /// Count of warning-severity diagnostics.
    pub warnings: usize,
    /// Count of info-severity diagnostics.
    pub infos: usize,
}

/// The full result of linting one application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// What was analysed (caller-chosen name, e.g. `"smallbank"`).
    pub target: String,
    /// Aggregate verdicts.
    pub summary: Summary,
    /// Findings, in deterministic order (errors first, then by code, then
    /// by discovery order).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// True when no error-severity diagnostic was emitted.
    pub fn is_clean(&self) -> bool {
        self.summary.errors == 0
    }

    /// Renders the report as deterministic human-readable text.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let s = &self.summary;
        let _ = writeln!(out, "si-lint report for `{}`", self.target);
        let _ = writeln!(
            out,
            "  programs: {} ({} pieces{})",
            s.programs,
            s.pieces,
            if s.chopped { ", chopped" } else { "" }
        );
        let _ = writeln!(
            out,
            "  SER-robust under SI: {} (plain Theorem 19: {})",
            yes_no(s.ser_robust_refined),
            yes_no(s.ser_robust_plain)
        );
        let _ = writeln!(out, "  PSI/SI coincide (Theorem 22): {}", yes_no(s.psi_si_robust));
        if s.chopped {
            let _ = writeln!(
                out,
                "  chopping spliceable: SI {}, SER {}, PSI {}",
                verdict(s.chop_si_correct),
                verdict(s.chop_ser_correct),
                verdict(s.chop_psi_correct)
            );
        }
        if self.diagnostics.is_empty() {
            let _ = writeln!(out, "  no findings");
            return out;
        }
        let _ = writeln!(
            out,
            "  findings: {} error(s), {} warning(s), {} info(s)",
            s.errors, s.warnings, s.infos
        );
        for d in &self.diagnostics {
            let _ = writeln!(out);
            let _ = writeln!(out, "{}[{}]: {}", d.severity.as_str(), d.code.as_str(), d.message);
            if let Some(w) = &d.witness {
                let _ = writeln!(out, "  witness: {}", w.summary);
                for e in &w.edges {
                    let obj = e.object.as_deref().map(|o| format!(" on {o}")).unwrap_or_default();
                    let _ = writeln!(out, "    {} -{}-> {}{}", e.from, e.kind, e.to, obj);
                }
            }
            for r in &d.repairs {
                let mark = if r.verified { "verified" } else { "UNVERIFIED" };
                let _ = writeln!(out, "  repair ({mark}): {}", r.description);
            }
        }
        out
    }
}

/// Renders a batch of reports as deterministic pretty-printed JSON — the
/// format the CLI's `--json` mode emits and CI diffs against the
/// committed golden file.
pub fn reports_to_json(reports: &[LintReport]) -> String {
    serde_json::to_string_pretty(&reports).expect("lint reports always serialize")
}

/// Parses [`reports_to_json`] output back.
///
/// # Errors
///
/// Returns the underlying deserialization error when the JSON does not
/// describe a list of lint reports.
pub fn reports_from_json(json: &str) -> Result<Vec<LintReport>, serde_json::Error> {
    serde_json::from_str(json)
}

fn yes_no(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "NO"
    }
}

fn verdict(v: Option<bool>) -> &'static str {
    match v {
        Some(true) => "yes",
        Some(false) => "NO",
        None => "inconclusive",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_as_strings() {
        for code in [
            DiagCode::Si001,
            DiagCode::Si002,
            DiagCode::Si003,
            DiagCode::Si004,
            DiagCode::Si005,
            DiagCode::Si006,
            DiagCode::Si007,
        ] {
            let json = serde_json::to_string(&code).unwrap();
            assert_eq!(json, format!("\"{}\"", code.as_str()));
            let back: DiagCode = serde_json::from_str(&json).unwrap();
            assert_eq!(back, code);
        }
        assert!(serde_json::from_str::<DiagCode>("\"SI999\"").is_err());
    }

    #[test]
    fn severities_are_ordered_and_stable() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(serde_json::to_string(&Severity::Error).unwrap(), "\"error\"");
        let back: Severity = serde_json::from_str("\"warning\"").unwrap();
        assert_eq!(back, Severity::Warning);
    }

    #[test]
    fn report_json_round_trips() {
        let report = LintReport {
            target: "demo".into(),
            summary: Summary {
                programs: 2,
                pieces: 2,
                chopped: false,
                ser_robust_plain: false,
                ser_robust_refined: false,
                psi_si_robust: true,
                chop_si_correct: None,
                chop_ser_correct: None,
                chop_psi_correct: None,
                errors: 1,
                warnings: 0,
                infos: 0,
            },
            diagnostics: vec![Diagnostic {
                code: DiagCode::Si001,
                severity: Severity::Error,
                message: "write skew".into(),
                witness: Some(Witness {
                    summary: "a -RW-> b -RW-> a".into(),
                    edges: vec![WitnessEdge {
                        from: "a".into(),
                        to: "b".into(),
                        kind: "RW".into(),
                        object: Some("x".into()),
                    }],
                }),
                repairs: vec![Repair {
                    description: "promote read of x in a".into(),
                    actions: vec![RepairAction::Promote {
                        program: "a".into(),
                        object: "x".into(),
                    }],
                    verified: true,
                }],
            }],
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: LintReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        // The stable code appears literally in the JSON.
        assert!(json.contains("\"SI001\""));
        assert!(json.contains("\"error\""));
    }

    #[test]
    fn text_rendering_is_deterministic_and_named() {
        let report = LintReport {
            target: "demo".into(),
            summary: Summary {
                programs: 1,
                pieces: 1,
                chopped: false,
                ser_robust_plain: true,
                ser_robust_refined: true,
                psi_si_robust: true,
                chop_si_correct: None,
                chop_ser_correct: None,
                chop_psi_correct: None,
                errors: 0,
                warnings: 0,
                infos: 0,
            },
            diagnostics: vec![],
        };
        let a = report.render_text();
        let b = report.render_text();
        assert_eq!(a, b);
        assert!(a.contains("no findings"));
        assert!(a.contains("SER-robust under SI: yes"));
    }
}
