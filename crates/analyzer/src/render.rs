//! Builds [`Witness`] values — named vertices, labelled edges, conflict
//! objects — from the raw analysis witnesses.
//!
//! The library analyses report witnesses over vertex indices
//! ([`si_relations::TxId`] for robustness, chopping-graph nodes for
//! spliceability). This module resolves them back to program and piece
//! names and annotates every conflict edge with the object the two sides
//! fight over, so a diagnostic reads
//! `balance -RW(checking0)-> write_check` rather than `T0 -RW-> T4`.

use si_chopping::{
    conflict_object, ChopEdge, ChoppingReport, ConflictKind, PieceId, ProgramId, ProgramSet,
};
use si_relations::TxId;
use si_robustness::{DangerousStructure, StaticDepGraph};

use crate::diag::{Witness, WitnessEdge};

/// The single piece standing for whole program `v` in an unchopped set.
fn whole_piece(v: TxId) -> PieceId {
    PieceId { program: ProgramId(v.index()), piece: 0 }
}

/// Names the object an edge of `kind` between whole programs `from` and
/// `to` conflicts on, if the (unchopped) sets intersect.
fn edge_object(whole: &ProgramSet, from: TxId, to: TxId, kind: ConflictKind) -> Option<String> {
    conflict_object(whole, whole_piece(from), whole_piece(to), kind)
        .and_then(|o| whole.object_name(o).map(str::to_owned))
}

/// The kinds under which `from -> to` is an edge of `graph`, rendered as
/// `"WR"`, `"RW|WW"`, …; `"?"` if none (should not happen for analysis
/// witnesses).
fn edge_kinds(graph: &StaticDepGraph, from: TxId, to: TxId) -> String {
    let mut kinds = Vec::new();
    if graph.wr().contains(from, to) {
        kinds.push("WR");
    }
    if graph.ww().contains(from, to) {
        kinds.push("WW");
    }
    if graph.rw().contains(from, to) {
        kinds.push("RW");
    }
    if kinds.is_empty() {
        "?".to_owned()
    } else {
        kinds.join("|")
    }
}

/// First kind (in WR, WW, RW order) under which `from -> to` is an edge.
fn first_kind(graph: &StaticDepGraph, from: TxId, to: TxId) -> Option<ConflictKind> {
    if graph.wr().contains(from, to) {
        Some(ConflictKind::Wr)
    } else if graph.ww().contains(from, to) {
        Some(ConflictKind::Ww)
    } else if graph.rw().contains(from, to) {
        Some(ConflictKind::Rw)
    } else {
        None
    }
}

/// Renders a robustness witness over program names, annotating each edge
/// with the conflicting object. `whole` must be the (unchopped,
/// instance-replicated if applicable) program set the `graph` was built
/// from, so that program indices line up with the witness's vertex ids.
pub fn witness_from_structure(
    structure: &DangerousStructure,
    graph: &StaticDepGraph,
    whole: &ProgramSet,
) -> Witness {
    let name = |v: TxId| graph.name(v).to_owned();
    let summary = structure.describe_with(&name);
    let mut edges = Vec::new();
    match structure {
        DangerousStructure::AdjacentAntiDependencies { a, b, c, closing_path } => {
            for (from, to) in [(*a, *b), (*b, *c)] {
                edges.push(WitnessEdge {
                    from: name(from),
                    to: name(to),
                    kind: "RW".to_owned(),
                    object: edge_object(whole, from, to, ConflictKind::Rw),
                });
            }
            for pair in closing_path.windows(2) {
                let (from, to) = (pair[0], pair[1]);
                let object =
                    first_kind(graph, from, to).and_then(|k| edge_object(whole, from, to, k));
                edges.push(WitnessEdge {
                    from: name(from),
                    to: name(to),
                    kind: edge_kinds(graph, from, to),
                    object,
                });
            }
        }
        DangerousStructure::SeparatedAntiDependencyCycle { nodes } => {
            let n = nodes.len();
            for (i, &from) in nodes.iter().enumerate() {
                let to = nodes[(i + 1) % n];
                let object =
                    first_kind(graph, from, to).and_then(|k| edge_object(whole, from, to, k));
                edges.push(WitnessEdge {
                    from: name(from),
                    to: name(to),
                    kind: edge_kinds(graph, from, to),
                    object,
                });
            }
        }
    }
    Witness { summary, edges }
}

/// Renders a chopping-analysis witness (a critical cycle in the static
/// chopping graph) over program/piece names. Returns `None` when the
/// report carries no witness (the chopping was correct).
pub fn witness_from_chopping(report: &ChoppingReport, programs: &ProgramSet) -> Option<Witness> {
    let cycle = report.witness.as_ref()?;
    let summary = report.describe_witness(programs);
    let render_node = |piece: PieceId| {
        format!("{}[{}]", programs.program_name(piece.program), programs.piece_label(piece))
    };
    let n = cycle.nodes.len();
    let mut edges = Vec::new();
    for (i, (node, label)) in cycle.nodes.iter().zip(&cycle.labels).enumerate() {
        let piece = report.nodes.piece(*node);
        let next = report.nodes.piece(cycle.nodes[(i + 1) % n]);
        let object = match label {
            ChopEdge::Conflict(kind) => conflict_object(programs, piece, next, *kind)
                .and_then(|o| programs.object_name(o).map(str::to_owned)),
            _ => None,
        };
        edges.push(WitnessEdge {
            from: render_node(piece),
            to: render_node(next),
            kind: label.to_string(),
            object,
        });
    }
    Some(Witness { summary, edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_chopping::{analyse_chopping, Criterion};
    use si_robustness::check_ser_robustness;

    fn write_skew() -> ProgramSet {
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let y = ps.object("y");
        let w1 = ps.add_program("withdraw_x");
        ps.add_piece(w1, "p", [x, y], [x]);
        let w2 = ps.add_program("withdraw_y");
        ps.add_piece(w2, "p", [x, y], [y]);
        ps
    }

    #[test]
    fn structure_witness_names_programs_and_objects() {
        let ps = write_skew();
        let whole = ps.unchopped();
        let graph = StaticDepGraph::from_programs(&ps);
        let report = check_ser_robustness(&graph);
        let w = witness_from_structure(report.witness.as_ref().unwrap(), &graph, &whole);
        assert!(w.summary.contains("withdraw_x"), "{}", w.summary);
        assert_eq!(w.edges.len(), 2); // a -RW-> b -RW-> a, no closing path
        assert_eq!(w.edges[0].kind, "RW");
        // withdraw_x reads y which withdraw_y writes (and x/x the other way).
        let objs: Vec<_> = w.edges.iter().map(|e| e.object.clone().unwrap()).collect();
        assert!(objs.contains(&"x".to_owned()) && objs.contains(&"y".to_owned()), "{objs:?}");
    }

    #[test]
    fn chopping_witness_names_pieces_and_objects() {
        let mut ps = ProgramSet::new();
        let a1 = ps.object("acct1");
        let a2 = ps.object("acct2");
        let t = ps.add_program("transfer");
        ps.add_piece(t, "debit", [a1], [a1]);
        ps.add_piece(t, "credit", [a2], [a2]);
        let l = ps.add_program("lookupAll");
        ps.add_piece(l, "read1", [a1], []);
        ps.add_piece(l, "read2", [a2], []);
        let report = analyse_chopping(&ps, Criterion::Si, 1_000_000).unwrap();
        let w = witness_from_chopping(&report, &ps).unwrap();
        assert!(!w.edges.is_empty());
        // Session edges carry no object; at least one conflict edge names one.
        assert!(w.edges.iter().any(|e| e.object.is_some()));
        assert!(w.edges.iter().any(|e| e.kind == "P" || e.kind == "S"));
        assert!(w.edges[0].from.contains('['), "piece-labelled: {}", w.edges[0].from);
        // Correct choppings yield no witness.
        let ok = analyse_chopping(&ps.unchopped(), Criterion::Si, 1_000_000).unwrap();
        assert!(witness_from_chopping(&ok, &ps.unchopped()).is_none());
    }
}
