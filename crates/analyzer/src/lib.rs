//! `si-lint` — a program-level static analyzer over the *Analysing
//! Snapshot Isolation* theorem stack.
//!
//! The lower crates answer single questions about hand-declared read/write
//! sets: is this application SER-robust under SI (§6.1)? robust against
//! PSI (§6.2)? is this chopping spliceable (Corollary 18, Theorems 29 and
//! 31)? This crate turns them into a *linter* for transactional programs:
//!
//! * **IR + derived sets** ([`ir`]): model programs with parameterised and
//!   predicate/range accesses and conditionals; [`IrApp::approximate`]
//!   conservatively derives may-read/may-write sets (and the must-write
//!   sets the Fekete refinement is allowed to subtract).
//! * **Driver** ([`driver`]): [`lint_program_set`] / [`lint_app`] run the
//!   full analysis battery and emit [`Diagnostic`]s with stable codes
//!   (SI001–SI007), witnesses rendered over program/piece/object *names*,
//!   and severity levels. See [`diag`] for the code table.
//! * **Repairs** ([`repair`], internal): minimal read-promotion sets
//!   (constraint materialisation) and piece-merge sequences, each
//!   **machine-verified** by re-running the analysis on the repaired
//!   program set before being suggested.
//!
//! ```
//! use si_chopping::ProgramSet;
//! use si_lint::{lint_program_set, DiagCode, LintOptions};
//!
//! let mut ps = ProgramSet::new();
//! let x = ps.object("x");
//! let y = ps.object("y");
//! let w1 = ps.add_program("withdraw_x");
//! ps.add_piece(w1, "check both, debit x", [x, y], [x]);
//! let w2 = ps.add_program("withdraw_y");
//! ps.add_piece(w2, "check both, debit y", [x, y], [y]);
//!
//! let report = lint_program_set("write-skew", &ps, &LintOptions::default());
//! assert_eq!(report.diagnostics[0].code, DiagCode::Si001);
//! assert!(report.diagnostics[0].repairs.iter().all(|r| r.verified));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod confirm;
pub mod diag;
pub mod driver;
pub mod ir;
pub mod render;
mod repair;
pub mod witness;

pub use confirm::{
    confirm_app, confirm_program_set, confirms_from_json, confirms_to_json, ConfirmOptions,
    ConfirmOutcome, ConfirmRow, ConfirmationReport,
};
pub use diag::{
    reports_from_json, reports_to_json, DiagCode, Diagnostic, LintReport, Repair, RepairAction,
    Severity, Summary, Witness, WitnessEdge,
};
pub use driver::{
    lint_app, lint_app_full, lint_app_with_metrics, lint_program_set, lint_program_set_full,
    lint_program_set_with_metrics, LintOptions, LintOutcome, RawWitness,
};
pub use ir::{Access, FamilyId, IrApp, IrProgramId, Lowered, SessionLevel, Stmt};
pub use witness::{compile_witness, ClaimLevel, CompiledWitness, WitnessCheck};

#[cfg(test)]
mod acceptance {
    //! The ISSUE acceptance criteria, as tests.

    use si_workloads::{smallbank, tpcc_lite};

    use crate::{lint_program_set, DiagCode, LintOptions, RepairAction};

    #[test]
    fn smallbank_flags_its_dangerous_structure() {
        let ps = smallbank::program_set(1);
        let report = lint_program_set("smallbank", &ps, &LintOptions::default());
        assert!(!report.summary.ser_robust_refined);
        let si001 = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::Si001)
            .expect("SmallBank must produce SI001");
        // The witness names the balance / write_check dangerous structure.
        let w = si001.witness.as_ref().unwrap();
        assert!(w.summary.contains("balance"), "{}", w.summary);
        assert!(w.summary.contains("write_check"), "{}", w.summary);
        // Each RW edge is annotated with the account object it races on.
        assert!(
            w.edges.iter().any(|e| e.object.is_some()),
            "conflict objects must be named: {:?}",
            w.edges
        );
        // And a verified promotion set is proposed.
        let promo = si001
            .repairs
            .iter()
            .find(|r| r.actions.iter().all(|a| matches!(a, RepairAction::Promote { .. })))
            .expect("a promotion repair must be proposed");
        assert!(promo.verified);
    }

    #[test]
    fn tpcc_lite_is_robust() {
        let ps = tpcc_lite::program_set(2, 2);
        let report = lint_program_set("tpcc-lite", &ps, &LintOptions::default());
        assert!(report.summary.ser_robust_refined, "{:#?}", report.diagnostics);
        assert!(report.is_clean());
    }
}
