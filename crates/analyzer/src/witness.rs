//! si-witness: compile static verdicts into executable counterexamples.
//!
//! A lint diagnostic is a claim about *possible* executions: SI001 says
//! some SI execution of the flagged programs is non-serializable, SI005
//! says some PSI execution is observably non-SI, SI002–SI004 say chopped
//! executions splice (or fail to splice) at particular levels. This
//! module makes those claims executable. For every [`RawWitness`] the
//! driver attaches to a diagnostic it produces a [`CompiledWitness`]:
//!
//! * concrete [`Script`]s instantiating the dangerous structure's
//!   accesses on real objects — parameterised (`Param`/`Range`) accesses
//!   are bound to the family element named by the witness's conflict
//!   objects, conditional branches take the write-bearing arm (a witness
//!   wants the dangerous writes to happen), and every write carries a
//!   distinct constant so `WR` edges are value-forced;
//! * a scheduler advisory (the sanitizer's [`ReplayScript`] form) that
//!   steers the matching live engine into the anomalous interleaving;
//! * a [`WitnessCheck`] stating what the recorded history must satisfy
//!   for the diagnostic to count as *confirmed* — refuted by the solver
//!   at the diagnosed level, or (for robust verdicts) accepted on every
//!   explored interleaving.
//!
//! The schedules are derived from the witness structure, not searched
//! for:
//!
//! * **SI001/SI007** (dangerous structure `a ─rw→ b ─rw→ c ⇝ a`): the
//!   pivot `b` begins first (pinning its snapshot before anything
//!   commits), the closing path `c … a` then runs serially, and `b`
//!   finishes last. Both anti-dependencies land because `b`'s snapshot
//!   predates `c`'s commit and `a`'s snapshot predates `b`'s commit;
//!   the closing dependencies land because the path runs serially. The
//!   structure's vulnerable edges are write-disjoint by construction,
//!   so first-committer-wins does not abort the schedule.
//! * **SI005** (long-fork cycle): the cycle is cut at its
//!   anti-dependency edges into dependency segments; each segment runs
//!   serially as one session on its own PSI replica with replication
//!   suppressed, so in-segment dependencies are observed (same replica)
//!   while cross-segment writes are invisible — the long fork realised.
//! * **SI002/SI003/SI004** (critical chopping cycle): every piece of
//!   every program on the cycle becomes its own transaction, executed
//!   serially in a topological order of program order plus the cycle's
//!   conflict edges (the cycle is closed by *reverse* program-order
//!   edges, so that constraint graph is acyclic exactly when the
//!   witness is realisable this way). Serial piece execution realises
//!   each conflict edge, and splicing the recorded history exhibits the
//!   fractured snapshot / write skew / long fork the criterion forbids.
//!
//! Compilation is deterministic: same app + same witness → byte-identical
//! scripts and advisory (no randomness, no search).

use std::collections::{BTreeMap, BTreeSet};

use si_chopping::{conflict_object, ChopEdge, ConflictKind, PieceId, ProgramId, ProgramSet};
use si_model::Obj;
use si_mvcc::{Script, ScriptOp, Workload};
use si_relations::TxId;
use si_robustness::{DangerousStructure, StaticDepGraph};
use si_sanitizer::{Actor, EngineSpec, ReplayScript};

use crate::diag::DiagCode;
use crate::driver::RawWitness;
use crate::ir::{FamilyId, IrApp, IrProgramId, SessionLevel};

/// A consistency level a confirmation claim is judged at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimLevel {
    /// Serializability (`HistSER`, Theorem 8).
    Ser,
    /// Snapshot isolation (`HistSI`, Theorem 9).
    Si,
    /// Parallel snapshot isolation (`HistPSI`, Theorem 21).
    Psi,
}

impl ClaimLevel {
    /// The rendered name.
    pub fn as_str(self) -> &'static str {
        match self {
            ClaimLevel::Ser => "SER",
            ClaimLevel::Si => "SI",
            ClaimLevel::Psi => "PSI",
        }
    }
}

/// What the confirmation run must establish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WitnessCheck {
    /// The advisory-steered run's recorded history must be refuted at
    /// the level (the anomaly the diagnostic predicts is reproduced).
    HistoryRefutedAt(ClaimLevel),
    /// The spliced history (per-session pieces glued back into one
    /// transaction, Corollary 18) must be refuted at the level, while
    /// the *unspliced* piece-level history stays a member at the level
    /// the engine itself guarantees — proving the run was a genuine
    /// chopped execution whose splice exhibits the anomaly.
    SpliceRefutedAt(ClaimLevel),
    /// A robust verdict: every interleaving of the compiled scripts,
    /// explored exhaustively, must yield a history accepted at the
    /// level.
    AllRunsMemberAt(ClaimLevel),
}

/// A static witness lowered to scripts, an advisory schedule and a
/// confirmation claim.
#[derive(Debug, Clone)]
pub struct CompiledWitness {
    /// The diagnostic this witness compiles.
    pub code: DiagCode,
    /// Engine, workload and scheduling decisions, in the sanitizer's
    /// self-contained replay form. For [`WitnessCheck::AllRunsMemberAt`]
    /// the decision list is empty — exploration owns the schedule.
    pub advisory: ReplayScript,
    /// What the run must establish.
    pub check: WitnessCheck,
    /// One label per workload session: the program (or `program[piece…]`
    /// chain) it executes.
    pub sessions: Vec<String>,
    /// The conflict objects of the witness edges, by interned name —
    /// exactly the objects parameterised accesses were bound to.
    pub conflict_objects: Vec<String>,
    /// Interned object names, indexed by [`Obj`] index, for rendering
    /// the workload.
    pub object_names: Vec<String>,
}

/// Compiles one diagnostic's raw witness. The `Err` explains why the
/// witness shape cannot be realised by this compiler (e.g. a chopping
/// constraint graph that is not serially schedulable, or a long-fork
/// cycle that write-conflict detection collapses) — the confirmation
/// layer reports such diagnostics as inconclusive rather than wrong.
///
/// # Errors
///
/// Returns the human-readable realisability obstruction.
pub fn compile_witness(
    app: &IrApp,
    may: &ProgramSet,
    levels: &[SessionLevel],
    code: DiagCode,
    raw: &RawWitness,
) -> Result<CompiledWitness, String> {
    match raw {
        RawWitness::Structure(s) => match code {
            DiagCode::Si001 => compile_structure(app, may, s, code, false),
            DiagCode::Si007 => {
                // Discharged/materialised structures are compiled as a
                // robustness claim. A SER-annotated pivot is modelled by
                // the SSI engine (runtime promotion of every session —
                // the strongest reading of the repair); a materialised
                // constraint keeps the SI engine, whose
                // first-committer-wins on the shared object is the very
                // mechanism the refinement credits.
                let pivot_ser = match s {
                    DangerousStructure::AdjacentAntiDependencies { b, .. } => {
                        levels[b.index() % may.program_count()] == SessionLevel::Ser
                    }
                    DangerousStructure::SeparatedAntiDependencyCycle { .. } => false,
                };
                compile_structure(app, may, s, code, true).map(|mut w| {
                    if pivot_ser {
                        w.advisory.engine = EngineSpec::Ssi;
                    }
                    w
                })
            }
            DiagCode::Si005 => compile_long_fork(app, may, s),
            other => Err(format!("no structure witness compiler for {}", other.as_str())),
        },
        RawWitness::Chop(report) => compile_chop(app, may, code, report),
    }
}

/// One concrete access stream for a script, pre-assembly.
#[derive(Debug, Default, Clone)]
struct AccessPlan {
    reads: Vec<Obj>,
    writes: Vec<Obj>,
}

/// Deterministic script assembly: deduped reads in first-seen order,
/// then deduped writes (last write wins) with fresh constants from the
/// shared counter.
fn assemble(plan: &AccessPlan, counter: &mut u64) -> Script {
    let mut script = Script::new();
    let mut seen = BTreeSet::new();
    for &o in &plan.reads {
        if seen.insert(o) {
            script = script.read(o);
        }
    }
    let mut write_order: Vec<Obj> = Vec::new();
    for &o in &plan.writes {
        if !write_order.contains(&o) {
            write_order.push(o);
        }
    }
    for o in write_order {
        *counter += 1;
        script = script.write_const(o, *counter);
    }
    script
}

/// Scheduling steps one script takes on a writes-are-local engine:
/// begin, one per external read, commit.
fn steps_for(script: &Script) -> usize {
    let mut written: BTreeSet<Obj> = BTreeSet::new();
    let mut external = 0;
    for op in script.ops() {
        match op {
            ScriptOp::Read(o) => {
                if !written.contains(o) {
                    external += 1;
                }
            }
            ScriptOp::WriteConst(o, _) => {
                written.insert(*o);
            }
            ScriptOp::WriteComputed { obj, .. } => {
                written.insert(*obj);
            }
            ScriptOp::EndIfSumBelow { .. } => {}
        }
    }
    1 + external + 1
}

/// The family-element binding for parameterised accesses: the first
/// conflict object seen per family. Returns the per-family element index.
fn binding_from_conflicts(app: &IrApp, conflicts: &[Obj]) -> BTreeMap<FamilyId, usize> {
    let mut bind = BTreeMap::new();
    for &o in conflicts {
        if let Some((f, i)) = app.object_family(o) {
            bind.entry(f).or_insert(i);
        }
    }
    bind
}

/// The concrete access plan of one piece under `bind`.
fn piece_plan(
    app: &IrApp,
    program: IrProgramId,
    piece: usize,
    bind: &BTreeMap<FamilyId, usize>,
) -> AccessPlan {
    let (reads, writes) = app.witness_accesses(program, piece, &|f| bind.get(&f).copied());
    AccessPlan { reads, writes }
}

/// The whole-program access plan: pieces concatenated in order.
fn program_plan(app: &IrApp, program: IrProgramId, bind: &BTreeMap<FamilyId, usize>) -> AccessPlan {
    let mut plan = AccessPlan::default();
    for k in 0..app.piece_count(program) {
        let p = piece_plan(app, program, k, bind);
        plan.reads.extend(p.reads);
        plan.writes.extend(p.writes);
    }
    plan
}

/// Maps a whole-transaction static-graph vertex to its program.
fn vertex_program(v: TxId, program_count: usize) -> IrProgramId {
    IrProgramId(v.index() % program_count)
}

/// The conflict objects realising each consecutive edge of a vertex
/// sequence over the whole-transaction (unchopped) program set, in edge
/// order. Edges are looked up kind-by-kind in WR → WW → RW order,
/// mirroring the renderer.
fn structure_conflicts(whole: &ProgramSet, order: &[(TxId, TxId)]) -> Vec<Obj> {
    let wp = |v: TxId| PieceId { program: ProgramId(v.index()), piece: 0 };
    let mut out = Vec::new();
    for &(u, v) in order {
        for kind in [ConflictKind::Wr, ConflictKind::Ww, ConflictKind::Rw] {
            if let Some(o) = conflict_object(whole, wp(u), wp(v), kind) {
                out.push(o);
            }
        }
    }
    out
}

fn object_names(may: &ProgramSet) -> Vec<String> {
    (0..may.object_count())
        .map(|i| may.object_name(Obj::from_index(i)).unwrap_or("?").to_owned())
        .collect()
}

/// SI001/SI007: pivot-first realisation of an adjacent dangerous
/// structure (or, for a separated cycle reported by the plain check, a
/// serial run of its nodes — enough for the robustness polarity).
fn compile_structure(
    app: &IrApp,
    may: &ProgramSet,
    s: &DangerousStructure,
    code: DiagCode,
    robust: bool,
) -> Result<CompiledWitness, String> {
    let whole = may.unchopped();
    let program_count = may.program_count();
    let (pivot, path) = match s {
        DangerousStructure::AdjacentAntiDependencies { a, b, c, closing_path } => {
            let path = if closing_path.is_empty() {
                debug_assert_eq!(a, c);
                vec![*a]
            } else {
                closing_path.clone()
            };
            (*b, path)
        }
        DangerousStructure::SeparatedAntiDependencyCycle { nodes } => {
            let (&first, rest) =
                nodes.split_first().ok_or_else(|| "empty witness cycle".to_owned())?;
            (first, rest.to_vec())
        }
    };
    if path.contains(&pivot) {
        // Degenerate: this compiler schedules each program once.
        return Err("the closing path revisits the pivot".to_owned());
    }

    // Conflict objects around the structure, for binding parameterised
    // accesses: both anti-dependency edges plus every closing-path step.
    let mut edges = vec![(path[path.len() - 1], pivot), (pivot, path[0])];
    edges.extend(path.windows(2).map(|w| (w[0], w[1])));
    let conflicts = structure_conflicts(&whole, &edges);
    let bind = binding_from_conflicts(app, &conflicts);

    let mut counter = 0u64;
    let mut sessions = Vec::new();
    let mut scripts = Vec::new();
    for &v in std::iter::once(&pivot).chain(path.iter()) {
        let p = vertex_program(v, program_count);
        sessions.push(app.program_name(p).to_owned());
        scripts.push(assemble(&program_plan(app, p, &bind), &mut counter));
    }
    if scripts.iter().any(Script::is_empty) {
        // An empty session would renumber the workload.
        return Err("a witness program has no concrete accesses".to_owned());
    }

    let mut workload = Workload::new(may.object_count());
    for s in &scripts {
        workload = workload.session([s.clone()]);
    }

    // Pivot begins (session 0, one step), the closing path runs serially
    // (sessions 1..), the pivot finishes. Over-long actor runs are
    // harmless: advisory replay skips decisions for disabled actors.
    let mut decisions = vec![Actor::Session(0)];
    for (i, s) in scripts.iter().enumerate().skip(1) {
        decisions.extend(std::iter::repeat_n(Actor::Session(i), steps_for(s)));
    }
    decisions.extend(std::iter::repeat_n(Actor::Session(0), steps_for(&scripts[0]) - 1));

    let check = if robust {
        WitnessCheck::AllRunsMemberAt(ClaimLevel::Ser)
    } else {
        WitnessCheck::HistoryRefutedAt(ClaimLevel::Ser)
    };
    let decisions = if robust { Vec::new() } else { decisions };
    Ok(CompiledWitness {
        code,
        advisory: ReplayScript::new(EngineSpec::Si, &workload, 4, decisions),
        check,
        sessions,
        conflict_objects: named(&conflicts, may),
        object_names: object_names(may),
    })
}

/// SI005: segment the long-fork cycle at its anti-dependency edges and
/// run each dependency segment serially on its own PSI replica.
fn compile_long_fork(
    app: &IrApp,
    may: &ProgramSet,
    s: &DangerousStructure,
) -> Result<CompiledWitness, String> {
    let nodes = match s {
        DangerousStructure::SeparatedAntiDependencyCycle { nodes } => nodes.clone(),
        DangerousStructure::AdjacentAntiDependencies { .. } => {
            return Err("SI005 expects a separated anti-dependency cycle".to_owned());
        }
    };
    let n = nodes.len();
    if n < 2 {
        return Err("the witness cycle has fewer than two transactions".to_owned());
    }
    let graph = StaticDepGraph::from_programs(may);
    let program_count = may.program_count();
    // An edge is a segment cut when it is *only* an anti-dependency:
    // a WR/WW reading realises on one replica, so dependency edges keep
    // their endpoints in one segment.
    let is_cut: Vec<bool> = (0..n)
        .map(|i| {
            let (u, v) = (nodes[i], nodes[(i + 1) % n]);
            graph.rw().contains(u, v) && !graph.wr().contains(u, v) && !graph.ww().contains(u, v)
        })
        .collect();
    let cuts = is_cut.iter().filter(|&&c| c).count();
    if cuts < 2 {
        // A long fork needs at least two independent branches.
        return Err("fewer than two pure anti-dependency edges in the cycle".to_owned());
    }
    // Rotate so a segment starts right after the last cut edge.
    let start = (0..n)
        .find(|&i| is_cut[(i + n - 1) % n])
        .ok_or_else(|| "no cut edge to rotate the cycle to".to_owned())?;
    let mut segments: Vec<Vec<TxId>> = vec![Vec::new()];
    for k in 0..n {
        let i = (start + k) % n;
        segments.last_mut().unwrap().push(nodes[i]);
        if is_cut[i] && k + 1 < n {
            segments.push(Vec::new());
        }
    }

    // Realisability: two transactions in *different* fork branches that
    // both write one object cannot commit concurrently — PSI keeps
    // first-committer-wins, so the branches end up causally ordered and
    // the fork collapses. Theorem 22's syntactic criterion only inspects
    // the cycle's own edges, so it can flag such cycles; they are sound
    // warnings but not operationally reproducible, and the confirmation
    // layer must say so instead of reporting a contradiction.
    let whole = may.unchopped();
    for (i, seg_a) in segments.iter().enumerate() {
        for seg_b in segments.iter().skip(i + 1) {
            for &u in seg_a {
                for &v in seg_b {
                    let (uu, vv) = (
                        PieceId { program: ProgramId(u.index()), piece: 0 },
                        PieceId { program: ProgramId(v.index()), piece: 0 },
                    );
                    if let Some(o) = conflict_object(&whole, uu, vv, ConflictKind::Ww) {
                        let pu = vertex_program(u, program_count);
                        let pv = vertex_program(v, program_count);
                        return Err(format!(
                            "{} and {} sit in different fork branches but both write {}: \
                             PSI's write-conflict detection orders the branches causally, \
                             so this long fork is not operationally realisable",
                            app.program_name(pu),
                            app.program_name(pv),
                            may.object_name(o).unwrap_or("?"),
                        ));
                    }
                }
            }
        }
    }

    // Conflict objects over every cycle edge bind the parameters.
    let edges: Vec<(TxId, TxId)> = (0..n).map(|i| (nodes[i], nodes[(i + 1) % n])).collect();
    let conflicts = structure_conflicts(&whole, &edges);
    let bind = binding_from_conflicts(app, &conflicts);

    let mut counter = 0u64;
    let mut sessions = Vec::new();
    let mut workload = Workload::new(may.object_count());
    let mut decisions = Vec::new();
    for (i, seg) in segments.iter().enumerate() {
        let mut scripts = Vec::new();
        let mut names = Vec::new();
        for &v in seg {
            let p = vertex_program(v, program_count);
            names.push(app.program_name(p).to_owned());
            scripts.push(assemble(&program_plan(app, p, &bind), &mut counter));
        }
        if scripts.iter().any(Script::is_empty) {
            return Err("a witness program has no concrete accesses".to_owned());
        }
        for s in &scripts {
            decisions.extend(std::iter::repeat_n(Actor::Session(i), steps_for(s)));
        }
        sessions.push(names.join(" → "));
        workload = workload.session(scripts);
    }

    Ok(CompiledWitness {
        code: DiagCode::Si005,
        advisory: ReplayScript::new(
            EngineSpec::Psi { replicas: segments.len() },
            &workload,
            4,
            decisions,
        ),
        check: WitnessCheck::HistoryRefutedAt(ClaimLevel::Si),
        sessions,
        conflict_objects: named(&conflicts, may),
        object_names: object_names(may),
    })
}

/// SI002/SI003/SI004: serial piece realisation of a critical chopping
/// cycle, judged on the spliced history.
fn compile_chop(
    app: &IrApp,
    may: &ProgramSet,
    code: DiagCode,
    report: &si_chopping::ChoppingReport,
) -> Result<CompiledWitness, String> {
    let cycle =
        report.witness.as_ref().ok_or_else(|| "chopping report has no witness cycle".to_owned())?;
    // Programs on the cycle, in ProgramId order (session order).
    let mut involved: Vec<ProgramId> = cycle
        .nodes
        .iter()
        .map(|&v| report.nodes.piece(v).program)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    involved.sort();
    let session_of = |p: ProgramId| involved.iter().position(|&q| q == p).expect("on cycle");

    // Constraint edges: the cycle's conflict steps (piece u strictly
    // before piece v — serial realisation produces WR/WW/RW alike) plus
    // implicit program order. Reverse program-order (Predecessor) steps
    // close the cycle on paper and impose nothing at run time.
    let mut conflicts_obj = Vec::new();
    let mut before: Vec<(PieceId, PieceId)> = Vec::new();
    for (i, label) in cycle.labels.iter().enumerate() {
        let u = report.nodes.piece(cycle.nodes[i]);
        let v = report.nodes.piece(cycle.nodes[(i + 1) % cycle.nodes.len()]);
        if let ChopEdge::Conflict(kind) = label {
            before.push((u, v));
            if let Some(o) = conflict_object(may, u, v, *kind) {
                conflicts_obj.push(o);
            }
        }
    }
    let bind = binding_from_conflicts(app, &conflicts_obj);

    // Units: every piece of every involved program.
    let units: Vec<PieceId> = involved
        .iter()
        .flat_map(|&p| (0..may.pieces_of(p)).map(move |k| PieceId { program: p, piece: k }))
        .collect();
    let unit_index =
        |pc: PieceId| units.iter().position(|&u| u == pc).expect("unit of involved program");

    // Kahn's algorithm over program order + conflict edges, smallest
    // unit index first — deterministic, and a leftover means the
    // constraint graph is cyclic (not serially realisable).
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); units.len()];
    let mut indeg = vec![0usize; units.len()];
    let add_edge = |from: usize, to: usize, succ: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>| {
        if !succ[from].contains(&to) {
            succ[from].push(to);
            indeg[to] += 1;
        }
    };
    for (i, u) in units.iter().enumerate() {
        if u.piece + 1 < may.pieces_of(u.program) {
            let next = unit_index(PieceId { program: u.program, piece: u.piece + 1 });
            add_edge(i, next, &mut succ, &mut indeg);
        }
    }
    for &(u, v) in &before {
        add_edge(unit_index(u), unit_index(v), &mut succ, &mut indeg);
    }
    let mut order = Vec::with_capacity(units.len());
    let mut ready: BTreeSet<usize> = (0..units.len()).filter(|&i| indeg[i] == 0).collect();
    while let Some(&i) = ready.iter().next() {
        ready.remove(&i);
        order.push(i);
        for &j in &succ[i] {
            indeg[j] -= 1;
            if indeg[j] == 0 {
                ready.insert(j);
            }
        }
    }
    if order.len() != units.len() {
        // Constraint cycle: not realisable by serial pieces.
        return Err("the chopping constraint graph admits no serial schedule".to_owned());
    }

    // One session per program, scripts = its pieces in order; empty
    // pieces would desynchronise Workload's script numbering.
    let mut counter = 0u64;
    let mut piece_scripts: BTreeMap<PieceId, Script> = BTreeMap::new();
    for &u in &units {
        let prog = IrProgramId(u.program.0);
        let script = assemble(&piece_plan(app, prog, u.piece, &bind), &mut counter);
        if script.is_empty() {
            return Err("a witness piece has no concrete accesses".to_owned());
        }
        piece_scripts.insert(u, script);
    }
    let mut workload = Workload::new(may.object_count());
    let mut sessions = Vec::new();
    for &p in &involved {
        let scripts: Vec<Script> = (0..may.pieces_of(p))
            .map(|k| piece_scripts[&PieceId { program: p, piece: k }].clone())
            .collect();
        sessions.push(format!("{}[{} pieces]", may.program_name(p), scripts.len()));
        workload = workload.session(scripts);
    }
    let mut decisions = Vec::new();
    for &i in &order {
        let u = units[i];
        let s = &piece_scripts[&u];
        decisions.extend(std::iter::repeat_n(Actor::Session(session_of(u.program)), steps_for(s)));
    }

    let (engine, check) = match code {
        DiagCode::Si002 => (EngineSpec::Si, WitnessCheck::SpliceRefutedAt(ClaimLevel::Si)),
        DiagCode::Si003 => (EngineSpec::Ser, WitnessCheck::SpliceRefutedAt(ClaimLevel::Ser)),
        DiagCode::Si004 => (EngineSpec::Si, WitnessCheck::SpliceRefutedAt(ClaimLevel::Si)),
        other => return Err(format!("no chopping witness compiler for {}", other.as_str())),
    };
    Ok(CompiledWitness {
        code,
        advisory: ReplayScript::new(engine, &workload, 4, decisions),
        check,
        sessions,
        conflict_objects: named(&conflicts_obj, may),
        object_names: object_names(may),
    })
}

/// A whole-program script with parameters bound to element 0 — the
/// maximally-conflicting instantiation robust-verdict stress runs use.
pub(crate) fn default_program_script(app: &IrApp, p: IrProgramId, counter: &mut u64) -> Script {
    assemble(&program_plan(app, p, &BTreeMap::new()), counter)
}

/// One piece's script under the element-0 binding (chopped stress runs).
pub(crate) fn default_piece_script(
    app: &IrApp,
    p: IrProgramId,
    piece: usize,
    counter: &mut u64,
) -> Script {
    assemble(&piece_plan(app, p, piece, &BTreeMap::new()), counter)
}

fn named(objs: &[Obj], may: &ProgramSet) -> Vec<String> {
    let mut out: Vec<String> =
        objs.iter().filter_map(|&o| may.object_name(o).map(str::to_owned)).collect();
    out.dedup();
    out
}
