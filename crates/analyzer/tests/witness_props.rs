//! Property tests for witness compilation.
//!
//! Two guarantees the confirmation layer leans on:
//!
//! 1. **Coverage** — every conflict object a diagnostic names is
//!    actually touched by the compiled witness's scripts: the
//!    parameterised-access binding step can't drop the very object the
//!    dangerous edge races on.
//! 2. **Determinism** — compiling the same diagnostic twice yields
//!    byte-identical replay advisories. The confirmation matrix is
//!    golden-tested in CI, so any nondeterminism (iteration order,
//!    fresh-value counters, schedule synthesis) would surface as flaky
//!    diffs.

use proptest::prelude::*;
use si_chopping::ProgramSet;
use si_lint::{
    compile_witness, lint_program_set_full, CompiledWitness, IrApp, LintOptions, SessionLevel,
};

const OBJECTS: usize = 4;

/// A random application: 1–4 single-piece programs over 4 objects, with
/// read and write sets drawn as bitmasks. Write-only and read-only
/// programs, write skews, long forks and robust mixes all occur.
fn arb_program_set() -> impl Strategy<Value = ProgramSet> {
    proptest::collection::vec((0u8..16, 0u8..16), 1..5).prop_map(|specs| {
        let mut ps = ProgramSet::new();
        let objs: Vec<_> = (0..OBJECTS).map(|i| ps.object(&format!("o{i}"))).collect();
        for (i, (reads, writes)) in specs.into_iter().enumerate() {
            let p = ps.add_program(&format!("p{i}"));
            let pick = |mask: u8| {
                objs.iter().enumerate().filter(move |(j, _)| mask & (1 << j) != 0).map(|(_, &o)| o)
            };
            ps.add_piece(p, "body", pick(reads), pick(writes));
        }
        ps
    })
}

/// Every witness the linter can emit for `ps`, compiled.
fn compiled_witnesses(ps: &ProgramSet) -> Vec<CompiledWitness> {
    let app = IrApp::from_program_set(ps);
    let outcome = lint_program_set_full("prop", ps, &LintOptions::default());
    let levels = vec![SessionLevel::Si; ps.program_count()];
    outcome
        .report
        .diagnostics
        .iter()
        .zip(&outcome.raws)
        .filter_map(|(diag, raw)| compile_witness(&app, ps, &levels, diag.code, raw.as_ref()?).ok())
        .collect()
}

proptest! {
    /// Conflict objects named by the diagnostic are covered by the
    /// compiled scripts' read/write sets.
    #[test]
    fn witness_scripts_cover_the_conflict_objects(ps in arb_program_set()) {
        for cw in compiled_witnesses(&ps) {
            let workload = cw.advisory.workload.to_workload();
            let mut touched: Vec<String> = Vec::new();
            for scripts in workload.session_scripts() {
                for script in scripts {
                    for o in script.read_set().into_iter().chain(script.write_set()) {
                        touched.push(cw.object_names[o.index()].clone());
                    }
                }
            }
            for name in &cw.conflict_objects {
                prop_assert!(
                    touched.contains(name),
                    "{}: conflict object {name} not touched by any witness script",
                    cw.code.as_str()
                );
            }
        }
    }

    /// Witness compilation is a pure function: same diagnostic, same
    /// bytes — advisory (engine + workload + decisions), check and
    /// session labels alike.
    #[test]
    fn witness_compilation_is_deterministic(ps in arb_program_set()) {
        let a = compiled_witnesses(&ps);
        let b = compiled_witnesses(&ps);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.code, y.code);
            prop_assert_eq!(x.advisory.to_json(), y.advisory.to_json());
            prop_assert_eq!(x.check, y.check);
            prop_assert_eq!(&x.sessions, &y.sessions);
            prop_assert_eq!(&x.conflict_objects, &y.conflict_objects);
        }
    }

    /// The IR round-trip behind witness compilation is exact: lowering
    /// `IrApp::from_program_set(ps)` back through `approximate` yields
    /// the original may-sets, so set-declared and IR targets compile
    /// identical witnesses.
    #[test]
    fn from_program_set_round_trips_the_may_sets(ps in arb_program_set()) {
        let lowered = IrApp::from_program_set(&ps).approximate();
        prop_assert_eq!(lowered.may.program_count(), ps.program_count());
        for p in ps.programs() {
            prop_assert_eq!(lowered.may.pieces_of(p), ps.pieces_of(p));
            for k in 0..ps.pieces_of(p) {
                let id = si_chopping::PieceId { program: p, piece: k };
                prop_assert_eq!(lowered.may.reads(id), ps.reads(id));
                prop_assert_eq!(lowered.may.writes(id), ps.writes(id));
            }
        }
    }
}
