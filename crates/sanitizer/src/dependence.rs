//! The independence relation driving sleep-set pruning.
//!
//! Two enabled steps are *independent* when executing them in either
//! order from any state reaches the same state (Godefroid's classical
//! definition). The explorer only needs a sound under-approximation:
//! declaring a dependent pair independent would unsoundly prune real
//! interleavings, while the converse merely costs exploration time. The
//! matrix below is therefore conservative about everything that touches
//! the commit counter or the version store's committed tail:
//!
//! * steps of the **same actor** are always dependent (program order);
//! * `Begin` vs `Commit`/`Background` — a begin reads the commit counter
//!   (or replica state) that a commit/replication step advances;
//! * `Commit` vs `Commit` — both bump the counter, and either may change
//!   the other's validation outcome;
//! * `Read(x)` vs `Commit` — dependent iff the commit installs `x`;
//! * `Write(x)` vs `Commit` — only surfaced for SSI, whose commit-time
//!   validation reads other in-flight write *and read* buffers, so it is
//!   dependent iff the committer read or wrote `x`;
//! * `Commit`/`Background` vs `Background` — replication consumes commits
//!   and mutates replica state.
//!
//! Everything else commutes: two reads never conflict, buffered writes of
//! non-SSI engines are private (they never surface as steps at all), and
//! a `Begin` commutes with reads and with other begins because snapshot
//! acquisition only *reads* the counter.

use crate::runner::{EnabledStep, StepSummary};

/// Whether two enabled steps must be explored in both orders.
pub fn dependent(a: &EnabledStep, b: &EnabledStep) -> bool {
    if a.actor == b.actor {
        return true;
    }
    use StepSummary::{Background, Begin, Commit, Read, Write};
    match (&a.summary, &b.summary) {
        (Commit { .. }, Commit { .. }) => true,
        (Begin, Commit { .. }) | (Commit { .. }, Begin) => true,
        (Begin, Background) | (Background, Begin) => true,
        (Commit { .. }, Background) | (Background, Commit { .. }) => true,
        (Background, Background) => true, // distinct actors can't both be Background
        (Read(x), Commit { writes, .. }) | (Commit { writes, .. }, Read(x)) => writes.contains(x),
        (Write(x), Commit { reads, writes }) | (Commit { reads, writes }, Write(x)) => {
            reads.contains(x) || writes.contains(x)
        }
        (Begin, Begin | Read(_) | Write(_)) | (Read(_) | Write(_), Begin) => false,
        (Read(_) | Write(_), Read(_) | Write(_)) => false,
        (Read(_) | Write(_), Background) | (Background, Read(_) | Write(_)) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Actor;
    use si_model::Obj;

    fn step(actor: Actor, summary: StepSummary) -> EnabledStep {
        EnabledStep { actor, summary }
    }

    #[test]
    fn same_actor_is_always_dependent() {
        let a = step(Actor::Session(0), StepSummary::Read(Obj(0)));
        let b = step(Actor::Session(0), StepSummary::Read(Obj(1)));
        assert!(dependent(&a, &b));
    }

    #[test]
    fn reads_commute_with_disjoint_commits() {
        let read = step(Actor::Session(0), StepSummary::Read(Obj(0)));
        let commit = step(
            Actor::Session(1),
            StepSummary::Commit { reads: vec![Obj(0)], writes: vec![Obj(1)] },
        );
        assert!(!dependent(&read, &commit));
        let clashing =
            step(Actor::Session(1), StepSummary::Commit { reads: vec![], writes: vec![Obj(0)] });
        assert!(dependent(&read, &clashing));
    }

    #[test]
    fn commits_conflict_with_commits_and_begins() {
        let c1 = step(Actor::Session(0), StepSummary::Commit { reads: vec![], writes: vec![] });
        let c2 = step(Actor::Session(1), StepSummary::Commit { reads: vec![], writes: vec![] });
        let begin = step(Actor::Session(2), StepSummary::Begin);
        assert!(dependent(&c1, &c2));
        assert!(dependent(&c1, &begin));
    }

    #[test]
    fn ssi_write_depends_on_reader_commit() {
        let write = step(Actor::Session(0), StepSummary::Write(Obj(3)));
        let reader_commit =
            step(Actor::Session(1), StepSummary::Commit { reads: vec![Obj(3)], writes: vec![] });
        let disjoint_commit = step(
            Actor::Session(1),
            StepSummary::Commit { reads: vec![Obj(4)], writes: vec![Obj(5)] },
        );
        assert!(dependent(&write, &reader_commit));
        assert!(!dependent(&write, &disjoint_commit));
    }

    #[test]
    fn reads_commute_with_reads_and_background() {
        let r1 = step(Actor::Session(0), StepSummary::Read(Obj(0)));
        let r2 = step(Actor::Session(1), StepSummary::Read(Obj(0)));
        let bg = step(Actor::Background, StepSummary::Background);
        assert!(!dependent(&r1, &r2));
        assert!(!dependent(&r1, &bg));
        let begin = step(Actor::Session(2), StepSummary::Begin);
        assert!(dependent(&begin, &bg));
    }
}
