//! Delta-debugging schedule minimisation.
//!
//! A failing interleaving found by the explorer can easily be dozens of
//! decisions long; almost all of them are irrelevant. [`minimize`] runs
//! classical ddmin (Zeller & Hildebrandt) over the *decision trace*:
//! candidate sublists are replayed through
//! [`run_advisory`](crate::run_advisory), whose repair rule (skip
//! decisions whose actor is not enabled, then finish with the first
//! enabled actor) makes every sublist a valid complete schedule — the
//! shrinker never has to reason about enabledness itself.
//!
//! The predicate is "the oracle stack still rejects the run", so the
//! minimised trace provably reproduces *a* failure (typically the same
//! one; the final [`ReplayScript`](crate::ReplayScript) stores the fully
//! repaired trace of the minimised run, making replays byte-identical).

use crate::runner::{run_advisory, Actor, RunArtifacts};
use crate::spec::EngineSpec;
use si_mvcc::Workload;

/// The outcome of a minimisation.
#[derive(Debug)]
pub struct Shrunk {
    /// The minimal failing decision list (advisory form).
    pub decisions: Vec<Actor>,
    /// Artifacts of the minimal run.
    pub artifacts: RunArtifacts,
    /// How many candidate replays the search spent.
    pub steps: u64,
}

/// ddmin over `decisions`, preserving `fails(replay(candidate))`.
///
/// `decisions` itself must fail (callers pass the trace of a failing
/// run); the result is 1-minimal with respect to chunk removal.
pub fn minimize(
    spec: &EngineSpec,
    workload: &Workload,
    max_retries: u32,
    decisions: &[Actor],
    fails: impl Fn(&RunArtifacts) -> bool,
) -> Shrunk {
    let mut steps = 0u64;
    let mut current: Vec<Actor> = decisions.to_vec();
    let mut artifacts = run_advisory(spec, workload, max_retries, &current);
    debug_assert!(fails(&artifacts), "minimize called with a passing trace");

    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            // Try deleting current[start..end].
            let candidate: Vec<Actor> =
                current[..start].iter().chain(&current[end..]).copied().collect();
            steps += 1;
            let run = run_advisory(spec, workload, max_retries, &candidate);
            if fails(&run) {
                current = candidate;
                artifacts = run;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                // Restart the sweep at the same position (the list
                // shifted left under us).
            } else {
                start = end;
            }
        }
        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }

    // Final polish: drop single decisions until 1-minimal.
    let mut i = 0;
    while i < current.len() {
        let mut candidate = current.clone();
        candidate.remove(i);
        steps += 1;
        let run = run_advisory(spec, workload, max_retries, &candidate);
        if fails(&run) {
            current = candidate;
            artifacts = run;
        } else {
            i += 1;
        }
    }

    Shrunk { decisions: current, artifacts, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::check_artifacts;
    use si_model::Obj;
    use si_mvcc::Script;

    #[test]
    fn shrinks_lost_update_schedule_to_its_core() {
        let x = Obj(0);
        let inc = Script::new().read(x).write_computed(x, [0], 1);
        let w = Workload::new(1).session([inc.clone()]).session([inc]);
        let spec = EngineSpec::MutantDropFcw;
        // A deliberately padded failing schedule.
        let bloated = vec![
            Actor::Session(0),
            Actor::Session(0), // reads under the empty snapshot
            Actor::Session(1),
            Actor::Session(1), // ditto
            Actor::Session(0),
            Actor::Session(0),
            Actor::Session(1),
            Actor::Session(1),
            Actor::Session(0),
            Actor::Session(1),
        ];
        let fails = |a: &RunArtifacts| !check_artifacts(&spec, a).is_empty();
        let full = run_advisory(&spec, &w, 4, &bloated);
        assert!(fails(&full));
        let shrunk = minimize(&spec, &w, 4, &bloated, fails);
        assert!(fails(&shrunk.artifacts));
        // The essence is "session 1 begins before session 0 commits"; the
        // advisory repair supplies everything else, so very few explicit
        // decisions remain.
        assert!(
            shrunk.decisions.len() <= 3,
            "expected a near-empty advisory trace, got {:?}",
            shrunk.decisions
        );
        assert!(shrunk.steps > 0);
    }

    #[test]
    fn replaying_minimized_trace_is_deterministic() {
        let x = Obj(0);
        let inc = Script::new().read(x).write_computed(x, [0], 1);
        let w = Workload::new(1).session([inc.clone()]).session([inc]);
        let spec = EngineSpec::MutantDropFcw;
        let fails = |a: &RunArtifacts| !check_artifacts(&spec, a).is_empty();
        let seed = vec![Actor::Session(0), Actor::Session(1), Actor::Session(0), Actor::Session(1)];
        let shrunk = minimize(&spec, &w, 4, &seed, fails);
        let again = run_advisory(&spec, &w, 4, &shrunk.decisions);
        assert_eq!(again.result.history, shrunk.artifacts.result.history);
        assert_eq!(again.events, shrunk.artifacts.events);
        assert_eq!(again.decisions, shrunk.artifacts.decisions);
    }
}
