//! # si-sanitizer — hunting interleaving bugs in the MVCC engines
//!
//! A loom-style controlled-scheduler harness for the `si-mvcc` engines.
//! Where the repo's other checkers judge histories *after the fact*,
//! the sanitizer owns the schedule: it runs a workload against a live
//! engine under a deterministic virtual scheduler, systematically
//! enumerates every distinguishable interleaving (sleep-set DFS, with a
//! seeded random-walk fallback for big trees), and holds each completed
//! run to a four-layer differential oracle:
//!
//! 1. the engine's declarative axioms (Definition 4 instantiations),
//!    over the ground-truth execution the engine itself reported;
//! 2. dependency-graph membership (Theorems 8/9/21) via
//!    [`si_depgraph::extract`];
//! 3. the incremental [`SiMonitor`](si_core::SiMonitor), replaying the
//!    history as an online observation stream;
//! 4. a vector-clock happens-before race detector over the engine's
//!    internal shared-state accesses (probe events).
//!
//! Failures are shrunk with delta debugging to a minimal schedule and
//! packaged as JSON [`ReplayScript`]s that reproduce byte-identically.
//! Seeded mutants ([`MutantSiEngine`]) prove the harness has teeth.
//!
//! ```
//! use si_sanitizer::{sanitize, scripts, EngineSpec, SanitizeConfig};
//!
//! // Certify SI over every interleaving of the lost-update workload…
//! let report = sanitize(&EngineSpec::Si, &scripts::lost_update(), &SanitizeConfig::default());
//! assert!(report.is_clean());
//!
//! // …and catch the seeded mutant that drops first-committer-wins.
//! let report =
//!     sanitize(&EngineSpec::MutantDropFcw, &scripts::lost_update(), &SanitizeConfig::default());
//! assert!(!report.is_clean());
//! let repro = &report.failures[0].replay; // minimised, serialisable, deterministic
//! assert!(!repro.decisions.is_empty());
//! ```

#![warn(missing_docs)]

mod dependence;
mod explorer;
mod mutant;
mod oracle;
mod replay;
mod runner;
pub mod scripts;
mod shrink;
mod spec;
mod vclock;

pub use dependence::dependent;
pub use explorer::{
    explore_judged, sanitize, ExploreMode, FailureCase, JudgedExploration, SanitizeConfig,
    SanitizeReport,
};
pub use mutant::{MutantSiEngine, Mutation};
pub use oracle::{check_artifacts, Failure};
pub use replay::ReplayScript;
pub use runner::{
    run_advisory, Actor, EnabledStep, RunArtifacts, RunCounters, Runner, StepSummary,
};
pub use shrink::{minimize, Shrunk};
pub use spec::{EngineSpec, Expectation, InitialSpec, OpSpec, WorkloadSpec};
pub use vclock::{detect_races, RaceKind, RaceReport, VClock};
