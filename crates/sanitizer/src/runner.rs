//! The controlled deterministic runner: one interleaving, one run.
//!
//! The engines are deterministic single-threaded state machines, so an
//! "interleaving" is fully determined by the sequence of *scheduling
//! decisions*: which actor (client session or the engine's background
//! machinery) takes the next step. The [`Runner`] executes a workload one
//! decision at a time, exposing at each point the set of enabled steps
//! with enough of a summary ([`StepSummary`]) for the explorer's
//! independence relation, and recording the run exactly like the random
//! [`Scheduler`](si_mvcc::Scheduler) does — through a
//! [`Recorder`](si_mvcc::Recorder) plus the engine's probe-event trace.
//!
//! # Yield points
//!
//! Not every script operation is a scheduling decision. A step is a
//! *yield point* only if some other actor could observe it or be observed
//! by it:
//!
//! * `begin` — reads the commit counter / replica state;
//! * an **external** read — observes the shared version store (a read
//!   that hits the transaction's own write buffer is private and runs
//!   eagerly);
//! * a buffered write — private for SI/SER/PSI and executed eagerly;
//!   a yield point for SSI, whose commit-time validation inspects other
//!   *in-flight* transactions' buffers ([`EngineSpec::writes_are_local`]);
//! * `commit` — validates against and mutates the shared store;
//! * one background step (PSI replication).
//!
//! Guards (`EndIfSumBelow`) are pure register arithmetic and always run
//! eagerly. Collapsing private steps this way shrinks the exploration
//! tree without losing any observable interleaving.

use std::collections::BTreeSet;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use si_model::{Obj, Op, Value};
use si_mvcc::{
    CommittedTx, Engine, EngineProbe, ProbeEvent, Recorder, RunResult, Script, ScriptOp, TxToken,
    VecProbe, Workload,
};

use crate::spec::EngineSpec;

/// Who takes the next step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Actor {
    /// A client session (by index).
    Session(usize),
    /// The engine's background machinery (PSI replication).
    Background,
}

/// What an actor's next step would do to shared state — the vocabulary of
/// the explorer's independence relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepSummary {
    /// Acquire a snapshot.
    Begin,
    /// Externally read one object.
    Read(Obj),
    /// Buffer a write observable by other in-flight validation (SSI
    /// only — private writes never surface as steps).
    Write(Obj),
    /// Attempt to commit, validating/installing the listed sets.
    Commit {
        /// Objects externally read by the attempt so far.
        reads: Vec<Obj>,
        /// Objects buffered for writing.
        writes: Vec<Obj>,
    },
    /// One engine background step.
    Background,
}

/// An enabled transition: `actor`'s next step, summarised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnabledStep {
    /// Who would move.
    pub actor: Actor,
    /// What the move does.
    pub summary: StepSummary,
}

#[derive(Debug)]
struct InFlight {
    token: TxToken,
    pc: usize,
    registers: Vec<Value>,
    ops: Vec<Op>,
    written: BTreeSet<Obj>,
    external_reads: Vec<Obj>,
}

#[derive(Debug)]
struct SessionState {
    scripts: Vec<Script>,
    next_script: usize,
    inflight: Option<InFlight>,
    retries: u32,
}

/// Aggregate counters of one controlled run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCounters {
    /// Transactions that committed.
    pub committed: u64,
    /// Commit attempts refused by conflict detection.
    pub aborted: u64,
    /// Scripts abandoned after exhausting their retries.
    pub gave_up: u64,
    /// Background steps taken.
    pub background_steps: u64,
}

/// Everything a completed run leaves behind for the oracles.
#[derive(Debug)]
pub struct RunArtifacts {
    /// The recorded history and ground-truth execution.
    pub result: RunResult,
    /// The engine's internal shared-state access trace.
    pub events: Vec<ProbeEvent>,
    /// Aggregate counters.
    pub counters: RunCounters,
    /// The decisions actually taken, in order.
    pub decisions: Vec<Actor>,
}

/// Executes one workload against one engine under explicit scheduling
/// control.
pub struct Runner {
    engine: Box<dyn Engine>,
    probe: Arc<VecProbe>,
    sessions: Vec<SessionState>,
    recorder: Recorder,
    counters: RunCounters,
    decisions: Vec<Actor>,
    initial_values: Vec<Value>,
    writes_are_local: bool,
    max_retries: u32,
}

impl std::fmt::Debug for Runner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("engine", &self.engine.name())
            .field("decisions", &self.decisions.len())
            .finish_non_exhaustive()
    }
}

impl Runner {
    /// Builds a fresh engine from `spec` and prepares the workload.
    ///
    /// # Panics
    ///
    /// Panics if the workload references objects outside the engine's
    /// universe.
    pub fn new(spec: &EngineSpec, workload: &Workload, max_retries: u32) -> Self {
        let mut engine = spec.build(workload.object_count());
        let probe = Arc::new(VecProbe::new());
        engine.set_probe(EngineProbe::new(probe.clone()));
        for &(obj, v) in workload.initial_values() {
            engine.set_initial(obj, Value(v));
        }
        let initial_values: Vec<Value> =
            (0..engine.object_count()).map(|i| engine.initial(Obj::from_index(i))).collect();
        let sessions = workload
            .session_scripts()
            .map(|scripts| SessionState {
                scripts: scripts.to_vec(),
                next_script: 0,
                inflight: None,
                retries: 0,
            })
            .collect();
        Runner {
            engine,
            probe,
            sessions,
            recorder: Recorder::new(),
            counters: RunCounters::default(),
            decisions: Vec::new(),
            initial_values,
            writes_are_local: spec.writes_are_local(),
            max_retries,
        }
    }

    /// The enabled transitions at the current state, in a deterministic
    /// order (sessions ascending, then background).
    pub fn enabled(&self) -> Vec<EnabledStep> {
        let mut out = Vec::new();
        for (i, s) in self.sessions.iter().enumerate() {
            if s.next_script >= s.scripts.len() {
                continue;
            }
            let summary = match &s.inflight {
                None => StepSummary::Begin,
                Some(tx) => {
                    let script = &s.scripts[s.next_script];
                    if tx.pc < script.ops().len() {
                        match &script.ops()[tx.pc] {
                            ScriptOp::Read(x) => StepSummary::Read(*x),
                            ScriptOp::WriteConst(x, _) | ScriptOp::WriteComputed { obj: x, .. } => {
                                StepSummary::Write(*x)
                            }
                            ScriptOp::EndIfSumBelow { .. } => {
                                unreachable!("guards run eagerly, never pending at a yield point")
                            }
                        }
                    } else {
                        StepSummary::Commit {
                            reads: tx.external_reads.clone(),
                            writes: tx.written.iter().copied().collect(),
                        }
                    }
                }
            };
            out.push(EnabledStep { actor: Actor::Session(i), summary });
        }
        if self.engine.background_pending() {
            out.push(EnabledStep { actor: Actor::Background, summary: StepSummary::Background });
        }
        out
    }

    /// Whether the run is over (no actor can move).
    pub fn is_complete(&self) -> bool {
        self.enabled().is_empty()
    }

    /// Whether `actor` currently has an enabled step.
    pub fn is_enabled(&self, actor: Actor) -> bool {
        match actor {
            Actor::Session(i) => {
                self.sessions.get(i).is_some_and(|s| s.next_script < s.scripts.len())
            }
            Actor::Background => self.engine.background_pending(),
        }
    }

    /// Executes `actor`'s next step (plus any following private steps).
    ///
    /// # Panics
    ///
    /// Panics if the actor has no enabled step.
    pub fn step(&mut self, actor: Actor) {
        assert!(self.is_enabled(actor), "stepping a disabled actor: {actor:?}");
        self.decisions.push(actor);
        match actor {
            Actor::Background => {
                let did = self.engine.background_step();
                debug_assert!(did, "background was pending but did nothing");
                self.counters.background_steps += 1;
            }
            Actor::Session(i) => self.step_session(i),
        }
    }

    fn step_session(&mut self, i: usize) {
        let state = &mut self.sessions[i];
        let script = state.scripts[state.next_script].clone();
        match &mut state.inflight {
            None => {
                let token = self.engine.begin(i);
                state.inflight = Some(InFlight {
                    token,
                    pc: 0,
                    registers: Vec::new(),
                    ops: Vec::new(),
                    written: BTreeSet::new(),
                    external_reads: Vec::new(),
                });
                self.run_private_ops(i, &script);
            }
            Some(tx) if tx.pc < script.ops().len() => {
                // The pending op is a yield point by construction.
                let pc = tx.pc;
                tx.pc = Self::execute_op(self.engine.as_mut(), tx, &script, pc);
                self.run_private_ops(i, &script);
            }
            Some(_) => self.finish_script(i),
        }
    }

    /// Executes private (unobservable) steps eagerly until the next yield
    /// point: guards always, buffered writes when the engine cannot leak
    /// them, reads that hit the own-write buffer.
    fn run_private_ops(&mut self, i: usize, script: &Script) {
        let tx = self.sessions[i].inflight.as_mut().expect("in-flight");
        while tx.pc < script.ops().len() {
            let private = match &script.ops()[tx.pc] {
                ScriptOp::EndIfSumBelow { .. } => true,
                ScriptOp::WriteConst(..) | ScriptOp::WriteComputed { .. } => self.writes_are_local,
                ScriptOp::Read(x) => tx.written.contains(x),
            };
            if !private {
                return;
            }
            let pc = tx.pc;
            tx.pc = Self::execute_op(self.engine.as_mut(), tx, script, pc);
        }
    }

    /// Executes one op and returns the next program counter (guards may
    /// jump straight to the end of the script).
    fn execute_op(engine: &mut dyn Engine, tx: &mut InFlight, script: &Script, pc: usize) -> usize {
        match &script.ops()[pc] {
            ScriptOp::Read(x) => {
                let external = !tx.written.contains(x);
                let v = engine.read(tx.token, *x);
                tx.registers.push(v);
                tx.ops.push(Op::Read(*x, v));
                if external && !tx.external_reads.contains(x) {
                    tx.external_reads.push(*x);
                }
                pc + 1
            }
            ScriptOp::WriteConst(x, value) => {
                engine.write(tx.token, *x, Value(*value));
                tx.ops.push(Op::Write(*x, Value(*value)));
                tx.written.insert(*x);
                pc + 1
            }
            ScriptOp::WriteComputed { obj, regs, delta } => {
                let v = compute(regs, *delta, &tx.registers);
                engine.write(tx.token, *obj, v);
                tx.ops.push(Op::Write(*obj, v));
                tx.written.insert(*obj);
                pc + 1
            }
            ScriptOp::EndIfSumBelow { regs, threshold } => {
                let sum: u64 = regs.iter().map(|&r| tx.registers[r].0).sum();
                if sum < *threshold {
                    script.ops().len() // commit early
                } else {
                    pc + 1
                }
            }
        }
    }

    fn finish_script(&mut self, i: usize) {
        let state = &mut self.sessions[i];
        let InFlight { token, ops, .. } = state.inflight.take().expect("in-flight");
        if ops.is_empty() {
            // Degenerate script (e.g. only a failed guard's read… which
            // would itself be an op; truly empty means no steps ran).
            self.engine.abort(token);
            state.next_script += 1;
            state.retries = 0;
            return;
        }
        match self.engine.commit(token) {
            Ok(info) => {
                self.counters.committed += 1;
                self.recorder.record(CommittedTx {
                    session: i,
                    ops,
                    seq: info.seq,
                    visible: info.visible,
                });
                state.next_script += 1;
                state.retries = 0;
            }
            Err(_) => {
                self.counters.aborted += 1;
                state.retries += 1;
                if state.retries > self.max_retries {
                    self.counters.gave_up += 1;
                    state.next_script += 1;
                    state.retries = 0;
                }
                // Otherwise the script is resubmitted from scratch on the
                // session's next turn.
            }
        }
    }

    /// Finalises the run into oracle-ready artifacts.
    ///
    /// # Panics
    ///
    /// Panics if the run is not complete.
    pub fn finish(self) -> RunArtifacts {
        assert!(self.is_complete(), "finishing an incomplete run");
        let session_count = self.sessions.len();
        let result = self.recorder.finish(&self.initial_values, session_count);
        RunArtifacts {
            result,
            events: self.probe.drain(),
            counters: self.counters,
            decisions: self.decisions,
        }
    }
}

/// `sum(regs) + delta`, saturating at zero — mirrors the scheduler's
/// script arithmetic exactly (replays must be bit-identical).
fn compute(regs: &[usize], delta: i64, registers: &[Value]) -> Value {
    let sum: u64 = regs.iter().map(|&r| registers[r].0).sum();
    let adjusted = if delta >= 0 {
        sum.saturating_add(delta as u64)
    } else {
        sum.saturating_sub(delta.unsigned_abs())
    };
    Value(adjusted)
}

/// Replays a decision list with *advisory repair*: decisions whose actor
/// is not enabled are skipped, and once the list is exhausted the first
/// enabled actor steps until the run completes. Every decision list —
/// including every sublist the shrinker proposes — therefore yields a
/// valid complete run. Returns the artifacts; `artifacts.decisions` is
/// the repaired, complete trace.
pub fn run_advisory(
    spec: &EngineSpec,
    workload: &Workload,
    max_retries: u32,
    decisions: &[Actor],
) -> RunArtifacts {
    let mut runner = Runner::new(spec, workload, max_retries);
    for &d in decisions {
        if runner.is_complete() {
            break;
        }
        if runner.is_enabled(d) {
            runner.step(d);
        }
    }
    while let Some(step) = runner.enabled().first().cloned() {
        runner.step(step.actor);
    }
    runner.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_execution::SpecModel;

    fn lost_update_workload() -> Workload {
        let x = Obj(0);
        let inc = Script::new().read(x).write_computed(x, [0], 1);
        Workload::new(1).session([inc.clone()]).session([inc])
    }

    #[test]
    fn sequential_schedule_commits_everything() {
        let w = lost_update_workload();
        let mut r = Runner::new(&EngineSpec::Si, &w, 4);
        // Session 0 start to finish, then session 1.
        for _ in 0..3 {
            r.step(Actor::Session(0));
        }
        for _ in 0..3 {
            r.step(Actor::Session(1));
        }
        assert!(r.is_complete());
        let a = r.finish();
        assert_eq!(a.counters.committed, 2);
        assert_eq!(a.counters.aborted, 0);
        assert!(SpecModel::Si.check(&a.result.execution).is_ok());
    }

    #[test]
    fn interleaved_schedule_aborts_and_retries() {
        let w = lost_update_workload();
        let mut r = Runner::new(&EngineSpec::Si, &w, 4);
        // Both read before either commits: the second committer must
        // abort and retry.
        r.step(Actor::Session(0)); // begin
        r.step(Actor::Session(1)); // begin
        r.step(Actor::Session(0)); // read (+ private write)
        r.step(Actor::Session(1)); // read (+ private write)
        r.step(Actor::Session(0)); // commit: ok
        r.step(Actor::Session(1)); // commit: ww-conflict, retry
        while !r.is_complete() {
            r.step(Actor::Session(1));
        }
        let a = r.finish();
        assert_eq!(a.counters.committed, 2);
        assert_eq!(a.counters.aborted, 1);
        assert!(SpecModel::Si.check(&a.result.execution).is_ok());
    }

    #[test]
    fn advisory_replay_is_deterministic() {
        let w = lost_update_workload();
        let decisions = [Actor::Session(0), Actor::Session(1), Actor::Session(0)];
        let a = run_advisory(&EngineSpec::Si, &w, 4, &decisions);
        let b = run_advisory(&EngineSpec::Si, &w, 4, &decisions);
        assert_eq!(a.result.history, b.result.history);
        assert_eq!(a.events, b.events);
        assert_eq!(a.decisions, b.decisions);
    }

    #[test]
    fn private_writes_do_not_yield_under_si() {
        let x = Obj(0);
        let w = Workload::new(1).session([Script::new().write_const(x, 1).read(x)]);
        let mut r = Runner::new(&EngineSpec::Si, &w, 4);
        r.step(Actor::Session(0)); // begin + private write + own-buffer read
                                   // Everything private ran eagerly: only the commit remains.
        let enabled = r.enabled();
        assert_eq!(enabled.len(), 1);
        assert!(matches!(enabled[0].summary, StepSummary::Commit { .. }));
    }

    #[test]
    fn ssi_writes_are_yield_points() {
        let x = Obj(0);
        let w = Workload::new(1).session([Script::new().write_const(x, 1)]);
        let r = {
            let mut r = Runner::new(&EngineSpec::Ssi, &w, 4);
            r.step(Actor::Session(0)); // begin only
            r
        };
        let enabled = r.enabled();
        assert_eq!(enabled.len(), 1);
        assert!(matches!(enabled[0].summary, StepSummary::Write(_)));
    }

    #[test]
    fn psi_background_becomes_enabled() {
        let x = Obj(0);
        let w = Workload::new(1)
            .session([Script::new().write_const(x, 1)])
            .session([Script::new().read(x)]);
        let mut r = Runner::new(&EngineSpec::Psi { replicas: 2 }, &w, 4);
        r.step(Actor::Session(0)); // begin (+ private write)
        r.step(Actor::Session(0)); // commit
        assert!(r.enabled().iter().any(|s| s.actor == Actor::Background));
        r.step(Actor::Background);
        assert!(!r.enabled().iter().any(|s| s.actor == Actor::Background));
    }
}
