//! Serializable descriptions of engines and workloads.
//!
//! A failure found by the explorer must be reproducible *from a file*:
//! the [`ReplayScript`](crate::ReplayScript) therefore stores the engine,
//! the workload and the decision trace as plain serde data, and this
//! module provides the lossless conversions to and from the live `si-mvcc`
//! types.

use serde::{Deserialize, Serialize};
use si_core::GraphClass;
use si_execution::SpecModel;
use si_model::Obj;
use si_mvcc::{
    Engine, PsiEngine, Script, ScriptOp, SerEngine, ShardedSiEngine, ShardedStoreConfig, SiEngine,
    SsiEngine, Workload,
};

use crate::mutant::{MutantSiEngine, Mutation};

/// Which engine a sanitizer run drives, with enough configuration to
/// rebuild it from scratch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineSpec {
    /// [`SiEngine`]: snapshot isolation with first-committer-wins.
    Si,
    /// [`SerEngine`]: serializable OCC.
    Ser,
    /// [`SsiEngine`]: serializable SI (dangerous-structure prevention).
    Ssi,
    /// [`PsiEngine`] with the given replica count.
    Psi {
        /// Number of replicas (sessions are pinned round-robin).
        replicas: usize,
    },
    /// [`ShardedSiEngine`]: SI over the lock-striped store with epoch GC.
    ShardedSi {
        /// Stripe count of the store.
        shards: usize,
        /// Installs per shard between GC passes (`0` = never).
        gc_interval: u64,
    },
    /// Seeded mutant: SI without first-committer-wins (admits lost
    /// updates).
    MutantDropFcw,
    /// Seeded mutant: SI whose snapshots lag `lag` commits behind
    /// (admits stale reads that break the SESSION axiom).
    MutantSnapshotLag {
        /// How many commits the snapshot lags behind the counter.
        lag: u64,
    },
    /// Seeded mutant: the sharded commit path with one stripe's
    /// first-committer-wins validation skipped (admits lost updates on
    /// that stripe).
    MutantShardFcwSkip {
        /// Stripe count of the simulated sharded store.
        shards: usize,
        /// The stripe whose validation is dropped.
        skip: usize,
    },
    /// Seeded mutant: the sharded commit path acquiring shard locks in
    /// descending order (a deadlock hazard the lock-order audit flags).
    MutantShardLockOrder {
        /// Stripe count of the simulated sharded store.
        shards: usize,
    },
}

/// What the oracles should hold an engine's runs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expectation {
    /// Axiom-level model every recorded execution must satisfy
    /// (Definition 4 instantiations).
    pub axioms: SpecModel,
    /// Dependency-graph class every extracted graph must belong to
    /// (Theorems 8/9/21).
    pub graph: GraphClass,
    /// Model the online [`SiMonitor`](si_core::SiMonitor) is run under as
    /// the differential counterpart of `graph`.
    pub monitor: SpecModel,
}

impl EngineSpec {
    /// Builds a fresh engine over `object_count` objects.
    pub fn build(&self, object_count: usize) -> Box<dyn Engine> {
        match *self {
            EngineSpec::Si => Box::new(SiEngine::new(object_count)),
            EngineSpec::Ser => Box::new(SerEngine::new(object_count)),
            EngineSpec::Ssi => Box::new(SsiEngine::new(object_count)),
            EngineSpec::Psi { replicas } => Box::new(PsiEngine::new(object_count, replicas)),
            EngineSpec::ShardedSi { shards, gc_interval } => {
                Box::new(ShardedSiEngine::with_config(
                    object_count,
                    ShardedStoreConfig { shards, gc_interval, ..ShardedStoreConfig::default() },
                ))
            }
            EngineSpec::MutantDropFcw => {
                Box::new(MutantSiEngine::new(object_count, Mutation::DropFirstCommitterWins))
            }
            EngineSpec::MutantSnapshotLag { lag } => {
                Box::new(MutantSiEngine::new(object_count, Mutation::SnapshotLag { lag }))
            }
            EngineSpec::MutantShardFcwSkip { shards, skip } => {
                Box::new(MutantSiEngine::new(object_count, Mutation::ShardFcwSkip { shards, skip }))
            }
            EngineSpec::MutantShardLockOrder { shards } => Box::new(MutantSiEngine::new(
                object_count,
                Mutation::ShardLockOrderScramble { shards },
            )),
        }
    }

    /// The oracle contract of this engine. Mutants claim to be SI — that
    /// is precisely what the sanitizer must catch them failing.
    pub fn expectation(&self) -> Expectation {
        match self {
            EngineSpec::Si
            | EngineSpec::ShardedSi { .. }
            | EngineSpec::MutantDropFcw
            | EngineSpec::MutantSnapshotLag { .. }
            | EngineSpec::MutantShardFcwSkip { .. }
            | EngineSpec::MutantShardLockOrder { .. } => {
                Expectation { axioms: SpecModel::Si, graph: GraphClass::Si, monitor: SpecModel::Si }
            }
            EngineSpec::Ser => Expectation {
                axioms: SpecModel::Ser,
                graph: GraphClass::Ser,
                monitor: SpecModel::Ser,
            },
            // SSI reads under SI rules but commits only serializable runs:
            // the graph-level contract is the *stronger* GraphSER.
            EngineSpec::Ssi => Expectation {
                axioms: SpecModel::Si,
                graph: GraphClass::Ser,
                monitor: SpecModel::Ser,
            },
            EngineSpec::Psi { .. } => Expectation {
                axioms: SpecModel::Psi,
                graph: GraphClass::Psi,
                monitor: SpecModel::Psi,
            },
        }
    }

    /// Whether buffered writes are invisible to every other actor until
    /// commit. True for SI/SER/PSI (and the mutants), whose `write` only
    /// touches the transaction's private buffer; false for SSI, whose
    /// commit-time dangerous-structure detection inspects *in-flight*
    /// read and write sets, making the placement of a buffered write
    /// observable.
    pub fn writes_are_local(&self) -> bool {
        !matches!(self, EngineSpec::Ssi)
    }

    /// A short display name.
    pub fn name(&self) -> &'static str {
        match self {
            EngineSpec::Si => "SI",
            EngineSpec::Ser => "SER",
            EngineSpec::Ssi => "SSI",
            EngineSpec::Psi { .. } => "PSI",
            EngineSpec::ShardedSi { .. } => "SI-sharded",
            EngineSpec::MutantDropFcw => "SI-mutant-drop-fcw",
            EngineSpec::MutantSnapshotLag { .. } => "SI-mutant-snapshot-lag",
            EngineSpec::MutantShardFcwSkip { .. } => "SI-mutant-shard-fcw-skip",
            EngineSpec::MutantShardLockOrder { .. } => "SI-mutant-shard-lock-order",
        }
    }
}

/// One script step, as serde data (mirrors [`ScriptOp`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpSpec {
    /// Read an object into the next register.
    Read {
        /// Object index.
        obj: u32,
    },
    /// Write a constant.
    WriteConst {
        /// Object index.
        obj: u32,
        /// The value.
        value: u64,
    },
    /// Write `sum(registers) + delta`, saturating at zero.
    WriteComputed {
        /// Object index.
        obj: u32,
        /// Registers to sum.
        regs: Vec<usize>,
        /// Signed adjustment.
        delta: i64,
    },
    /// Commit early if the register sum is below the threshold.
    EndIfSumBelow {
        /// Registers to sum.
        regs: Vec<usize>,
        /// Guard threshold.
        threshold: u64,
    },
}

impl OpSpec {
    fn from_op(op: &ScriptOp) -> Self {
        match op {
            ScriptOp::Read(x) => OpSpec::Read { obj: x.0 },
            ScriptOp::WriteConst(x, v) => OpSpec::WriteConst { obj: x.0, value: *v },
            ScriptOp::WriteComputed { obj, regs, delta } => {
                OpSpec::WriteComputed { obj: obj.0, regs: regs.clone(), delta: *delta }
            }
            ScriptOp::EndIfSumBelow { regs, threshold } => {
                OpSpec::EndIfSumBelow { regs: regs.clone(), threshold: *threshold }
            }
        }
    }

    fn append_to(&self, script: Script) -> Script {
        match self {
            OpSpec::Read { obj } => script.read(Obj(*obj)),
            OpSpec::WriteConst { obj, value } => script.write_const(Obj(*obj), *value),
            OpSpec::WriteComputed { obj, regs, delta } => {
                script.write_computed(Obj(*obj), regs.iter().copied(), *delta)
            }
            OpSpec::EndIfSumBelow { regs, threshold } => {
                script.end_if_sum_below(regs.iter().copied(), *threshold)
            }
        }
    }
}

/// An initial object value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InitialSpec {
    /// Object index.
    pub obj: u32,
    /// Initial value.
    pub value: u64,
}

/// A whole workload as serde data (mirrors [`Workload`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of objects.
    pub object_count: usize,
    /// Non-zero initial values.
    pub initials: Vec<InitialSpec>,
    /// Per-session script queues; each script is a list of steps.
    pub sessions: Vec<Vec<Vec<OpSpec>>>,
}

impl WorkloadSpec {
    /// Captures a live workload.
    pub fn from_workload(w: &Workload) -> Self {
        WorkloadSpec {
            object_count: w.object_count(),
            initials: w
                .initial_values()
                .iter()
                .map(|&(obj, value)| InitialSpec { obj: obj.0, value })
                .collect(),
            sessions: w
                .session_scripts()
                .map(|scripts| {
                    scripts.iter().map(|s| s.ops().iter().map(OpSpec::from_op).collect()).collect()
                })
                .collect(),
        }
    }

    /// Rebuilds the live workload.
    pub fn to_workload(&self) -> Workload {
        let mut w = Workload::new(self.object_count);
        for init in &self.initials {
            w = w.initial(Obj(init.obj), init.value);
        }
        for session in &self.sessions {
            let scripts: Vec<Script> = session
                .iter()
                .map(|ops| ops.iter().fold(Script::new(), |s, op| op.append_to(s)))
                .collect();
            w = w.session(scripts);
        }
        w
    }

    /// Number of sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_round_trips_through_spec() {
        let (x, y) = (Obj(0), Obj(1));
        let w = Workload::new(2)
            .initial(x, 60)
            .initial(y, 60)
            .session([Script::new().read(x).read(y).end_if_sum_below([0, 1], 100).write_computed(
                x,
                [0],
                -100,
            )])
            .session([Script::new().write_const(y, 7)]);
        let spec = WorkloadSpec::from_workload(&w);
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        let rebuilt = back.to_workload();
        assert_eq!(WorkloadSpec::from_workload(&rebuilt), spec);
    }

    #[test]
    fn engine_specs_serialize() {
        for spec in [
            EngineSpec::Si,
            EngineSpec::Ser,
            EngineSpec::Ssi,
            EngineSpec::Psi { replicas: 2 },
            EngineSpec::ShardedSi { shards: 2, gc_interval: 1 },
            EngineSpec::MutantDropFcw,
            EngineSpec::MutantSnapshotLag { lag: 1 },
            EngineSpec::MutantShardFcwSkip { shards: 2, skip: 0 },
            EngineSpec::MutantShardLockOrder { shards: 2 },
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: EngineSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
            assert!(spec.build(2).object_count() == 2);
        }
    }

    #[test]
    fn mutants_claim_si_contracts() {
        assert_eq!(EngineSpec::MutantDropFcw.expectation(), EngineSpec::Si.expectation());
        assert_eq!(
            EngineSpec::MutantSnapshotLag { lag: 1 }.expectation(),
            EngineSpec::Si.expectation()
        );
        assert_eq!(
            EngineSpec::MutantShardFcwSkip { shards: 2, skip: 0 }.expectation(),
            EngineSpec::Si.expectation()
        );
        assert_eq!(
            EngineSpec::MutantShardLockOrder { shards: 2 }.expectation(),
            EngineSpec::Si.expectation()
        );
    }

    #[test]
    fn sharded_engine_spec_matches_the_reference_si_contract() {
        let spec = EngineSpec::ShardedSi { shards: 4, gc_interval: 1 };
        assert_eq!(spec.expectation(), EngineSpec::Si.expectation());
        assert!(spec.writes_are_local());
        assert_eq!(spec.name(), "SI-sharded");
    }
}
