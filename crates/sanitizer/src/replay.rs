//! Replayable failure scripts.
//!
//! When the explorer finds (and the shrinker minimises) a failing
//! interleaving, the whole repro — engine configuration, workload and
//! decision trace — is captured as one serde value that round-trips
//! through JSON. Replaying is deterministic down to the byte: the runner
//! is a pure function of `(engine, workload, decisions)`, so a script
//! filed in a bug report reproduces the identical history, probe trace
//! and oracle verdicts on any machine.

use serde::{Deserialize, Serialize};
use si_mvcc::Workload;

use crate::runner::{run_advisory, Actor, RunArtifacts};
use crate::spec::{EngineSpec, WorkloadSpec};

/// A self-contained, serialisable repro of one controlled run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayScript {
    /// The engine under test.
    pub engine: EngineSpec,
    /// The workload driven against it.
    pub workload: WorkloadSpec,
    /// Retry budget per script (must match the original run).
    pub max_retries: u32,
    /// The scheduling decisions, in advisory form: decisions whose actor
    /// is not enabled are skipped, and the run is completed with the
    /// first enabled actor once the list is exhausted.
    pub decisions: Vec<Actor>,
}

impl ReplayScript {
    /// Captures a run as a script.
    pub fn new(
        engine: EngineSpec,
        workload: &Workload,
        max_retries: u32,
        decisions: Vec<Actor>,
    ) -> Self {
        ReplayScript {
            engine,
            workload: WorkloadSpec::from_workload(workload),
            max_retries,
            decisions,
        }
    }

    /// Re-executes the script and returns the run's artifacts.
    pub fn replay(&self) -> RunArtifacts {
        let workload = self.workload.to_workload();
        run_advisory(&self.engine, &workload, self.max_retries, &self.decisions)
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("replay scripts are plain data")
    }

    /// Parses a script from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_model::Obj;
    use si_mvcc::Script;

    #[test]
    fn script_round_trips_and_replays_identically() {
        let x = Obj(0);
        let inc = Script::new().read(x).write_computed(x, [0], 1);
        let w = Workload::new(1).session([inc.clone()]).session([inc]);
        let script = ReplayScript::new(
            EngineSpec::MutantDropFcw,
            &w,
            4,
            vec![Actor::Session(0), Actor::Session(1), Actor::Session(0), Actor::Session(1)],
        );
        let json = script.to_json();
        let back = ReplayScript::from_json(&json).expect("round trip");
        assert_eq!(back, script);

        let a = script.replay();
        let b = back.replay();
        assert_eq!(a.result.history, b.result.history);
        assert_eq!(a.result.execution, b.result.execution);
        assert_eq!(a.events, b.events);
        assert_eq!(a.decisions, b.decisions);
        // And serialising the replayed history itself is stable.
        assert_eq!(
            serde_json::to_string(&a.result.history).unwrap(),
            serde_json::to_string(&b.result.history).unwrap()
        );
    }
}
