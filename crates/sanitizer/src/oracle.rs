//! The differential oracle stack applied to every explored interleaving.
//!
//! Each completed run is judged four ways, and any disagreement with the
//! engine's own verdict (it committed what it committed) is a failure:
//!
//! 1. **Axioms** — the recorded [`AbstractExecution`] (ground-truth
//!    VIS/CO straight from the engine) is checked against the engine's
//!    declarative model (Definition 4 instantiation: SI, SER or PSI).
//! 2. **Graph membership** — the dependency graph is extracted from the
//!    execution ([`si_depgraph::extract`]) and checked against the
//!    engine's graph class (Theorems 8/9/21), exercising the
//!    graph-characterisation route *independently* of the axioms.
//! 3. **Online monitor** — the committed history is replayed through
//!    [`SiMonitor`] as an *observation* stream (no ground-truth VIS), the
//!    incremental counterpart of the graph check.
//! 4. **Races** — the engine's probe trace is run through the
//!    vector-clock detector ([`crate::detect_races`]).
//!
//! On the unmutated engines all four must accept every interleaving
//! (that is the sanitizer's clean-run theorem, asserted exhaustively in
//! the test-suite); the seeded mutants must be rejected by *each* layer
//! able to see their defect.

use si_core::{GraphClass, ObservedTx, SiMonitor};
use si_execution::SpecModel;
use si_relations::TxId;

use crate::runner::RunArtifacts;
use crate::spec::EngineSpec;
use crate::vclock::{detect_races, RaceReport};

/// One way an interleaving failed its oracle contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// The ground-truth execution violates the engine's declarative
    /// axioms.
    Axioms {
        /// The model that rejected the execution.
        model: SpecModel,
        /// The violated axiom, rendered.
        message: String,
    },
    /// The extracted dependency graph falls outside the engine's class.
    Graph {
        /// The class that rejected the graph.
        class: GraphClass,
        /// The membership error, rendered.
        message: String,
    },
    /// The online monitor rejected the observation stream.
    Monitor {
        /// The model the monitor ran under.
        model: SpecModel,
        /// The critical cycle it reported.
        cycle: Vec<TxId>,
    },
    /// The recorded history could not be mapped to a dependency graph at
    /// all (reads that match no visible writer — already a defect).
    Extraction {
        /// The extraction error, rendered.
        message: String,
    },
    /// The vector-clock detector found a happens-before anomaly.
    Race(RaceReport),
}

impl Failure {
    /// Whether this failure is a race (vs. a semantic oracle rejection).
    pub fn is_race(&self) -> bool {
        matches!(self, Failure::Race(_))
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Axioms { model, message } => {
                write!(f, "axiom violation under {model:?}: {message}")
            }
            Failure::Graph { class, message } => {
                write!(f, "graph membership failure for {class:?}: {message}")
            }
            Failure::Monitor { model, cycle } => {
                write!(f, "monitor under {model:?} rejected the stream (cycle {cycle:?})")
            }
            Failure::Extraction { message } => write!(f, "extraction failed: {message}"),
            Failure::Race(race) => write!(f, "race: {race}"),
        }
    }
}

/// Runs the full oracle stack over one completed run's artifacts.
pub fn check_artifacts(spec: &EngineSpec, artifacts: &RunArtifacts) -> Vec<Failure> {
    let expectation = spec.expectation();
    let mut failures = Vec::new();

    if let Err(violation) = expectation.axioms.check(&artifacts.result.execution) {
        failures
            .push(Failure::Axioms { model: expectation.axioms, message: violation.to_string() });
    }

    match si_depgraph::extract(&artifacts.result.execution) {
        Ok(graph) => {
            if let Err(e) = expectation.graph.check(&graph) {
                failures.push(Failure::Graph { class: expectation.graph, message: e.to_string() });
            }
            let mut monitor = SiMonitor::new(expectation.monitor);
            for tx in observed_stream(&graph) {
                monitor.append(tx);
                if !monitor.is_consistent() {
                    break;
                }
            }
            if !monitor.is_consistent() {
                failures.push(Failure::Monitor {
                    model: expectation.monitor,
                    cycle: monitor.violation().map(<[TxId]>::to_vec).unwrap_or_default(),
                });
            }
        }
        Err(e) => failures.push(Failure::Extraction { message: e.to_string() }),
    }

    failures.extend(detect_races(&artifacts.events).into_iter().map(Failure::Race));
    failures
}

/// The whole history (init transaction first) as a monitor observation
/// stream: reads resolved to their writers, session predecessors
/// threaded per session.
fn observed_stream(graph: &si_depgraph::DependencyGraph) -> Vec<ObservedTx> {
    let h = graph.history();
    let mut last_of_session: Vec<Option<TxId>> = vec![None; h.session_count()];
    let mut out = Vec::new();
    for t in h.tx_ids() {
        let session = h.session_of(t);
        out.push(ObservedTx {
            session_predecessor: session.and_then(|s| last_of_session[s.index()]),
            reads_from: h
                .transaction(t)
                .external_read_set()
                .into_iter()
                .map(|x| (x, graph.writer_for(t, x).expect("extracted reads have writers")))
                .collect(),
            writes: h.transaction(t).write_set(),
        });
        if let Some(s) = session {
            last_of_session[s.index()] = Some(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_advisory, Actor};
    use si_model::Obj;
    use si_mvcc::{Script, Workload};

    fn lost_update() -> Workload {
        let x = Obj(0);
        let inc = Script::new().read(x).write_computed(x, [0], 1);
        Workload::new(1).session([inc.clone()]).session([inc])
    }

    #[test]
    fn clean_si_run_passes_every_oracle() {
        let artifacts = run_advisory(&EngineSpec::Si, &lost_update(), 4, &[]);
        assert_eq!(check_artifacts(&EngineSpec::Si, &artifacts), Vec::new());
    }

    #[test]
    fn drop_fcw_interleaving_fails_multiple_oracles() {
        // Both sessions read before either commits: the mutant loses an
        // update.
        let decisions =
            [Actor::Session(0), Actor::Session(1), Actor::Session(0), Actor::Session(1)];
        let artifacts = run_advisory(&EngineSpec::MutantDropFcw, &lost_update(), 4, &decisions);
        assert_eq!(artifacts.counters.committed, 2);
        assert_eq!(artifacts.counters.aborted, 0);
        let failures = check_artifacts(&EngineSpec::MutantDropFcw, &artifacts);
        // NOCONFLICT fails, GraphSI membership fails, the monitor
        // rejects, and the race detector sees the concurrent installs.
        assert!(failures.iter().any(|f| matches!(f, Failure::Axioms { .. })), "{failures:?}");
        assert!(failures.iter().any(|f| matches!(f, Failure::Graph { .. })), "{failures:?}");
        assert!(failures.iter().any(|f| matches!(f, Failure::Monitor { .. })), "{failures:?}");
        assert!(failures.iter().any(Failure::is_race), "{failures:?}");
    }

    #[test]
    fn snapshot_lag_same_session_fails() {
        // One session, two increments: the second runs on a snapshot
        // that excludes the first — SESSION (strong session SI) breaks.
        let x = Obj(0);
        let inc = Script::new().read(x).write_computed(x, [0], 1);
        let w = Workload::new(1).session([inc.clone(), inc]);
        let artifacts = run_advisory(&EngineSpec::MutantSnapshotLag { lag: 1 }, &w, 4, &[]);
        let failures = check_artifacts(&EngineSpec::MutantSnapshotLag { lag: 1 }, &artifacts);
        assert!(!failures.is_empty(), "lagged snapshot must be caught");
        assert!(failures.iter().any(Failure::is_race), "{failures:?}");
    }
}
