//! Systematic and randomised interleaving exploration.
//!
//! The explorer enumerates schedules of a workload against an engine and
//! feeds every completed run through the oracle stack
//! ([`crate::check_artifacts`]). Two modes:
//!
//! * [`ExploreMode::Exhaustive`] — depth-first search over the schedule
//!   tree with **sleep-set pruning** (Godefroid). After a step `t` is
//!   fully explored at a node, `t` enters the sleep set of the node's
//!   remaining children and stays asleep until a *dependent* step (per
//!   [`crate::dependent`]) executes; branches whose every enabled step is
//!   asleep are provably redundant — some sibling already covers a
//!   Mazurkiewicz-equivalent schedule — and are pruned without
//!   re-execution. Sleep sets never prune a *distinguishable*
//!   interleaving, so exhaustive mode genuinely certifies a workload.
//! * [`ExploreMode::Random`] — seeded uniform random walks, for
//!   workloads whose tree outgrows the budget.
//!
//! Engines cannot be checkpointed (they are live `Box<dyn Engine>`
//! state machines), so the DFS re-executes each prefix from scratch —
//! O(depth) engine steps per node, entirely acceptable at the bundled
//! script sizes and honest about what a deployment replay would do.
//!
//! Every failing interleaving is shrunk with ddmin
//! ([`crate::minimize`]) and packaged as a [`ReplayScript`]; exploration
//! telemetry streams through [`Event::ExplorationProgress`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use si_mvcc::Workload;
use si_telemetry::{Event, Telemetry};

use crate::dependence::dependent;
use crate::oracle::{check_artifacts, Failure};
use crate::replay::ReplayScript;
use crate::runner::{Actor, EnabledStep, RunArtifacts, Runner};
use crate::shrink::minimize;
use crate::spec::EngineSpec;

/// How to walk the schedule tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreMode {
    /// Sleep-set DFS over every distinguishable interleaving.
    Exhaustive,
    /// `walks` seeded uniform random schedules.
    Random {
        /// Number of random schedules to run.
        walks: u64,
        /// RNG seed (each walk derives its own stream).
        seed: u64,
    },
}

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct SanitizeConfig {
    /// Walk strategy.
    pub mode: ExploreMode,
    /// Retry budget per script (conflict aborts resubmit the script).
    pub max_retries: u32,
    /// Hard cap on completed interleavings; exhaustive runs that hit it
    /// report [`SanitizeReport::budget_exhausted`].
    pub max_interleavings: u64,
    /// Stop at the first failing interleaving instead of cataloguing
    /// all of them.
    pub stop_at_first_failure: bool,
    /// Minimise failing schedules with ddmin before reporting.
    pub shrink: bool,
    /// Telemetry for [`Event::ExplorationProgress`] streaming.
    pub telemetry: Telemetry,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        SanitizeConfig {
            mode: ExploreMode::Exhaustive,
            max_retries: 4,
            max_interleavings: 100_000,
            stop_at_first_failure: true,
            shrink: true,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// One failing interleaving, minimised and packaged for replay.
#[derive(Debug)]
pub struct FailureCase {
    /// Every oracle rejection of the (minimised) run.
    pub failures: Vec<Failure>,
    /// The minimised repro.
    pub replay: ReplayScript,
    /// Decision count of the originally-found failing schedule.
    pub found_decisions: usize,
    /// ddmin replays spent minimising it (0 when shrinking is off).
    pub shrink_steps: u64,
}

/// The outcome of sanitizing one workload against one engine.
#[derive(Debug)]
pub struct SanitizeReport {
    /// Display name of the engine.
    pub engine: &'static str,
    /// Completed interleavings actually executed and checked.
    pub explored: u64,
    /// Branches cut by sleep-set pruning (exhaustive mode).
    pub pruned: u64,
    /// Races seen across all explored interleavings.
    pub races: u64,
    /// Total ddmin replays across all failures.
    pub shrink_steps: u64,
    /// Whether the interleaving budget ran out before the tree did.
    pub budget_exhausted: bool,
    /// Failing interleavings, in discovery order.
    pub failures: Vec<FailureCase>,
}

impl SanitizeReport {
    /// Whether every explored interleaving passed every oracle.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Explores `workload` against `spec` per `config`.
pub fn sanitize(spec: &EngineSpec, workload: &Workload, config: &SanitizeConfig) -> SanitizeReport {
    let mut explorer = Explorer {
        spec,
        workload,
        config,
        report: SanitizeReport {
            engine: spec.name(),
            explored: 0,
            pruned: 0,
            races: 0,
            shrink_steps: 0,
            budget_exhausted: false,
            failures: Vec::new(),
        },
    };
    match config.mode {
        ExploreMode::Exhaustive => {
            let mut prefix = Vec::new();
            explorer.dfs(&mut prefix, Vec::new());
        }
        ExploreMode::Random { walks, seed } => explorer.random(walks, seed),
    }
    let report = explorer.report;
    config.telemetry.emit(|| Event::ExplorationProgress {
        explored: report.explored,
        pruned: report.pruned,
        races: report.races,
        shrink_steps: report.shrink_steps,
    });
    report
}

/// The outcome of a caller-judged exploration ([`explore_judged`]).
#[derive(Debug)]
pub struct JudgedExploration {
    /// Completed interleavings executed and judged.
    pub explored: u64,
    /// Branches cut by sleep-set pruning (exhaustive mode).
    pub pruned: u64,
    /// Whether the interleaving budget ran out before the tree did.
    pub budget_exhausted: bool,
    /// The first interleaving the judge rejected, packaged for replay.
    /// `None` means every explored interleaving was accepted.
    pub rejected: Option<ReplayScript>,
}

impl JudgedExploration {
    /// Whether the judge accepted every explored interleaving.
    pub fn is_clean(&self) -> bool {
        self.rejected.is_none()
    }
}

/// Explores `workload` against `spec` like [`sanitize`], but judges each
/// completed run with a caller-supplied predicate instead of the oracle
/// stack: `judge` returns `true` to accept an interleaving and `false`
/// to reject it, and the walk stops at the first rejection.
///
/// This is the library entry point behind witness confirmation
/// (`si-lint`'s `--confirm`): a *robust* static verdict is
/// counter-validated by judging every interleaving against the claimed
/// consistency level, and a *search* for an anomalous schedule runs the
/// same walk with the polarity flipped (reject = found). No shrinking is
/// applied — the rejected schedule is returned exactly as explored, so
/// repeated runs are byte-identical.
pub fn explore_judged(
    spec: &EngineSpec,
    workload: &Workload,
    config: &SanitizeConfig,
    judge: &mut dyn FnMut(&RunArtifacts) -> bool,
) -> JudgedExploration {
    let mut explorer = JudgedExplorer {
        spec,
        workload,
        config,
        judge,
        out: JudgedExploration { explored: 0, pruned: 0, budget_exhausted: false, rejected: None },
    };
    match config.mode {
        ExploreMode::Exhaustive => {
            let mut prefix = Vec::new();
            explorer.dfs(&mut prefix, Vec::new());
        }
        ExploreMode::Random { walks, seed } => explorer.random(walks, seed),
    }
    explorer.out
}

struct JudgedExplorer<'a> {
    spec: &'a EngineSpec,
    workload: &'a Workload,
    config: &'a SanitizeConfig,
    judge: &'a mut dyn FnMut(&RunArtifacts) -> bool,
    out: JudgedExploration,
}

impl JudgedExplorer<'_> {
    fn done(&self) -> bool {
        self.out.budget_exhausted || self.out.rejected.is_some()
    }

    fn dfs(&mut self, prefix: &mut Vec<Actor>, sleep: Vec<EnabledStep>) {
        if self.done() {
            return;
        }
        let mut runner = Runner::new(self.spec, self.workload, self.config.max_retries);
        for &actor in prefix.iter() {
            runner.step(actor);
        }
        let enabled = runner.enabled();
        if enabled.is_empty() {
            self.check_complete(runner);
            return;
        }
        let explorable: Vec<EnabledStep> =
            enabled.iter().filter(|s| !sleep.iter().any(|z| z.actor == s.actor)).cloned().collect();
        if explorable.is_empty() {
            self.out.pruned += 1;
            return;
        }
        drop(runner);
        let mut asleep = sleep;
        for step in explorable {
            let child_sleep: Vec<EnabledStep> =
                asleep.iter().filter(|z| !dependent(z, &step)).cloned().collect();
            prefix.push(step.actor);
            self.dfs(prefix, child_sleep);
            prefix.pop();
            if self.done() {
                return;
            }
            asleep.push(step);
        }
    }

    fn random(&mut self, walks: u64, seed: u64) {
        for walk in 0..walks {
            if self.done() {
                return;
            }
            let mut rng = StdRng::seed_from_u64(seed ^ (walk.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let mut runner = Runner::new(self.spec, self.workload, self.config.max_retries);
            loop {
                let enabled = runner.enabled();
                if enabled.is_empty() {
                    break;
                }
                let pick = enabled[rng.gen_range(0..enabled.len())].actor;
                runner.step(pick);
            }
            self.check_complete(runner);
        }
    }

    fn check_complete(&mut self, runner: Runner) {
        self.out.explored += 1;
        if self.out.explored >= self.config.max_interleavings {
            self.out.budget_exhausted = true;
        }
        let artifacts = runner.finish();
        if !(self.judge)(&artifacts) {
            self.out.rejected = Some(ReplayScript::new(
                self.spec.clone(),
                self.workload,
                self.config.max_retries,
                artifacts.decisions,
            ));
        }
    }
}

struct Explorer<'a> {
    spec: &'a EngineSpec,
    workload: &'a Workload,
    config: &'a SanitizeConfig,
    report: SanitizeReport,
}

impl Explorer<'_> {
    fn done(&self) -> bool {
        self.report.budget_exhausted
            || (self.config.stop_at_first_failure && !self.report.failures.is_empty())
    }

    fn rebuild(&self, prefix: &[Actor]) -> Runner {
        let mut runner = Runner::new(self.spec, self.workload, self.config.max_retries);
        for &actor in prefix {
            runner.step(actor);
        }
        runner
    }

    fn dfs(&mut self, prefix: &mut Vec<Actor>, sleep: Vec<EnabledStep>) {
        if self.done() {
            return;
        }
        let runner = self.rebuild(prefix);
        let enabled = runner.enabled();
        if enabled.is_empty() {
            self.check_complete(runner);
            return;
        }
        let explorable: Vec<EnabledStep> =
            enabled.iter().filter(|s| !sleep.iter().any(|z| z.actor == s.actor)).cloned().collect();
        if explorable.is_empty() {
            // Every enabled step is asleep: a sibling subtree already
            // covers an equivalent schedule of this whole branch.
            self.report.pruned += 1;
            return;
        }
        drop(runner);
        // The working sleep set: inherited sleepers plus siblings already
        // explored at this node.
        let mut asleep = sleep;
        for step in explorable {
            let child_sleep: Vec<EnabledStep> =
                asleep.iter().filter(|z| !dependent(z, &step)).cloned().collect();
            prefix.push(step.actor);
            self.dfs(prefix, child_sleep);
            prefix.pop();
            if self.done() {
                return;
            }
            asleep.push(step);
        }
    }

    fn random(&mut self, walks: u64, seed: u64) {
        for walk in 0..walks {
            if self.done() {
                return;
            }
            let mut rng = StdRng::seed_from_u64(seed ^ (walk.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let mut runner = Runner::new(self.spec, self.workload, self.config.max_retries);
            loop {
                let enabled = runner.enabled();
                if enabled.is_empty() {
                    break;
                }
                let pick = enabled[rng.gen_range(0..enabled.len())].actor;
                runner.step(pick);
            }
            self.check_complete(runner);
        }
    }

    /// Checks one completed run, shrinking and recording any failure.
    fn check_complete(&mut self, runner: Runner) {
        self.report.explored += 1;
        if self.report.explored >= self.config.max_interleavings {
            self.report.budget_exhausted = true;
        }
        if self.report.explored.is_multiple_of(4096) {
            let (explored, pruned, races, shrink_steps) = (
                self.report.explored,
                self.report.pruned,
                self.report.races,
                self.report.shrink_steps,
            );
            self.config.telemetry.emit(|| Event::ExplorationProgress {
                explored,
                pruned,
                races,
                shrink_steps,
            });
        }
        let artifacts = runner.finish();
        let failures = check_artifacts(self.spec, &artifacts);
        if failures.is_empty() {
            return;
        }
        self.report.races += failures.iter().filter(|f| f.is_race()).count() as u64;
        let found_decisions = artifacts.decisions.len();
        let (decisions, failures, shrink_steps) = if self.config.shrink {
            let spec = self.spec;
            let shrunk = minimize(
                spec,
                self.workload,
                self.config.max_retries,
                &artifacts.decisions,
                |run| !check_artifacts(spec, run).is_empty(),
            );
            let minimized_failures = check_artifacts(spec, &shrunk.artifacts);
            // Store the fully repaired trace of the minimal run so the
            // replay is byte-identical without relying on repair rules.
            (shrunk.artifacts.decisions, minimized_failures, shrunk.steps)
        } else {
            (artifacts.decisions, failures, 0)
        };
        self.report.shrink_steps += shrink_steps;
        self.report.failures.push(FailureCase {
            failures,
            replay: ReplayScript::new(
                self.spec.clone(),
                self.workload,
                self.config.max_retries,
                decisions,
            ),
            found_decisions,
            shrink_steps,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_model::Obj;
    use si_mvcc::Script;

    fn lost_update() -> Workload {
        let x = Obj(0);
        let inc = Script::new().read(x).write_computed(x, [0], 1);
        Workload::new(1).session([inc.clone()]).session([inc])
    }

    #[test]
    fn exhaustive_si_lost_update_is_clean() {
        let report = sanitize(&EngineSpec::Si, &lost_update(), &SanitizeConfig::default());
        assert!(report.is_clean(), "{:?}", report.failures);
        assert!(report.explored >= 2, "at least serial + conflicting orders");
        assert!(!report.budget_exhausted);
    }

    #[test]
    fn sleep_sets_prune_but_miss_nothing() {
        // Two independent sessions on distinct objects: most
        // interleavings are equivalent, so pruning must bite.
        let w = Workload::new(2)
            .session([Script::new().read(Obj(0)).write_const(Obj(0), 1)])
            .session([Script::new().read(Obj(1)).write_const(Obj(1), 1)]);
        let pruned_cfg = SanitizeConfig::default();
        let report = sanitize(&EngineSpec::Si, &w, &pruned_cfg);
        assert!(report.is_clean());
        assert!(report.pruned > 0, "independent sessions must trigger pruning");
    }

    #[test]
    fn exhaustive_catches_drop_fcw_mutant() {
        let report =
            sanitize(&EngineSpec::MutantDropFcw, &lost_update(), &SanitizeConfig::default());
        assert!(!report.is_clean(), "the mutant admits a lost update");
        let case = &report.failures[0];
        assert!(case.failures.iter().any(Failure::is_race));
        // The minimised repro still fails when replayed.
        let replayed = case.replay.replay();
        assert!(!check_artifacts(&EngineSpec::MutantDropFcw, &replayed).is_empty());
    }

    #[test]
    fn random_mode_is_seed_deterministic() {
        let cfg = SanitizeConfig {
            mode: ExploreMode::Random { walks: 16, seed: 0xDECAF },
            stop_at_first_failure: false,
            shrink: false,
            ..SanitizeConfig::default()
        };
        let a = sanitize(&EngineSpec::MutantDropFcw, &lost_update(), &cfg);
        let b = sanitize(&EngineSpec::MutantDropFcw, &lost_update(), &cfg);
        assert_eq!(a.explored, b.explored);
        assert_eq!(a.failures.len(), b.failures.len());
        for (fa, fb) in a.failures.iter().zip(&b.failures) {
            assert_eq!(fa.replay, fb.replay);
        }
    }

    #[test]
    fn judged_exploration_accepts_and_rejects() {
        // A judge that accepts everything certifies the workload clean.
        let clean = explore_judged(
            &EngineSpec::Si,
            &lost_update(),
            &SanitizeConfig::default(),
            &mut |_| true,
        );
        assert!(clean.is_clean());
        assert!(clean.explored >= 2);
        // A judge that rejects everything stops at the first interleaving
        // and hands back a deterministic, replayable schedule.
        let mut judged = 0u64;
        let found = explore_judged(
            &EngineSpec::Si,
            &lost_update(),
            &SanitizeConfig::default(),
            &mut |_| {
                judged += 1;
                false
            },
        );
        assert_eq!(judged, 1, "stops at first rejection");
        assert_eq!(found.explored, 1);
        let replay = found.rejected.expect("rejection recorded");
        let again = explore_judged(
            &EngineSpec::Si,
            &lost_update(),
            &SanitizeConfig::default(),
            &mut |_| false,
        );
        assert_eq!(again.rejected.expect("same rejection").to_json(), replay.to_json());
    }

    #[test]
    fn budget_caps_exploration() {
        let cfg = SanitizeConfig {
            max_interleavings: 3,
            stop_at_first_failure: false,
            ..SanitizeConfig::default()
        };
        let report = sanitize(&EngineSpec::Si, &lost_update(), &cfg);
        assert!(report.budget_exhausted);
        assert_eq!(report.explored, 3);
    }
}
