//! Bundled conflict workloads: the paper's anomaly zoo at exploration
//! scale.
//!
//! Each workload stages one classical anomaly pattern (§2 of the paper)
//! in at most three transactions over at most two objects — small enough
//! for the sleep-set DFS to certify exhaustively, adversarial enough
//! that every engine's conflict machinery is on the critical path. The
//! test-suite's clean-run theorem quantifies over exactly this set: the
//! unmutated engines must pass every oracle on **every** interleaving of
//! **every** bundled workload.

use si_model::Obj;
use si_mvcc::{Script, Workload};

/// Lost update: two sessions increment the same counter. SI's
/// first-committer-wins must serialise the increments; dropping it loses
/// one.
pub fn lost_update() -> Workload {
    let x = Obj(0);
    let inc = Script::new().read(x).write_computed(x, [0], 1);
    Workload::new(1).session([inc.clone()]).session([inc])
}

/// Write skew: two guarded withdrawals against a shared invariant
/// (`x + y ≥ 100`). SI admits the anomaly (both read, write disjointly);
/// SER/SSI must refuse one withdrawal.
pub fn write_skew() -> Workload {
    let (x, y) = (Obj(0), Obj(1));
    let withdraw = |target: Obj, reg: usize| {
        Script::new().read(x).read(y).end_if_sum_below([0, 1], 100).write_computed(
            target,
            [reg],
            -100,
        )
    };
    Workload::new(2)
        .initial(x, 60)
        .initial(y, 60)
        .session([withdraw(x, 0)])
        .session([withdraw(y, 1)])
}

/// Long fork: two independent writers and one reader. PSI admits
/// diverging observation orders across *two* readers; with a single
/// reader every engine must still present a causally sound snapshot.
pub fn long_fork() -> Workload {
    let (x, y) = (Obj(0), Obj(1));
    Workload::new(2)
        .session([Script::new().write_const(x, 1)])
        .session([Script::new().write_const(y, 1)])
        .session([Script::new().read(x).read(y)])
}

/// Read skew (inconsistent read): a writer updates two objects together;
/// a reader must never see one half of the update.
pub fn read_skew() -> Workload {
    let (x, y) = (Obj(0), Obj(1));
    Workload::new(2)
        .session([Script::new().write_const(x, 1).write_const(y, 1)])
        .session([Script::new().read(x).read(y)])
}

/// Session chain: one session increments twice, a second session reads.
/// Exercises session order (strong-session SI) — the lagged-snapshot
/// mutant fails here even serially.
pub fn session_chain() -> Workload {
    let x = Obj(0);
    let inc = Script::new().read(x).write_computed(x, [0], 1);
    Workload::new(1).session([inc.clone(), inc]).session([Script::new().read(x)])
}

/// A SmallBank-flavoured kernel at exploration scale: checking and
/// savings accounts, a guarded payment racing a session that deposits
/// and then writes a check — reads and writes overlap across all three
/// transactions. Two sessions keep the schedule tree tractable even for
/// SSI, whose in-flight write buffers are themselves yield points.
pub fn smallbank_mini() -> Workload {
    let (checking, savings) = (Obj(0), Obj(1));
    Workload::new(2)
        .initial(checking, 50)
        .initial(savings, 100)
        // send_payment: move 10 out of checking (guarded).
        .session([Script::new().read(checking).end_if_sum_below([0], 10).write_computed(
            checking,
            [0],
            -10,
        )])
        // balance + deposit_checking, then write_check against savings.
        .session([
            Script::new().read(checking).read(savings).write_computed(checking, [0], 5),
            Script::new().read(savings).write_computed(savings, [0], -20),
        ])
}

/// Every bundled workload, with a stable name for reports.
pub fn bundled() -> Vec<(&'static str, Workload)> {
    vec![
        ("lost_update", lost_update()),
        ("write_skew", write_skew()),
        ("long_fork", long_fork()),
        ("read_skew", read_skew()),
        ("session_chain", session_chain()),
        ("smallbank_mini", smallbank_mini()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_workloads_stay_small() {
        for (name, w) in bundled() {
            let txs: usize = w.session_scripts().map(<[Script]>::len).sum();
            assert!(txs <= 3, "{name} has {txs} transactions, exploration wants ≤ 3");
            assert!(w.session_count() <= 3, "{name} has too many sessions");
        }
    }
}
