//! Seeded atomicity mutants: deliberately broken SI engines.
//!
//! A sanitizer that only ever blesses correct engines proves nothing. The
//! mutants here re-implement the SI protocol over the public
//! [`MultiVersionStore`] with one precise defect each, so the test suite
//! can assert the explorer *finds* an interleaving exposing the defect,
//! the race detector flags it, the oracles reject it, and the shrinker
//! reduces it to a minimal replayable schedule:
//!
//! * [`Mutation::DropFirstCommitterWins`] — commit-time write-conflict
//!   detection is skipped. Two concurrent increments of the same object
//!   both commit and one update is lost: the NOCONFLICT axiom fails, the
//!   extracted graph leaves `GraphSI` (a `WW;RW` cycle), and the
//!   vector-clock detector reports a [`WwInstall`](crate::RaceKind)
//!   race — two happens-before-concurrent installs of one object.
//! * [`Mutation::SnapshotLag`] — `begin` takes a snapshot `lag` commits
//!   behind the counter, so a session can fail to observe its *own*
//!   previous commit. The SESSION axiom (SO ⊆ VIS) fails, the graph gains
//!   an `SO;RW` cycle, and the detector reports a
//!   [`StaleRead`](crate::RaceKind): a version ordered before the read by
//!   happens-before was skipped.
//! * [`Mutation::ShardFcwSkip`] — the sharded commit path with one
//!   shard's first-committer-wins validation dropped: objects mapping to
//!   the skipped stripe commit without conflict detection, losing
//!   updates exactly like `DropFirstCommitterWins` but only on a slice
//!   of the object space.
//! * [`Mutation::ShardLockOrderScramble`] — the sharded commit path
//!   acquiring its shard locks in *descending* order. Values stay
//!   correct (the run is serial under the explorer), but the reported
//!   [`ShardLocksAcquired`](si_mvcc::ProbeEvent) order breaks the
//!   deadlock-freedom discipline and the detector flags a
//!   [`ShardLockOrder`](crate::RaceKind) hazard.
//!
//! The sharded mutants re-enact the sharded protocol's *observable*
//! surface (per-shard validation coverage, reported lock order) over the
//! plain store — which is the point: the sanitizer judges engines by
//! their traces and recorded runs, not their lock graphs.

use std::collections::BTreeMap;

use si_model::{Obj, Value};
use si_mvcc::{
    AbortReason, CommitInfo, Engine, EngineProbe, MultiVersionStore, ProbeEvent, TxToken,
};

/// Which defect a [`MutantSiEngine`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Skip first-committer-wins validation entirely.
    DropFirstCommitterWins,
    /// Snapshots lag this many commits behind the commit counter.
    SnapshotLag {
        /// The lag, in commits.
        lag: u64,
    },
    /// Sharded commit whose first-committer-wins validation skips every
    /// object on one stripe (`index % shards == skip`).
    ShardFcwSkip {
        /// Stripe count of the simulated sharded store.
        shards: usize,
        /// The stripe whose validation is dropped.
        skip: usize,
    },
    /// Sharded commit acquiring its shard locks in descending order.
    ShardLockOrderScramble {
        /// Stripe count of the simulated sharded store.
        shards: usize,
    },
}

#[derive(Debug)]
struct MutantTx {
    session: usize,
    snapshot: u64,
    writes: BTreeMap<Obj, Value>,
    finished: bool,
}

/// The SI protocol with one seeded defect (see [`Mutation`]). Everything
/// else — snapshot reads, own-write visibility, contiguous commit
/// sequences, honest `CommitInfo` ground truth — matches [`SiEngine`]
/// (si_mvcc::SiEngine), so the *only* way to tell a mutant from the real
/// engine is to drive it into an interleaving where the defect bites.
#[derive(Debug)]
pub struct MutantSiEngine {
    store: MultiVersionStore,
    commit_counter: u64,
    active: Vec<MutantTx>,
    probe: EngineProbe,
    mutation: Mutation,
}

impl MutantSiEngine {
    /// Creates a mutant over `object_count` objects.
    pub fn new(object_count: usize, mutation: Mutation) -> Self {
        MutantSiEngine {
            store: MultiVersionStore::new(object_count),
            commit_counter: 0,
            active: Vec::new(),
            probe: EngineProbe::disabled(),
            mutation,
        }
    }

    /// Which defect this engine carries.
    pub fn mutation(&self) -> Mutation {
        self.mutation
    }

    fn tx(&mut self, token: TxToken) -> &mut MutantTx {
        let tx = &mut self.active[token.raw()];
        assert!(!tx.finished, "transaction already committed or aborted");
        tx
    }
}

impl Engine for MutantSiEngine {
    fn object_count(&self) -> usize {
        self.store.object_count()
    }

    fn set_initial(&mut self, obj: Obj, value: Value) {
        self.store.set_initial(obj, value);
    }

    fn initial(&self, obj: Obj) -> Value {
        self.store.initial(obj)
    }

    fn begin(&mut self, session: usize) -> TxToken {
        let snapshot = match self.mutation {
            Mutation::SnapshotLag { lag } => self.commit_counter.saturating_sub(lag),
            _ => self.commit_counter,
        };
        self.probe.emit(|| ProbeEvent::SnapshotPrefix { session, upto: snapshot });
        self.active.push(MutantTx { session, snapshot, writes: BTreeMap::new(), finished: false });
        TxToken::from_raw(self.active.len() - 1)
    }

    fn read(&mut self, tx: TxToken, obj: Obj) -> Value {
        let (session, snapshot) = {
            let t = self.tx(tx);
            if let Some(&v) = t.writes.get(&obj) {
                return v;
            }
            (t.session, t.snapshot)
        };
        let version = self.store.read_at(obj, snapshot);
        self.probe.emit(|| ProbeEvent::VersionObserved { session, obj, seq: version.commit_seq });
        version.value
    }

    fn write(&mut self, tx: TxToken, obj: Obj, value: Value) {
        self.tx(tx).writes.insert(obj, value);
    }

    fn commit(&mut self, tx: TxToken) -> Result<CommitInfo, AbortReason> {
        let (session, snapshot, writes) = {
            let t = self.tx(tx);
            (t.session, t.snapshot, t.writes.clone())
        };
        // The sharded mutants report the lock order the sharded commit
        // path would have used — ascending is the contract, descending is
        // the scramble defect.
        if !writes.is_empty() {
            match self.mutation {
                Mutation::ShardFcwSkip { shards, .. } => {
                    let order = shard_order(&writes, shards);
                    self.probe.emit(|| ProbeEvent::ShardLocksAcquired { session, shards: order });
                }
                Mutation::ShardLockOrderScramble { shards } => {
                    let mut order = shard_order(&writes, shards);
                    order.reverse();
                    self.probe.emit(|| ProbeEvent::ShardLocksAcquired { session, shards: order });
                }
                _ => {}
            }
        }
        let validated = |obj: Obj| match self.mutation {
            Mutation::DropFirstCommitterWins => false,
            Mutation::ShardFcwSkip { shards, skip } => obj.index() % shards != skip,
            _ => true,
        };
        for &obj in writes.keys() {
            if validated(obj) && self.store.latest_seq(obj) > snapshot {
                self.active[tx.raw()].finished = true;
                self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
                return Err(AbortReason::WriteConflict(obj));
            }
        }
        self.commit_counter += 1;
        let seq = self.commit_counter;
        for (&obj, &value) in &writes {
            self.store.install(obj, value, seq);
            self.probe.emit(|| ProbeEvent::VersionInstalled { session, obj, seq });
        }
        self.active[tx.raw()].finished = true;
        self.probe.emit(|| ProbeEvent::Committed { session, seq });
        Ok(CommitInfo { seq, visible: (1..=snapshot).collect() })
    }

    fn abort(&mut self, tx: TxToken) {
        let t = self.tx(tx);
        t.finished = true;
        let session = t.session;
        self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
    }

    fn name(&self) -> &'static str {
        match self.mutation {
            Mutation::DropFirstCommitterWins => "SI-mutant-drop-fcw",
            Mutation::SnapshotLag { .. } => "SI-mutant-snapshot-lag",
            Mutation::ShardFcwSkip { .. } => "SI-mutant-shard-fcw-skip",
            Mutation::ShardLockOrderScramble { .. } => "SI-mutant-shard-lock-order",
        }
    }

    fn set_probe(&mut self, probe: EngineProbe) {
        self.probe = probe;
    }
}

/// The ascending stripe set of a write set under `index % shards`
/// partitioning — what a correct sharded commit would lock, in order.
fn shard_order(writes: &BTreeMap<Obj, Value>, shards: usize) -> Vec<usize> {
    let set: std::collections::BTreeSet<usize> =
        writes.keys().map(|obj| obj.index() % shards).collect();
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_fcw_loses_updates() {
        let mut e = MutantSiEngine::new(1, Mutation::DropFirstCommitterWins);
        let x = Obj(0);
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        let v1 = e.read(t1, x);
        let v2 = e.read(t2, x);
        e.write(t1, x, Value(v1.0 + 1));
        e.write(t2, x, Value(v2.0 + 1));
        assert!(e.commit(t1).is_ok());
        // The real SI engine refuses this commit; the mutant loses t1's
        // increment.
        assert!(e.commit(t2).is_ok());
        assert_eq!(e.store.read_at(x, u64::MAX).value, Value(1));
    }

    #[test]
    fn snapshot_lag_misses_own_commit() {
        let mut e = MutantSiEngine::new(1, Mutation::SnapshotLag { lag: 1 });
        let x = Obj(0);
        let t1 = e.begin(0);
        e.write(t1, x, Value(5));
        e.commit(t1).unwrap();
        // Same session: the lagged snapshot excludes its own commit,
        // breaking strong-session SI.
        let t2 = e.begin(0);
        assert_eq!(e.read(t2, x), Value(0));
    }

    #[test]
    fn shard_fcw_skip_loses_updates_on_the_skipped_stripe_only() {
        // Objects 0 and 2 map to stripe 0 (skipped), object 1 to stripe 1.
        let mut e = MutantSiEngine::new(2, Mutation::ShardFcwSkip { shards: 2, skip: 0 });
        let x = Obj(0);
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        let v1 = e.read(t1, x);
        let v2 = e.read(t2, x);
        e.write(t1, x, Value(v1.0 + 1));
        e.write(t2, x, Value(v2.0 + 1));
        assert!(e.commit(t1).is_ok());
        // Stripe 0's validation is gone: the conflicting commit slips
        // through and t1's increment is lost.
        assert!(e.commit(t2).is_ok());
        assert_eq!(e.store.read_at(x, u64::MAX).value, Value(1));

        // The untouched stripe still enforces first-committer-wins.
        let y = Obj(1);
        let t3 = e.begin(0);
        let t4 = e.begin(1);
        e.write(t3, y, Value(1));
        e.write(t4, y, Value(2));
        assert!(e.commit(t3).is_ok());
        assert_eq!(e.commit(t4), Err(AbortReason::WriteConflict(y)));
    }

    #[test]
    fn lock_order_scramble_reports_descending_shards() {
        let probe = std::sync::Arc::new(si_mvcc::VecProbe::new());
        let mut e = MutantSiEngine::new(4, Mutation::ShardLockOrderScramble { shards: 2 });
        e.set_probe(EngineProbe::new(probe.clone()));
        let t = e.begin(0);
        e.write(t, Obj(0), Value(1));
        e.write(t, Obj(1), Value(1));
        assert!(e.commit(t).is_ok());
        let orders: Vec<Vec<usize>> = probe
            .drain()
            .into_iter()
            .filter_map(|ev| match ev {
                ProbeEvent::ShardLocksAcquired { shards, .. } => Some(shards),
                _ => None,
            })
            .collect();
        assert_eq!(orders, vec![vec![1, 0]]);
    }

    #[test]
    fn lag_zero_behaves_like_si() {
        let mut e = MutantSiEngine::new(1, Mutation::SnapshotLag { lag: 0 });
        let x = Obj(0);
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        e.write(t1, x, Value(1));
        e.write(t2, x, Value(2));
        assert!(e.commit(t1).is_ok());
        assert_eq!(e.commit(t2), Err(AbortReason::WriteConflict(x)));
    }
}
