//! Property tests over randomly generated 3-transaction conflict
//! scripts:
//!
//! * **Theorem 9 agreement** — for *every* interleaving the explorer
//!   visits, the SI engine's verdict (the history it committed) agrees
//!   with GraphSI membership of the extracted dependency graph, with the
//!   Definition 4 axioms, with the online monitor, and with the race
//!   detector. Exhaustive exploration makes this a per-workload theorem,
//!   not a sample.
//! * **Replay fidelity** — serialising any schedule as a
//!   [`ReplayScript`], round-tripping it through JSON and replaying
//!   yields a byte-identical history and probe trace.

use proptest::prelude::*;
use si_model::Obj;
use si_mvcc::{Script, Workload};
use si_sanitizer::{
    run_advisory, sanitize, Actor, EngineSpec, ReplayScript, SanitizeConfig, WorkloadSpec,
};

const OBJECTS: usize = 2;

/// One generated operation: `(object, kind)` with kind 0 = read,
/// 1 = constant write, 2 = read-modify-write increment.
type GenOp = (usize, u8);

/// Three transactions, each 1–3 ops, each pinned to one of three
/// sessions — all over two objects, so conflicts are the common case.
fn arb_workload() -> impl Strategy<Value = (Vec<(usize, Vec<GenOp>)>, u8)> {
    (
        proptest::collection::vec(
            (0..3usize, proptest::collection::vec((0..OBJECTS, 0..3u8), 1..4)),
            3..=3,
        ),
        any::<u8>(),
    )
}

fn build_workload(txs: &[(usize, Vec<GenOp>)]) -> Workload {
    let mut sessions: Vec<Vec<Script>> = vec![Vec::new(); 3];
    for (session, ops) in txs {
        let mut script = Script::new();
        let mut regs = 0usize;
        for &(obj, kind) in ops {
            let x = Obj(obj as u32);
            script = match kind {
                0 => {
                    regs += 1;
                    script.read(x)
                }
                1 => script.write_const(x, 41),
                _ => {
                    regs += 1;
                    let reg = regs - 1;
                    script.read(x).write_computed(x, [reg], 1)
                }
            };
        }
        sessions[*session].push(script);
    }
    let mut w = Workload::new(OBJECTS).initial(Obj(0), 10).initial(Obj(1), 20);
    for scripts in sessions {
        if !scripts.is_empty() {
            w = w.session(scripts);
        }
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Exhaustively explore each generated workload against the real SI
    /// engine: every interleaving must satisfy GraphSI (Theorem 9), the
    /// SI axioms, the monitor, and race freedom — i.e. the report is
    /// clean and the tree was fully covered.
    #[test]
    fn si_engine_agrees_with_graph_si_on_every_interleaving(case in arb_workload()) {
        let (txs, _) = &case;
        let workload = build_workload(txs);
        let config = SanitizeConfig {
            max_interleavings: 1_000_000,
            stop_at_first_failure: true,
            ..SanitizeConfig::default()
        };
        let report = sanitize(&EngineSpec::Si, &workload, &config);
        prop_assert!(
            report.is_clean(),
            "SI diverged from its oracles: {:?}",
            report.failures[0].failures
        );
        prop_assert!(!report.budget_exhausted, "tree not fully covered");
    }

    /// Any schedule of any generated workload, captured as a
    /// `ReplayScript` and round-tripped through JSON, replays to a
    /// byte-identical history, probe trace and decision list.
    #[test]
    fn serialized_replay_scripts_reproduce_byte_identically(case in arb_workload()) {
        let (txs, seed) = &case;
        let workload = build_workload(txs);
        // Derive an arbitrary (advisory) schedule from the seed byte.
        let decisions: Vec<Actor> =
            (0..12).map(|i| Actor::Session((usize::from(*seed) + i) % 3)).collect();
        let original = run_advisory(&EngineSpec::Si, &workload, 4, &decisions);

        let script = ReplayScript {
            engine: EngineSpec::Si,
            workload: WorkloadSpec::from_workload(&workload),
            max_retries: 4,
            decisions: original.decisions.clone(),
        };
        let parsed = ReplayScript::from_json(&script.to_json()).expect("parse");
        prop_assert_eq!(&parsed, &script);

        let replayed = parsed.replay();
        prop_assert_eq!(&replayed.result.history, &original.result.history);
        prop_assert_eq!(&replayed.events, &original.events);
        prop_assert_eq!(&replayed.decisions, &original.decisions);
        prop_assert_eq!(
            serde_json::to_string(&replayed.result.history).unwrap(),
            serde_json::to_string(&original.result.history).unwrap()
        );
    }
}
