//! The clean-run theorem: the unmutated engines survive *exhaustive*
//! exploration of every bundled conflict workload with zero oracle
//! divergences and zero races.
//!
//! This is the sanitizer's soundness baseline. Sleep-set DFS enumerates
//! every distinguishable interleaving (Mazurkiewicz-trace-complete), and
//! each completed run must pass the engine's axioms, its dependency-graph
//! class, the online monitor, and the vector-clock race detector. A
//! single false positive here would make every mutant kill meaningless.

use si_sanitizer::{sanitize, scripts, EngineSpec, SanitizeConfig};

fn engines() -> Vec<EngineSpec> {
    vec![
        EngineSpec::Si,
        EngineSpec::Ser,
        EngineSpec::Ssi,
        EngineSpec::Psi { replicas: 2 },
        // The lock-striped engine with GC on every install: the most
        // adversarial configuration (maximum pruning, minimum version
        // retention) must still satisfy the full SI contract on every
        // interleaving.
        EngineSpec::ShardedSi { shards: 2, gc_interval: 1 },
    ]
}

#[test]
fn every_engine_is_clean_on_every_bundled_workload() {
    let config = SanitizeConfig {
        max_interleavings: 2_000_000,
        stop_at_first_failure: true,
        ..SanitizeConfig::default()
    };
    for spec in engines() {
        for (name, workload) in scripts::bundled() {
            let report = sanitize(&spec, &workload, &config);
            assert!(
                report.is_clean(),
                "{} diverged on {name}: {}",
                spec.name(),
                report.failures[0]
                    .failures
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; "),
            );
            assert!(
                !report.budget_exhausted,
                "{} did not finish {name} within budget ({} interleavings)",
                spec.name(),
                report.explored,
            );
            assert_eq!(report.races, 0, "{} raced on {name}", spec.name());
            assert!(report.explored > 0, "{} explored nothing on {name}", spec.name());
        }
    }
}

#[test]
fn conflicting_workloads_have_nontrivial_trees() {
    // Sanity-check that exhaustive mode is actually exploring: the
    // lost-update tree must contain both serial orders and genuinely
    // conflicting schedules (which force retries).
    let report = sanitize(&EngineSpec::Si, &scripts::lost_update(), &SanitizeConfig::default());
    assert!(report.explored >= 4, "suspiciously small tree: {}", report.explored);
}

#[test]
fn pruning_fires_on_bundled_workloads() {
    // Workloads with commuting steps (disjoint objects, independent
    // reads) must trigger sleep-set pruning.
    let report = sanitize(&EngineSpec::Si, &scripts::smallbank_mini(), &SanitizeConfig::default());
    assert!(report.is_clean());
    assert!(report.pruned > 0, "sleep sets pruned nothing on smallbank_mini");
}
