//! Mutant-kill tests: the sanitizer must catch each seeded defect, and
//! the minimised [`ReplayScript`] must reproduce it deterministically.
//!
//! Each mutant claims the full SI contract ([`EngineSpec::expectation`]);
//! the explorer must find an interleaving where the claim breaks, the
//! race detector must name the right happens-before anomaly, ddmin must
//! shrink the schedule, and the packaged JSON repro must fail again —
//! byte-identically — when replayed from a fresh parse.

use si_sanitizer::{
    check_artifacts, sanitize, scripts, EngineSpec, Failure, RaceKind, ReplayScript,
    SanitizeConfig, SanitizeReport,
};

fn kill(spec: &EngineSpec, workload: &si_mvcc::Workload) -> SanitizeReport {
    let report = sanitize(spec, workload, &SanitizeConfig::default());
    assert!(!report.is_clean(), "{} survived exploration", spec.name());
    report
}

fn assert_replay_reproduces(spec: &EngineSpec, replay: &ReplayScript) {
    // Round-trip through JSON: the repro must survive serialisation.
    let json = replay.to_json();
    let parsed = ReplayScript::from_json(&json).expect("replay scripts parse");
    assert_eq!(&parsed, replay);

    let a = parsed.replay();
    let b = parsed.replay();
    // Byte-identical determinism.
    assert_eq!(a.result.history, b.result.history);
    assert_eq!(a.events, b.events);
    assert_eq!(
        serde_json::to_string(&a.result.history).unwrap(),
        serde_json::to_string(&b.result.history).unwrap()
    );
    // And it still fails.
    assert!(!check_artifacts(spec, &a).is_empty(), "minimised replay no longer fails");
}

#[test]
fn drop_fcw_mutant_is_killed_with_minimal_replay() {
    let spec = EngineSpec::MutantDropFcw;
    let report = kill(&spec, &scripts::lost_update());
    let case = &report.failures[0];

    // The defect is concurrent installs: the race detector must say so.
    assert!(
        case.failures
            .iter()
            .any(|f| matches!(f, Failure::Race(r) if r.kind == RaceKind::WwInstall)),
        "expected a WwInstall race, got {:?}",
        case.failures
    );
    // NOCONFLICT (axioms) and GraphSI (Theorem 9) must also reject it.
    assert!(case.failures.iter().any(|f| matches!(f, Failure::Axioms { .. })));
    assert!(case.failures.iter().any(|f| matches!(f, Failure::Graph { .. })));
    assert!(case.failures.iter().any(|f| matches!(f, Failure::Monitor { .. })));

    assert!(case.shrink_steps > 0, "shrinking never ran");
    assert!(case.replay.decisions.len() <= case.found_decisions, "minimisation grew the schedule");
    assert_replay_reproduces(&spec, &case.replay);
}

#[test]
fn snapshot_lag_mutant_is_killed_with_minimal_replay() {
    let spec = EngineSpec::MutantSnapshotLag { lag: 1 };
    let report = kill(&spec, &scripts::session_chain());
    let case = &report.failures[0];

    // The defect is a skipped happens-before-past version.
    assert!(
        case.failures
            .iter()
            .any(|f| matches!(f, Failure::Race(r) if r.kind == RaceKind::StaleRead)),
        "expected a StaleRead race, got {:?}",
        case.failures
    );
    assert_replay_reproduces(&spec, &case.replay);
}

#[test]
fn snapshot_lag_breaks_the_session_axiom() {
    // A same-session write-then-read without contention: the lagged
    // snapshot misses the session's own commit, so the SESSION axiom
    // (SO ⊆ VIS) — not just the race detector — must reject the run.
    let spec = EngineSpec::MutantSnapshotLag { lag: 1 };
    let x = si_model::Obj(0);
    let w = si_mvcc::Workload::new(1)
        .session([si_mvcc::Script::new().write_const(x, 7), si_mvcc::Script::new().read(x)]);
    let report = sanitize(&spec, &w, &SanitizeConfig::default());
    assert!(!report.is_clean());
    let case = &report.failures[0];
    assert!(
        case.failures.iter().any(|f| matches!(f, Failure::Axioms { .. })),
        "expected a SESSION axiom violation, got {:?}",
        case.failures
    );
    assert_replay_reproduces(&spec, &case.replay);
}

#[test]
fn shard_fcw_skip_mutant_is_killed_with_minimal_replay() {
    // lost_update contends on Obj(0), which maps to stripe 0 — exactly
    // the stripe whose validation the mutant dropped.
    let spec = EngineSpec::MutantShardFcwSkip { shards: 2, skip: 0 };
    let report = kill(&spec, &scripts::lost_update());
    let case = &report.failures[0];

    // Same signature as a full FCW drop, scoped to one stripe:
    // concurrent installs, a NOCONFLICT violation, a GraphSI exit.
    assert!(
        case.failures
            .iter()
            .any(|f| matches!(f, Failure::Race(r) if r.kind == RaceKind::WwInstall)),
        "expected a WwInstall race, got {:?}",
        case.failures
    );
    assert!(case.failures.iter().any(|f| matches!(f, Failure::Axioms { .. })));
    assert!(case.failures.iter().any(|f| matches!(f, Failure::Graph { .. })));

    assert!(case.shrink_steps > 0, "shrinking never ran");
    assert!(case.replay.decisions.len() <= case.found_decisions, "minimisation grew the schedule");
    assert_replay_reproduces(&spec, &case.replay);
}

#[test]
fn shard_fcw_skip_spares_the_other_stripe() {
    // The same defect cannot bite on stripe 1: contention on Obj(1) is
    // still validated, so exploration stays clean.
    let spec = EngineSpec::MutantShardFcwSkip { shards: 2, skip: 0 };
    let y = si_model::Obj(1);
    let inc = si_mvcc::Script::new().read(y).write_computed(y, [0], 1);
    let w = si_mvcc::Workload::new(2).session([inc.clone()]).session([inc]);
    let report = sanitize(&spec, &w, &SanitizeConfig::default());
    assert!(report.is_clean(), "validation on the untouched stripe was lost");
}

#[test]
fn shard_lock_order_mutant_is_killed_with_minimal_replay() {
    // read_skew's writer updates Obj(0) and Obj(1) in one transaction —
    // two stripes under `shards: 2`, so the scrambled engine reports a
    // descending acquisition order and the lock-order audit fires.
    let spec = EngineSpec::MutantShardLockOrder { shards: 2 };
    let report = kill(&spec, &scripts::read_skew());
    let case = &report.failures[0];

    assert!(
        case.failures
            .iter()
            .any(|f| matches!(f, Failure::Race(r) if r.kind == RaceKind::ShardLockOrder)),
        "expected a ShardLockOrder hazard, got {:?}",
        case.failures
    );
    // The defect is a deadlock *hazard*, not a value corruption: the
    // recorded run itself still satisfies the SI axioms.
    assert!(
        !case.failures.iter().any(|f| matches!(f, Failure::Axioms { .. })),
        "lock-order scramble should not corrupt values, got {:?}",
        case.failures
    );
    assert_replay_reproduces(&spec, &case.replay);
}

#[test]
fn shard_lock_order_mutant_survives_single_stripe_commits() {
    // A transaction that writes a single stripe has nothing to scramble:
    // a one-element acquisition order is trivially ascending.
    let spec = EngineSpec::MutantShardLockOrder { shards: 2 };
    let report = sanitize(&spec, &scripts::lost_update(), &SanitizeConfig::default());
    assert!(report.is_clean(), "false positive on single-stripe commits");
}

#[test]
fn mutants_survive_workloads_that_cannot_expose_them() {
    // Differential sanity: a mutant is only caught when the defect can
    // bite. Disjoint single-session writes never trigger FCW at all.
    let x = si_model::Obj(0);
    let w = si_mvcc::Workload::new(1).session([si_mvcc::Script::new().write_const(x, 1)]);
    let report = sanitize(&EngineSpec::MutantDropFcw, &w, &SanitizeConfig::default());
    assert!(report.is_clean(), "false positive on a defect-free schedule space");
}
