//! Mutant-kill tests: the sanitizer must catch each seeded defect, and
//! the minimised [`ReplayScript`] must reproduce it deterministically.
//!
//! Each mutant claims the full SI contract ([`EngineSpec::expectation`]);
//! the explorer must find an interleaving where the claim breaks, the
//! race detector must name the right happens-before anomaly, ddmin must
//! shrink the schedule, and the packaged JSON repro must fail again —
//! byte-identically — when replayed from a fresh parse.

use si_sanitizer::{
    check_artifacts, sanitize, scripts, EngineSpec, Failure, RaceKind, ReplayScript,
    SanitizeConfig, SanitizeReport,
};

fn kill(spec: &EngineSpec, workload: &si_mvcc::Workload) -> SanitizeReport {
    let report = sanitize(spec, workload, &SanitizeConfig::default());
    assert!(!report.is_clean(), "{} survived exploration", spec.name());
    report
}

fn assert_replay_reproduces(spec: &EngineSpec, replay: &ReplayScript) {
    // Round-trip through JSON: the repro must survive serialisation.
    let json = replay.to_json();
    let parsed = ReplayScript::from_json(&json).expect("replay scripts parse");
    assert_eq!(&parsed, replay);

    let a = parsed.replay();
    let b = parsed.replay();
    // Byte-identical determinism.
    assert_eq!(a.result.history, b.result.history);
    assert_eq!(a.events, b.events);
    assert_eq!(
        serde_json::to_string(&a.result.history).unwrap(),
        serde_json::to_string(&b.result.history).unwrap()
    );
    // And it still fails.
    assert!(!check_artifacts(spec, &a).is_empty(), "minimised replay no longer fails");
}

#[test]
fn drop_fcw_mutant_is_killed_with_minimal_replay() {
    let spec = EngineSpec::MutantDropFcw;
    let report = kill(&spec, &scripts::lost_update());
    let case = &report.failures[0];

    // The defect is concurrent installs: the race detector must say so.
    assert!(
        case.failures
            .iter()
            .any(|f| matches!(f, Failure::Race(r) if r.kind == RaceKind::WwInstall)),
        "expected a WwInstall race, got {:?}",
        case.failures
    );
    // NOCONFLICT (axioms) and GraphSI (Theorem 9) must also reject it.
    assert!(case.failures.iter().any(|f| matches!(f, Failure::Axioms { .. })));
    assert!(case.failures.iter().any(|f| matches!(f, Failure::Graph { .. })));
    assert!(case.failures.iter().any(|f| matches!(f, Failure::Monitor { .. })));

    assert!(case.shrink_steps > 0, "shrinking never ran");
    assert!(case.replay.decisions.len() <= case.found_decisions, "minimisation grew the schedule");
    assert_replay_reproduces(&spec, &case.replay);
}

#[test]
fn snapshot_lag_mutant_is_killed_with_minimal_replay() {
    let spec = EngineSpec::MutantSnapshotLag { lag: 1 };
    let report = kill(&spec, &scripts::session_chain());
    let case = &report.failures[0];

    // The defect is a skipped happens-before-past version.
    assert!(
        case.failures
            .iter()
            .any(|f| matches!(f, Failure::Race(r) if r.kind == RaceKind::StaleRead)),
        "expected a StaleRead race, got {:?}",
        case.failures
    );
    assert_replay_reproduces(&spec, &case.replay);
}

#[test]
fn snapshot_lag_breaks_the_session_axiom() {
    // A same-session write-then-read without contention: the lagged
    // snapshot misses the session's own commit, so the SESSION axiom
    // (SO ⊆ VIS) — not just the race detector — must reject the run.
    let spec = EngineSpec::MutantSnapshotLag { lag: 1 };
    let x = si_model::Obj(0);
    let w = si_mvcc::Workload::new(1)
        .session([si_mvcc::Script::new().write_const(x, 7), si_mvcc::Script::new().read(x)]);
    let report = sanitize(&spec, &w, &SanitizeConfig::default());
    assert!(!report.is_clean());
    let case = &report.failures[0];
    assert!(
        case.failures.iter().any(|f| matches!(f, Failure::Axioms { .. })),
        "expected a SESSION axiom violation, got {:?}",
        case.failures
    );
    assert_replay_reproduces(&spec, &case.replay);
}

#[test]
fn mutants_survive_workloads_that_cannot_expose_them() {
    // Differential sanity: a mutant is only caught when the defect can
    // bite. Disjoint single-session writes never trigger FCW at all.
    let x = si_model::Obj(0);
    let w = si_mvcc::Workload::new(1).session([si_mvcc::Script::new().write_const(x, 1)]);
    let report = sanitize(&EngineSpec::MutantDropFcw, &w, &SanitizeConfig::default());
    assert!(report.is_clean(), "false positive on a defect-free schedule space");
}
