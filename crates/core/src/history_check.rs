//! Deciding `HistSI` / `HistSER` / `HistPSI` for a history by searching
//! for dependency relations (Theorems 8, 9 and 21 reduce history
//! membership to graph-class membership, quantified over `WR`/`WW`
//! extensions).
//!
//! The underlying problem is NP-complete in general (it subsumes
//! serializability checking), so the search is exact backtracking over
//!
//! * the `WR(x)` witness for every external read — any transaction whose
//!   final write to `x` produced the value read — and
//! * the version order `WW(x)` for every object — any permutation of its
//!   writers,
//!
//! pruned by incremental acyclicity of the class's characteristic
//! relation (edges only ever get added, so a cycle in a partial
//! assignment dooms every completion) and bounded by a node budget.

use core::fmt;

use si_depgraph::{DepGraphBuilder, DependencyGraph};
use si_execution::SpecModel;
use si_model::{History, Obj, TxId};
use si_relations::{ClassKind, DepEdgeKind, IncrementalClass};
use si_telemetry::{Event, Telemetry};

use crate::encoding::{choice_points, ObjChoices};
use crate::membership::GraphClass;

fn class_kind(class: GraphClass) -> ClassKind {
    match class {
        GraphClass::Ser => ClassKind::Ser,
        GraphClass::Si => ClassKind::Si,
        GraphClass::Psi => ClassKind::Psi,
        GraphClass::Pc => ClassKind::Pc,
    }
}

/// Nodes between periodic [`SolverIteration`](Event::SolverIteration)
/// progress events.
const PROGRESS_INTERVAL: u64 = 65_536;

/// Node budget for the backtracking search.
#[derive(Debug, Clone, Copy)]
pub struct SearchBudget {
    /// Maximum number of candidate (partial) assignments explored. Every
    /// search step pays — entering an object's choice point *and* each
    /// step of its `WW` permutation enumeration — so the budget bounds
    /// actual work even on objects with factorially many orders.
    pub max_nodes: u64,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget { max_nodes: 5_000_000 }
    }
}

/// The budget ran out before the search space was exhausted. Carries the
/// partial search statistics accumulated up to that point, so callers can
/// report how far the search got (and pick a bigger budget, or hand the
/// history to the CDCL solver, `si-solve`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchExhausted {
    /// Candidate (partial) assignments explored before the budget died.
    pub nodes_expanded: u64,
    /// Deepest choice point reached (0-based index into the per-object
    /// assignment order; one past the last object when only the final
    /// class check remained).
    pub depth_reached: usize,
}

impl fmt::Display for SearchExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dependency-graph search budget exhausted before a verdict \
             ({} nodes expanded, depth {} reached)",
            self.nodes_expanded, self.depth_reached
        )
    }
}

impl std::error::Error for SearchExhausted {}

/// Decides `history ∈ HistSI/HistSER/HistPSI` by Theorems 8/9/21: the
/// history is allowed iff *some* choice of `WR`/`WW` extends it into a
/// graph of the corresponding class.
///
/// # Errors
///
/// Returns [`SearchExhausted`] if the budget ran out first.
pub fn history_membership(
    model: SpecModel,
    history: &History,
    budget: &SearchBudget,
) -> Result<bool, SearchExhausted> {
    history_witness(model, history, budget).map(|w| w.is_some())
}

/// [`history_membership`] with telemetry: the search reports periodic and
/// final [`SolverIteration`](Event::SolverIteration) events (nodes
/// explored, dead ends pruned, budget exhaustion).
///
/// # Errors
///
/// Returns [`SearchExhausted`] if the budget ran out first.
pub fn history_membership_traced(
    model: SpecModel,
    history: &History,
    budget: &SearchBudget,
    telemetry: &Telemetry,
) -> Result<bool, SearchExhausted> {
    history_witness_traced(model, history, budget, telemetry).map(|w| w.is_some())
}

/// Like [`history_membership`], but returns the witness dependency graph.
///
/// # Errors
///
/// Returns [`SearchExhausted`] if the budget ran out first.
pub fn history_witness(
    model: SpecModel,
    history: &History,
    budget: &SearchBudget,
) -> Result<Option<DependencyGraph>, SearchExhausted> {
    history_witness_traced(model, history, budget, &Telemetry::disabled())
}

/// [`history_witness`] with telemetry (see
/// [`history_membership_traced`]).
///
/// # Errors
///
/// Returns [`SearchExhausted`] if the budget ran out first.
pub fn history_witness_traced(
    model: SpecModel,
    history: &History,
    budget: &SearchBudget,
    telemetry: &Telemetry,
) -> Result<Option<DependencyGraph>, SearchExhausted> {
    let class = match model {
        SpecModel::Si => GraphClass::Si,
        SpecModel::Ser => GraphClass::Ser,
        SpecModel::Psi => GraphClass::Psi,
    };
    history_witness_for_class_traced(class, history, budget, telemetry)
}

/// The class-generic search behind [`history_witness`]; also serves the
/// prefix-consistency extension ([`GraphClass::Pc`]).
pub(crate) fn history_witness_for_class(
    class: GraphClass,
    history: &History,
    budget: &SearchBudget,
) -> Result<Option<DependencyGraph>, SearchExhausted> {
    history_witness_for_class_traced(class, history, budget, &Telemetry::disabled())
}

pub(crate) fn history_witness_for_class_traced(
    class: GraphClass,
    history: &History,
    budget: &SearchBudget,
    telemetry: &Telemetry,
) -> Result<Option<DependencyGraph>, SearchExhausted> {
    // Derive the per-object choice points; encode-time rejection (INT
    // violation or an unjustifiable read) is independent of WR/WW, so no
    // extension can be in any class.
    let Some(choices) = choice_points(history) else {
        return Ok(None);
    };

    // The incremental characteristic relation of the partial assignment:
    // session order is fixed up front; each object's WR/WW/RW edges are
    // fed under a checkpoint as the search assigns them and popped on
    // backtrack (edges are only ever added along a search path, so a
    // violation mid-path dooms every completion — Theorem 9's
    // monotonicity, now paying per-edge instead of per-node rebuilds).
    let mut inc = IncrementalClass::new(class_kind(class), history.tx_count());
    for (a, b) in history.session_order().iter_pairs() {
        inc.add(DepEdgeKind::So, a, b);
    }

    let mut search = Search {
        history,
        class,
        choices: &choices,
        nodes_left: budget.max_nodes,
        max_nodes: budget.max_nodes,
        backtracks: 0,
        deepest: 0,
        telemetry,
        inc,
    };
    let result = search.solve(0, &mut DepGraphBuilder::new(history.clone()));
    let nodes_explored = search.max_nodes - search.nodes_left;
    let backtracks = search.backtracks;
    let exhausted = result.is_err();
    telemetry.emit(|| Event::SolverIteration { nodes_explored, backtracks, exhausted });
    result
}

struct Search<'a> {
    history: &'a History,
    class: GraphClass,
    choices: &'a [ObjChoices],
    nodes_left: u64,
    max_nodes: u64,
    /// Dead ends: partial assignments found doomed, plus complete
    /// assignments failing the final class check.
    backtracks: u64,
    /// Deepest choice point reached, for exhaustion reporting.
    deepest: usize,
    telemetry: &'a Telemetry,
    /// The class's characteristic relation over the partial assignment,
    /// maintained incrementally: SO is fed once up front, each object's
    /// WR/WW/RW edges under a checkpoint as the search assigns them.
    inc: IncrementalClass,
}

impl Search<'_> {
    /// Assigns objects `[at..]`, backtracking on partial-cycle pruning.
    fn solve(
        &mut self,
        at: usize,
        builder: &mut DepGraphBuilder,
    ) -> Result<Option<DependencyGraph>, SearchExhausted> {
        if self.nodes_left == 0 {
            return Err(SearchExhausted {
                nodes_expanded: self.max_nodes,
                depth_reached: self.deepest,
            });
        }
        self.nodes_left -= 1;
        self.deepest = self.deepest.max(at);
        let explored = self.max_nodes - self.nodes_left;
        if explored.is_multiple_of(PROGRESS_INTERVAL) {
            let backtracks = self.backtracks;
            self.telemetry.emit(|| Event::SolverIteration {
                nodes_explored: explored,
                backtracks,
                exhausted: false,
            });
        }

        if at == self.choices.len() {
            let graph = builder
                .clone()
                .build()
                .expect("fully assigned WR/WW with matching values is well-formed");
            if self.class.check(&graph).is_ok() {
                return Ok(Some(graph));
            }
            self.backtracks += 1;
            return Ok(None);
        }

        let choice = &self.choices[at];
        // Enumerate WR assignments (product of candidates) × WW
        // permutations for this object, descending into the next object
        // for each. The builder is mutated in place: `wr` and `ww_order`
        // overwrite this object's entries on every iteration, and entries
        // for objects past `at` are only ever set by deeper frames that
        // themselves overwrite them on re-entry.
        let mut wr_pick = vec![0usize; choice.readers.len()];
        loop {
            // Set the WR choices for this object.
            for (i, (reader, candidates)) in choice.readers.iter().enumerate() {
                builder.wr(choice.obj, candidates[wr_pick[i]], *reader);
            }
            // Enumerate permutations of the writers, keeping the init
            // transaction (which writes the initial version) pinned first.
            let mut writers = choice.writers.clone();
            let mut fixed = 0;
            if let Some(init) = self.history.init_tx() {
                if let Some(pos) = writers.iter().position(|&w| w == init) {
                    writers.swap(0, pos);
                    fixed = 1;
                }
            }
            let found = self.permute_ww(&mut writers, fixed, choice.obj, builder, at)?;
            if found.is_some() {
                return Ok(found);
            }

            // Advance the mixed-radix WR counter.
            let mut i = 0;
            loop {
                if i == wr_pick.len() {
                    return Ok(None);
                }
                wr_pick[i] += 1;
                if wr_pick[i] < choice.readers[i].1.len() {
                    break;
                }
                wr_pick[i] = 0;
                i += 1;
            }
        }
    }

    fn permute_ww(
        &mut self,
        writers: &mut [TxId],
        fixed: usize,
        obj: Obj,
        builder: &mut DepGraphBuilder,
        at: usize,
    ) -> Result<Option<DependencyGraph>, SearchExhausted> {
        // Charge every permutation step, not just complete assignments:
        // an object with many writers has factorially many orders, and a
        // budget that only metered per-object entries would let a single
        // choice point burn unbounded time (the permutation prefixes and
        // the incremental feeds at their leaves) while "exhausting"
        // nothing.
        if self.nodes_left == 0 {
            return Err(SearchExhausted {
                nodes_expanded: self.max_nodes,
                depth_reached: self.deepest,
            });
        }
        self.nodes_left -= 1;
        if fixed == writers.len() {
            builder.ww_order(obj, writers.iter().copied());
            // Prune: feed this object's now-complete WR/WW/RW edges into
            // the incremental characteristic relation under a checkpoint.
            // Edges only ever get added as more objects are assigned, so a
            // violation here dooms every completion; on backtrack the
            // checkpoint pops exactly this object's edges.
            let mark = self.inc.mark();
            let fed = 'feed: {
                for (w, r) in builder.wr_pairs(obj) {
                    if !self.inc.add(DepEdgeKind::Wr, w, r) {
                        break 'feed false;
                    }
                }
                for (a, b) in builder.ww_pairs(obj) {
                    if !self.inc.add(DepEdgeKind::Ww, a, b) {
                        break 'feed false;
                    }
                }
                for (a, b) in builder.rw_pairs(obj) {
                    if !self.inc.add(DepEdgeKind::Rw, a, b) {
                        break 'feed false;
                    }
                }
                true
            };
            if !fed {
                self.inc.undo_to(mark);
                self.backtracks += 1;
                return Ok(None);
            }
            let found = self.solve(at + 1, builder)?;
            if found.is_none() {
                self.inc.undo_to(mark);
            }
            return Ok(found);
        }
        for i in fixed..writers.len() {
            writers.swap(fixed, i);
            let r = self.permute_ww(writers, fixed + 1, obj, builder, at)?;
            if r.is_some() {
                return Ok(r);
            }
            writers.swap(fixed, i);
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_execution::brute::{self, BruteConfig};
    use si_model::{HistoryBuilder, Op};

    fn budget() -> SearchBudget {
        SearchBudget::default()
    }

    fn write_skew() -> History {
        let mut b = HistoryBuilder::new();
        let x = b.object("acct1");
        let y = b.object("acct2");
        let (s1, s2) = (b.session(), b.session());
        b.push_tx(s1, [Op::read(x, 0), Op::read(y, 0), Op::write(x, 1)]);
        b.push_tx(s2, [Op::read(x, 0), Op::read(y, 0), Op::write(y, 1)]);
        b.build()
    }

    fn lost_update() -> History {
        let mut b = HistoryBuilder::new();
        let acct = b.object("acct");
        let (s1, s2) = (b.session(), b.session());
        b.push_tx(s1, [Op::read(acct, 0), Op::write(acct, 50)]);
        b.push_tx(s2, [Op::read(acct, 0), Op::write(acct, 25)]);
        b.build()
    }

    fn long_fork() -> History {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let (s1, s2, s3, s4) = (b.session(), b.session(), b.session(), b.session());
        b.push_tx(s1, [Op::write(x, 1)]);
        b.push_tx(s2, [Op::write(y, 1)]);
        b.push_tx(s3, [Op::read(x, 1), Op::read(y, 0)]);
        b.push_tx(s4, [Op::read(x, 0), Op::read(y, 1)]);
        b.build()
    }

    #[test]
    fn figure2_verdicts() {
        let ws = write_skew();
        let lu = lost_update();
        let lf = long_fork();

        assert!(history_membership(SpecModel::Si, &ws, &budget()).unwrap());
        assert!(!history_membership(SpecModel::Ser, &ws, &budget()).unwrap());
        assert!(history_membership(SpecModel::Psi, &ws, &budget()).unwrap());

        assert!(!history_membership(SpecModel::Si, &lu, &budget()).unwrap());
        assert!(!history_membership(SpecModel::Ser, &lu, &budget()).unwrap());
        assert!(!history_membership(SpecModel::Psi, &lu, &budget()).unwrap());

        assert!(!history_membership(SpecModel::Si, &lf, &budget()).unwrap());
        assert!(!history_membership(SpecModel::Ser, &lf, &budget()).unwrap());
        assert!(history_membership(SpecModel::Psi, &lf, &budget()).unwrap());
    }

    #[test]
    fn graph_search_agrees_with_axiomatic_brute_force() {
        // The decisive cross-validation: for each Figure 2 history and each
        // model, Theorems 8/9/21 (graph search) must agree with
        // Definition 4/20 (brute-force execution search).
        let histories = [write_skew(), lost_update(), long_fork()];
        for h in &histories {
            for model in SpecModel::ALL {
                let via_graphs = history_membership(model, h, &budget()).unwrap();
                let via_axioms = brute::is_allowed(model, h, &BruteConfig::default()).unwrap();
                assert_eq!(via_graphs, via_axioms, "disagreement for {model} on\n{h}");
            }
        }
    }

    #[test]
    fn witness_graph_is_in_class() {
        let h = write_skew();
        let g = history_witness(SpecModel::Si, &h, &budget()).unwrap().unwrap();
        assert!(crate::check_si(&g).is_ok());
    }

    #[test]
    fn int_violation_short_circuits() {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let s = b.session();
        b.push_tx(s, [Op::write(x, 1), Op::read(x, 9)]);
        let h = b.build();
        assert!(!history_membership(SpecModel::Si, &h, &budget()).unwrap());
    }

    #[test]
    fn unjustifiable_read_short_circuits() {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let s = b.session();
        b.push_tx(s, [Op::read(x, 42)]); // nobody ever writes 42
        let h = b.build();
        for model in SpecModel::ALL {
            assert!(!history_membership(model, &h, &budget()).unwrap());
        }
    }

    #[test]
    fn budget_exhaustion_reported_with_partial_stats() {
        let h = long_fork();
        let tiny = SearchBudget { max_nodes: 1 };
        let err = history_membership(SpecModel::Si, &h, &tiny).unwrap_err();
        assert_eq!(err.nodes_expanded, 1);
        // One node in: the search had just entered the first object.
        assert_eq!(err.depth_reached, 0);
        assert!(err.to_string().contains("1 nodes expanded"), "{err}");

        // A budget big enough to descend but not to finish reports the
        // depth the search actually reached.
        let h = write_skew();
        let small = SearchBudget { max_nodes: 4 };
        let err = history_membership(SpecModel::Si, &h, &small).unwrap_err();
        assert_eq!(err.nodes_expanded, 4);
        assert_eq!(err.depth_reached, 1, "{err:?}");
    }

    #[test]
    fn ambiguous_values_are_searched() {
        // Two writers write the same value; only one WR choice yields a
        // serializable graph. T3 reads x=1 and y=2; T1 writes x=1, T2
        // writes x=1 then… keep it simple: two writers of x with equal
        // values, reader must be able to pick either.
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let (s1, s2, s3) = (b.session(), b.session(), b.session());
        b.push_tx(s1, [Op::write(x, 1)]);
        b.push_tx(s2, [Op::write(x, 1)]);
        b.push_tx(s3, [Op::read(x, 1)]);
        let h = b.build();
        assert!(history_membership(SpecModel::Ser, &h, &budget()).unwrap());
    }
}
