//! Human-readable explanations of membership failures: decomposing a
//! Theorem 9 witness cycle (which lives in the *composed* relation
//! `(SO ∪ WR ∪ WW) ; RW?`) back into concrete dependency-graph edges.

use core::fmt;

use si_depgraph::DependencyGraph;
use si_model::Obj;
use si_relations::TxId;

/// A single dependency edge of a graph, with its kind and (for
/// object-indexed kinds) the object it arose from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainedEdge {
    /// Session order.
    So(TxId, TxId),
    /// Read dependency on an object.
    Wr(TxId, TxId, Obj),
    /// Write dependency on an object.
    Ww(TxId, TxId, Obj),
    /// Anti-dependency on an object.
    Rw(TxId, TxId, Obj),
}

impl ExplainedEdge {
    /// Source transaction.
    pub fn from(&self) -> TxId {
        match *self {
            ExplainedEdge::So(a, _)
            | ExplainedEdge::Wr(a, _, _)
            | ExplainedEdge::Ww(a, _, _)
            | ExplainedEdge::Rw(a, _, _) => a,
        }
    }

    /// Target transaction.
    pub fn to(&self) -> TxId {
        match *self {
            ExplainedEdge::So(_, b)
            | ExplainedEdge::Wr(_, b, _)
            | ExplainedEdge::Ww(_, b, _)
            | ExplainedEdge::Rw(_, b, _) => b,
        }
    }

    /// Whether this is an anti-dependency edge.
    pub fn is_rw(&self) -> bool {
        matches!(self, ExplainedEdge::Rw(..))
    }
}

impl fmt::Display for ExplainedEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplainedEdge::So(a, b) => write!(f, "{a} -SO-> {b}"),
            ExplainedEdge::Wr(a, b, x) => write!(f, "{a} -WR({x})-> {b}"),
            ExplainedEdge::Ww(a, b, x) => write!(f, "{a} -WW({x})-> {b}"),
            ExplainedEdge::Rw(a, b, x) => write!(f, "{a} -RW({x})-> {b}"),
        }
    }
}

/// A concrete edge-level cycle of the dependency graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainedCycle {
    /// The edges in order; `edges[i].to() == edges[i+1].from()` and the
    /// last edge closes back to the first vertex.
    pub edges: Vec<ExplainedEdge>,
}

impl ExplainedCycle {
    /// Whether the cycle contains two cyclically-adjacent RW edges — the
    /// only cyclic shape SI admits (Theorem 9). Witness cycles returned by
    /// [`explain_si_violation`] never do.
    pub fn has_adjacent_rw(&self) -> bool {
        let n = self.edges.len();
        (0..n).any(|i| self.edges[i].is_rw() && self.edges[(i + 1) % n].is_rw())
    }
}

impl fmt::Display for ExplainedCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for e in &self.edges {
            if !first {
                write!(f, " ; ")?;
            }
            first = false;
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

/// Finds a concrete dependency edge `a → b` of any non-RW kind.
fn find_dep_edge(graph: &DependencyGraph, a: TxId, b: TxId) -> Option<ExplainedEdge> {
    if graph.so_relation().contains(a, b) {
        return Some(ExplainedEdge::So(a, b));
    }
    for x in graph.objects() {
        if graph.wr_pairs(x).contains(&(a, b)) {
            return Some(ExplainedEdge::Wr(a, b, x));
        }
        if graph.ww_pairs(x).contains(&(a, b)) {
            return Some(ExplainedEdge::Ww(a, b, x));
        }
    }
    None
}

fn find_rw_edge(graph: &DependencyGraph, a: TxId, b: TxId) -> Option<ExplainedEdge> {
    for x in graph.objects() {
        if graph.rw_pairs(x).contains(&(a, b)) {
            return Some(ExplainedEdge::Rw(a, b, x));
        }
    }
    None
}

/// Explains why a graph is outside `GraphSI`: returns an edge-level cycle
/// of the dependency graph with **no two adjacent anti-dependency edges**
/// (the Theorem 9 forbidden shape), or `None` if the graph is in
/// `GraphSI`.
///
/// Each step of the Theorem 9 witness cycle (one `(SO ∪ WR ∪ WW) ; RW?`
/// hop) is decomposed into its dependency edge followed by its optional
/// anti-dependency edge, yielding edges a human (or a test) can check
/// against the history.
pub fn explain_si_violation(graph: &DependencyGraph) -> Option<ExplainedCycle> {
    let composed_cycle = match crate::check_si(graph) {
        Ok(()) => return None,
        Err(crate::MembershipError::Cycle { nodes, .. }) => nodes,
        Err(crate::MembershipError::Int { .. }) => return None, // no cycle to explain
    };
    let dep = graph.dep_relation();
    let rw = graph.rw_relation();

    let mut edges = Vec::new();
    let k = composed_cycle.len();
    for i in 0..k {
        let a = composed_cycle[i];
        let b = composed_cycle[(i + 1) % k];
        // One composed hop a -> b: either a single dep edge, or a dep edge
        // to some midpoint m followed by an RW edge m -> b.
        if dep.contains(a, b) {
            edges.push(find_dep_edge(graph, a, b).expect("dep relation edge has a concrete kind"));
            continue;
        }
        let mid = dep
            .successors(a)
            .iter()
            .find(|&m| rw.contains(m, b))
            .expect("composed hop must decompose as dep;rw");
        edges.push(find_dep_edge(graph, a, mid).expect("dep edge exists"));
        edges.push(find_rw_edge(graph, mid, b).expect("rw edge exists"));
    }
    Some(ExplainedCycle { edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_depgraph::DepGraphBuilder;
    use si_model::{HistoryBuilder, Op};

    fn lost_update() -> DependencyGraph {
        let mut b = HistoryBuilder::new();
        let acct = b.object("acct");
        let (s1, s2) = (b.session(), b.session());
        b.push_tx(s1, [Op::read(acct, 0), Op::write(acct, 50)]);
        b.push_tx(s2, [Op::read(acct, 0), Op::write(acct, 25)]);
        let h = b.build();
        let mut g = DepGraphBuilder::new(h);
        g.infer_wr();
        g.build().unwrap()
    }

    fn write_skew() -> DependencyGraph {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let (s1, s2) = (b.session(), b.session());
        b.push_tx(s1, [Op::read(x, 0), Op::read(y, 0), Op::write(x, 1)]);
        b.push_tx(s2, [Op::read(x, 0), Op::read(y, 0), Op::write(y, 1)]);
        let h = b.build();
        let mut g = DepGraphBuilder::new(h);
        g.infer_wr();
        g.build().unwrap()
    }

    #[test]
    fn lost_update_explained() {
        let g = lost_update();
        let cycle = explain_si_violation(&g).expect("lost update violates SI");
        // Edges form a genuine cycle…
        for w in cycle.edges.windows(2) {
            assert_eq!(w[0].to(), w[1].from());
        }
        assert_eq!(cycle.edges.last().unwrap().to(), cycle.edges.first().unwrap().from());
        // …with the forbidden shape: no two adjacent RWs.
        assert!(!cycle.has_adjacent_rw(), "witness must be the forbidden shape: {cycle}");
        // Rendered form mentions the object (dense id form).
        assert!(cycle.to_string().contains("(x0)"), "got: {cycle}");
    }

    #[test]
    fn members_are_not_explained() {
        assert_eq!(explain_si_violation(&write_skew()), None);
    }

    #[test]
    fn edges_exist_in_the_graph() {
        let g = lost_update();
        let cycle = explain_si_violation(&g).unwrap();
        for e in &cycle.edges {
            match *e {
                ExplainedEdge::So(a, b) => assert!(g.so_relation().contains(a, b)),
                ExplainedEdge::Wr(a, b, x) => assert!(g.wr_pairs(x).contains(&(a, b))),
                ExplainedEdge::Ww(a, b, x) => assert!(g.ww_pairs(x).contains(&(a, b))),
                ExplainedEdge::Rw(a, b, x) => assert!(g.rw_pairs(x).contains(&(a, b))),
            }
        }
    }
}
