//! Graph-class membership: Theorems 8, 9 and 21.
//!
//! Each acyclicity check has two implementations:
//!
//! * a **dense** one-shot pass — build the composed relation with the
//!   bitset [`Relation`](si_relations::Relation) algebra and run
//!   [`find_cycle`](si_relations::Relation::find_cycle); and
//! * an **incremental** pass — feed the graph's labelled edges into an
//!   [`IncrementalClass`], which maintains the composed relation under
//!   online topological-order maintenance and stops at the first
//!   violating edge.
//!
//! For SER and SI the incremental pass takes over above
//! [`INCREMENTAL_CROSSOVER`] transactions, where the dense `O(n³/64)`
//! composition dominates; below it, the word-parallel dense algebra is
//! faster than per-edge bookkeeping. PSI stays dense at every size for
//! one-shot checks: its condition needs `D⁺`, and a single word-parallel
//! Warshall closure beats per-edge reachability sweeps when the whole
//! graph is already known (the incremental PSI engine earns its keep in
//! the *streaming* monitor, where re-running the closure per append is
//! the `O(n⁴/64)` alternative).

use core::fmt;

use si_depgraph::DependencyGraph;
use si_model::IntViolation;
use si_relations::{ClassKind, DepEdgeKind, IncrementalClass, TxId};
use si_telemetry::{Event, SpanTimer, Telemetry};

/// Transaction count at which the SER/SI membership checks switch from
/// the dense bitset pass to the incremental engine.
pub const INCREMENTAL_CROSSOVER: usize = 256;

/// Feeds every labelled dependency edge of `graph` into a fresh
/// [`IncrementalClass`], stopping at the first violation. Session order
/// first (it is shared by every class), then per object: read
/// dependencies, write dependencies, anti-dependencies.
fn feed_class(kind: ClassKind, graph: &DependencyGraph) -> IncrementalClass {
    let n = graph.history().tx_count();
    let mut class = IncrementalClass::new(kind, n);
    'feed: {
        for (a, b) in graph.so_relation().iter_pairs() {
            if !class.add(DepEdgeKind::So, a, b) {
                break 'feed;
            }
        }
        for x in graph.objects() {
            for (a, b) in graph.wr_pairs(x) {
                if !class.add(DepEdgeKind::Wr, a, b) {
                    break 'feed;
                }
            }
            for (a, b) in graph.ww_pairs(x) {
                if !class.add(DepEdgeKind::Ww, a, b) {
                    break 'feed;
                }
            }
            for (a, b) in graph.rw_pairs(x) {
                if !class.add(DepEdgeKind::Rw, a, b) {
                    break 'feed;
                }
            }
        }
    }
    class
}

/// Whether `SO ∪ WR ∪ WW ∪ RW` is acyclic — SER's characteristic test
/// (Theorem 8) without the INT precondition. Picks the dense or
/// incremental engine by [`INCREMENTAL_CROSSOVER`].
pub fn ser_characteristic_acyclic(graph: &DependencyGraph) -> bool {
    if graph.history().tx_count() >= INCREMENTAL_CROSSOVER {
        feed_class(ClassKind::Ser, graph).is_consistent()
    } else {
        graph.all_relation().is_acyclic()
    }
}

/// Whether `(SO ∪ WR ∪ WW) ; RW?` is acyclic — SI's characteristic test
/// (Theorem 9) without the INT precondition. Picks the dense or
/// incremental engine by [`INCREMENTAL_CROSSOVER`].
pub fn si_characteristic_acyclic(graph: &DependencyGraph) -> bool {
    if graph.history().tx_count() >= INCREMENTAL_CROSSOVER {
        feed_class(ClassKind::Si, graph).is_consistent()
    } else {
        graph.dep_relation().compose_opt(&graph.rw_relation()).is_acyclic()
    }
}

/// Whether `(SO ∪ WR ∪ WW)⁺ ; RW?` is irreflexive — PSI's characteristic
/// test (Theorem 21) without the INT precondition. Always dense (module
/// docs explain why one-shot PSI keeps the Warshall closure).
pub fn psi_characteristic_irreflexive(graph: &DependencyGraph) -> bool {
    let composed = graph.dep_relation().transitive_closure().compose_opt(&graph.rw_relation());
    graph.history().tx_ids().all(|t| !composed.contains(t, t))
}

/// The dependency-graph classes characterising the three consistency
/// models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphClass {
    /// `GraphSER` (Theorem 8): acyclic `SO ∪ WR ∪ WW ∪ RW`.
    Ser,
    /// `GraphSI` (Theorem 9): acyclic `(SO ∪ WR ∪ WW) ; RW?`.
    Si,
    /// `GraphPSI` (Theorem 21): irreflexive `(SO ∪ WR ∪ WW)⁺ ; RW?`.
    Psi,
    /// `GraphPC` (this repository's §7 extension): acyclic
    /// `((SO ∪ WR) ; RW?) ∪ WW` — prefix consistency, SI without
    /// NOCONFLICT. See [`crate::pc`].
    Pc,
}

impl GraphClass {
    /// Checks membership of `graph` in this class.
    ///
    /// # Errors
    ///
    /// See [`check_ser`], [`check_si`], [`check_psi`],
    /// [`crate::pc::check_pc_graph`].
    pub fn check(self, graph: &DependencyGraph) -> Result<(), MembershipError> {
        match self {
            GraphClass::Ser => check_ser(graph),
            GraphClass::Si => check_si(graph),
            GraphClass::Psi => check_psi(graph),
            GraphClass::Pc => crate::pc::check_pc_graph(graph),
        }
    }

    /// Like [`GraphClass::check`], reporting composed-relation sizes and
    /// check timings through `telemetry`.
    ///
    /// # Errors
    ///
    /// Same as [`GraphClass::check`].
    pub fn check_traced(
        self,
        graph: &DependencyGraph,
        telemetry: &Telemetry,
    ) -> Result<(), MembershipError> {
        match self {
            GraphClass::Ser => check_ser_traced(graph, telemetry),
            GraphClass::Si => check_si_traced(graph, telemetry),
            GraphClass::Psi => check_psi_traced(graph, telemetry),
            GraphClass::Pc => {
                let timer = SpanTimer::start();
                let result = crate::pc::check_pc_graph(graph);
                let nanos = timer.elapsed_nanos();
                let ok = result.is_ok();
                telemetry.emit(|| Event::VerdictEmitted { check: "check_pc", ok, nanos });
                result
            }
        }
    }
}

impl fmt::Display for GraphClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphClass::Ser => write!(f, "GraphSER"),
            GraphClass::Si => write!(f, "GraphSI"),
            GraphClass::Psi => write!(f, "GraphPSI"),
            GraphClass::Pc => write!(f, "GraphPC"),
        }
    }
}

/// Why a dependency graph is not in the queried class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipError {
    /// A transaction violates internal consistency.
    Int {
        /// The offending transaction.
        tx: TxId,
        /// The violation.
        violation: IntViolation,
    },
    /// The class's characteristic relation has a cycle. The vertices are a
    /// cycle of the *composed* relation named by the class (for `GraphSI`,
    /// each step is one `SO/WR/WW` edge optionally followed by one `RW`
    /// edge; for `GraphPSI` a `D⁺`-path optionally followed by one `RW`
    /// edge; for `GraphSER` a single edge).
    Cycle {
        /// The class whose condition failed.
        class: GraphClass,
        /// A witness cycle in the composed relation (first vertex not
        /// repeated).
        nodes: Vec<TxId>,
    },
}

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MembershipError::Int { tx, violation } => {
                write!(f, "INT fails in {tx}: {violation}")
            }
            MembershipError::Cycle { class, nodes } => {
                write!(f, "not in {class}: witness cycle ")?;
                for n in nodes {
                    write!(f, "{n} -> ")?;
                }
                match nodes.first() {
                    Some(first) => write!(f, "{first}"),
                    None => write!(f, "<empty>"),
                }
            }
        }
    }
}

impl std::error::Error for MembershipError {}

fn check_int(graph: &DependencyGraph) -> Result<(), MembershipError> {
    graph.history().check_int().map_err(|(tx, violation)| MembershipError::Int { tx, violation })
}

/// Theorem 8 (after Adya): `G ∈ GraphSER` iff `T_G ⊨ INT` and
/// `SO ∪ WR ∪ WW ∪ RW` is acyclic.
///
/// # Errors
///
/// Returns the INT violation or a witness cycle.
pub fn check_ser(graph: &DependencyGraph) -> Result<(), MembershipError> {
    check_ser_traced(graph, &Telemetry::disabled())
}

/// [`check_ser`] with telemetry: emits one
/// [`CycleSearchStep`](Event::CycleSearchStep) with the size of
/// `SO ∪ WR ∪ WW ∪ RW` and one [`VerdictEmitted`](Event::VerdictEmitted)
/// with the acyclicity-check wall-clock time.
///
/// # Errors
///
/// Same as [`check_ser`].
pub fn check_ser_traced(
    graph: &DependencyGraph,
    telemetry: &Telemetry,
) -> Result<(), MembershipError> {
    check_int(graph)?;
    let timer = SpanTimer::start();
    let (cycle, edges, visited, reordered) = if graph.history().tx_count() >= INCREMENTAL_CROSSOVER
    {
        let class = feed_class(ClassKind::Ser, graph);
        let stats = class.stats();
        let cycle = class.violation().map(<[TxId]>::to_vec);
        (cycle, class.maintained_edge_count(), stats.visited, stats.reordered)
    } else {
        let all = graph.all_relation();
        (all.find_cycle(), all.edge_count(), 0, 0)
    };
    let nanos = timer.elapsed_nanos();
    telemetry.emit(|| Event::CycleSearchStep {
        check: "check_ser",
        nodes: graph.history().tx_count() as u64,
        edges: edges as u64,
        visited,
        reordered,
    });
    let ok = cycle.is_none();
    telemetry.emit(|| Event::VerdictEmitted { check: "check_ser", ok, nanos });
    match cycle {
        None => Ok(()),
        Some(nodes) => Err(MembershipError::Cycle { class: GraphClass::Ser, nodes }),
    }
}

/// Theorem 9 — the paper's central result: `G ∈ GraphSI` iff `T_G ⊨ INT`
/// and `(SO ∪ WR ∪ WW) ; RW?` is acyclic. Equivalently, every cycle of `G`
/// has at least two *adjacent* anti-dependency edges (the SI write-skew
/// shape is the only cyclic shape SI admits).
///
/// # Errors
///
/// Returns the INT violation or a witness cycle of the composed relation.
pub fn check_si(graph: &DependencyGraph) -> Result<(), MembershipError> {
    check_si_traced(graph, &Telemetry::disabled())
}

/// [`check_si`] with telemetry: emits one
/// [`CycleSearchStep`](Event::CycleSearchStep) with the size of the
/// composed relation `(SO ∪ WR ∪ WW) ; RW?` and one
/// [`VerdictEmitted`](Event::VerdictEmitted) with the composition +
/// acyclicity wall-clock time.
///
/// # Errors
///
/// Same as [`check_si`].
pub fn check_si_traced(
    graph: &DependencyGraph,
    telemetry: &Telemetry,
) -> Result<(), MembershipError> {
    check_int(graph)?;
    let timer = SpanTimer::start();
    let (cycle, edges, visited, reordered) = if graph.history().tx_count() >= INCREMENTAL_CROSSOVER
    {
        let class = feed_class(ClassKind::Si, graph);
        let stats = class.stats();
        let cycle = class.violation().map(<[TxId]>::to_vec);
        (cycle, class.maintained_edge_count(), stats.visited, stats.reordered)
    } else {
        let composed = graph.dep_relation().compose_opt(&graph.rw_relation());
        (composed.find_cycle(), composed.edge_count(), 0, 0)
    };
    let nanos = timer.elapsed_nanos();
    telemetry.emit(|| Event::CycleSearchStep {
        check: "check_si",
        nodes: graph.history().tx_count() as u64,
        edges: edges as u64,
        visited,
        reordered,
    });
    let ok = cycle.is_none();
    telemetry.emit(|| Event::VerdictEmitted { check: "check_si", ok, nanos });
    match cycle {
        None => Ok(()),
        Some(nodes) => Err(MembershipError::Cycle { class: GraphClass::Si, nodes }),
    }
}

/// Theorem 21 (after \[11\]): `G ∈ GraphPSI` iff `T_G ⊨ INT` and
/// `(SO ∪ WR ∪ WW)⁺ ; RW?` is irreflexive. Equivalently, every cycle of
/// `G` has at least two anti-dependency edges (not necessarily adjacent).
///
/// # Errors
///
/// Returns the INT violation or a witness: the transaction `T` with
/// `(T, T)` in the composed relation.
pub fn check_psi(graph: &DependencyGraph) -> Result<(), MembershipError> {
    check_psi_traced(graph, &Telemetry::disabled())
}

/// [`check_psi`] with telemetry: emits one
/// [`CycleSearchStep`](Event::CycleSearchStep) with the size of the
/// composed relation `(SO ∪ WR ∪ WW)⁺ ; RW?` and one
/// [`VerdictEmitted`](Event::VerdictEmitted) with the closure +
/// irreflexivity wall-clock time.
///
/// # Errors
///
/// Same as [`check_psi`].
pub fn check_psi_traced(
    graph: &DependencyGraph,
    telemetry: &Telemetry,
) -> Result<(), MembershipError> {
    check_int(graph)?;
    let timer = SpanTimer::start();
    let dep_plus = graph.dep_relation().transitive_closure();
    let composed = dep_plus.compose_opt(&graph.rw_relation());
    let reflexive = graph.history().tx_ids().find(|&t| composed.contains(t, t));
    let nanos = timer.elapsed_nanos();
    telemetry.emit(|| Event::CycleSearchStep {
        check: "check_psi",
        nodes: graph.history().tx_count() as u64,
        edges: composed.edge_count() as u64,
        visited: 0,
        reordered: 0,
    });
    let ok = reflexive.is_none();
    telemetry.emit(|| Event::VerdictEmitted { check: "check_psi", ok, nanos });
    match reflexive {
        None => Ok(()),
        Some(t) => Err(MembershipError::Cycle { class: GraphClass::Psi, nodes: vec![t] }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_depgraph::DepGraphBuilder;
    use si_model::{HistoryBuilder, Op};

    /// Figure 2(d): write skew — SI and PSI, not SER.
    fn write_skew() -> DependencyGraph {
        let mut b = HistoryBuilder::new();
        let x = b.object("acct1");
        let y = b.object("acct2");
        let (s1, s2) = (b.session(), b.session());
        b.push_tx(s1, [Op::read(x, 0), Op::read(y, 0), Op::write(x, 1)]);
        b.push_tx(s2, [Op::read(x, 0), Op::read(y, 0), Op::write(y, 1)]);
        let h = b.build();
        let mut g = DepGraphBuilder::new(h);
        g.infer_wr();
        g.build().unwrap()
    }

    /// Figure 2(b): lost update — none of the three.
    fn lost_update() -> DependencyGraph {
        let mut b = HistoryBuilder::new();
        let acct = b.object("acct");
        let (s1, s2) = (b.session(), b.session());
        b.push_tx(s1, [Op::read(acct, 0), Op::write(acct, 50)]);
        b.push_tx(s2, [Op::read(acct, 0), Op::write(acct, 25)]);
        let h = b.build();
        let mut g = DepGraphBuilder::new(h);
        g.infer_wr();
        g.build().unwrap()
    }

    /// Figure 2(c): long fork — PSI only.
    fn long_fork() -> DependencyGraph {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let (s1, s2, s3, s4) = (b.session(), b.session(), b.session(), b.session());
        b.push_tx(s1, [Op::write(x, 1)]);
        b.push_tx(s2, [Op::write(y, 1)]);
        b.push_tx(s3, [Op::read(x, 1), Op::read(y, 0)]);
        b.push_tx(s4, [Op::read(x, 0), Op::read(y, 1)]);
        let h = b.build();
        let mut g = DepGraphBuilder::new(h);
        g.infer_wr();
        g.build().unwrap()
    }

    /// A serializable chain: in all three classes.
    fn serial_chain() -> DependencyGraph {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let s = b.session();
        b.push_tx(s, [Op::write(x, 1)]);
        b.push_tx(s, [Op::read(x, 1), Op::write(x, 2)]);
        let h = b.build();
        let mut g = DepGraphBuilder::new(h);
        g.infer_wr();
        g.build().unwrap()
    }

    #[test]
    fn write_skew_class_memberships() {
        let g = write_skew();
        assert!(check_si(&g).is_ok());
        assert!(check_psi(&g).is_ok());
        let err = check_ser(&g).unwrap_err();
        assert!(matches!(err, MembershipError::Cycle { class: GraphClass::Ser, .. }));
    }

    #[test]
    fn lost_update_class_memberships() {
        let g = lost_update();
        assert!(check_si(&g).is_err());
        assert!(check_psi(&g).is_err());
        assert!(check_ser(&g).is_err());
    }

    #[test]
    fn long_fork_class_memberships() {
        let g = long_fork();
        assert!(check_psi(&g).is_ok());
        assert!(check_si(&g).is_err());
        assert!(check_ser(&g).is_err());
    }

    #[test]
    fn serial_chain_in_all_classes() {
        let g = serial_chain();
        for class in [GraphClass::Ser, GraphClass::Si, GraphClass::Psi] {
            assert!(class.check(&g).is_ok(), "{class} rejected a serial chain");
        }
    }

    #[test]
    fn si_witness_cycle_is_reported() {
        let g = lost_update();
        let MembershipError::Cycle { class, nodes } = check_si(&g).unwrap_err() else {
            panic!("expected a cycle");
        };
        assert_eq!(class, GraphClass::Si);
        assert!(!nodes.is_empty());
        let composed = g.dep_relation().compose_opt(&g.rw_relation());
        for w in nodes.windows(2) {
            assert!(composed.contains(w[0], w[1]));
        }
        assert!(composed.contains(*nodes.last().unwrap(), nodes[0]));
    }

    #[test]
    fn incremental_feed_agrees_with_dense_on_canonical_graphs() {
        // The canonical graphs all satisfy INT, so the dense check_*
        // verdicts are exactly the characteristic tests — which the
        // incremental feed must reproduce for every class.
        for g in [write_skew(), lost_update(), long_fork(), serial_chain()] {
            let expectations = [
                (ClassKind::Ser, check_ser(&g).is_ok()),
                (ClassKind::Si, check_si(&g).is_ok()),
                (ClassKind::Psi, check_psi(&g).is_ok()),
                (ClassKind::Pc, crate::pc::check_pc_graph(&g).is_ok()),
            ];
            for (kind, dense_ok) in expectations {
                assert_eq!(feed_class(kind, &g).is_consistent(), dense_ok, "{kind:?}");
            }
        }
    }

    #[test]
    fn characteristic_helpers_match_checks_on_int_satisfying_graphs() {
        for g in [write_skew(), lost_update(), long_fork(), serial_chain()] {
            assert_eq!(ser_characteristic_acyclic(&g), check_ser(&g).is_ok());
            assert_eq!(si_characteristic_acyclic(&g), check_si(&g).is_ok());
            assert_eq!(psi_characteristic_irreflexive(&g), check_psi(&g).is_ok());
        }
    }

    #[test]
    fn int_violation_blocks_all_classes() {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let s = b.session();
        b.push_tx(s, [Op::write(x, 1), Op::read(x, 2)]);
        let h = b.build();
        let g = DepGraphBuilder::new(h).build().unwrap();
        for class in [GraphClass::Ser, GraphClass::Si, GraphClass::Psi] {
            assert!(matches!(class.check(&g), Err(MembershipError::Int { .. })));
        }
    }

    #[test]
    fn class_inclusions_on_examples() {
        // GraphSER ⊆ GraphSI ⊆ GraphPSI on all four canonical graphs.
        for g in [write_skew(), lost_update(), long_fork(), serial_chain()] {
            if check_ser(&g).is_ok() {
                assert!(check_si(&g).is_ok());
            }
            if check_si(&g).is_ok() {
                assert!(check_psi(&g).is_ok());
            }
        }
    }
}
