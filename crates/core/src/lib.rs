//! The dependency-graph characterisations of snapshot isolation,
//! serializability and parallel snapshot isolation — the primary
//! contribution of *Analysing Snapshot Isolation* (Cerone & Gotsman,
//! PODC 2016).
//!
//! # Membership (Theorems 8, 9, 21)
//!
//! With `D = SO ∪ WR ∪ WW` and `R?` denoting `R ∪ id` under composition:
//!
//! * **Serializability** ([`check_ser`]): `G ∈ GraphSER` iff `T_G ⊨ INT`
//!   and `SO ∪ WR ∪ WW ∪ RW` is acyclic (Theorem 8, after Adya).
//! * **Snapshot isolation** ([`check_si`]): `G ∈ GraphSI` iff `T_G ⊨ INT`
//!   and `D ; RW?` is acyclic (Theorem 9) — equivalently, every cycle of
//!   `G` has at least two *adjacent* anti-dependency edges.
//! * **Parallel SI** ([`check_psi`]): `G ∈ GraphPSI` iff `T_G ⊨ INT` and
//!   `D⁺ ; RW?` is irreflexive (Theorem 21) — every cycle has at least two
//!   anti-dependency edges, adjacent or not.
//!
//! # Soundness construction (Lemma 15, Theorem 10(i))
//!
//! [`smallest_solution`] computes the least solution of the Figure 3
//! inequalities with a set `R` of enforced commit-order edges:
//!
//! ```text
//! VIS = ((D ; RW?) ∪ R)* ; D        CO = ((D ; RW?) ∪ R)+
//! ```
//!
//! [`execution_from_graph`] turns any `G ∈ GraphSI` into a concrete
//! execution `X ∈ ExecSI` with `graph(X) = G`, by enforcing a full
//! linearisation of the base commit order in one step;
//! [`execution_from_graph_iterative`] follows the paper's proof literally,
//! enforcing one unrelated pair at a time. Both outputs are checked against
//! each other and against the axioms in this crate's tests.
//!
//! # History membership
//!
//! [`history_membership`] decides `H ∈ HistSI/HistSER/HistPSI` by searching
//! for dependency relations extending the history into a member of the
//! corresponding graph class — the NP-complete problem a runtime checker
//! (à la Elle) solves, here with exact backtracking plus budget.
//!
//! # Example
//!
//! ```
//! use si_core::{check_ser, check_si, execution_from_graph};
//! use si_depgraph::DepGraphBuilder;
//! use si_execution::SpecModel;
//! use si_model::{HistoryBuilder, Op};
//! use si_relations::TxId;
//!
//! // Write skew (Figure 2(d)).
//! let mut b = HistoryBuilder::new();
//! let x = b.object("acct1");
//! let y = b.object("acct2");
//! let (s1, s2) = (b.session(), b.session());
//! b.push_tx(s1, [Op::read(x, 0), Op::read(y, 0), Op::write(x, 1)]);
//! b.push_tx(s2, [Op::read(x, 0), Op::read(y, 0), Op::write(y, 1)]);
//! let h = b.build();
//! let mut g = DepGraphBuilder::new(h);
//! g.infer_wr();
//! let g = g.build().unwrap();
//!
//! assert!(check_si(&g).is_ok());   // allowed by SI…
//! assert!(check_ser(&g).is_err()); // …but not serializable
//!
//! // Theorem 10(i): materialise an actual SI execution realising G.
//! let exec = execution_from_graph(&g).unwrap();
//! assert!(SpecModel::Si.check(&exec).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod anomaly;
mod construct;
pub mod encoding;
mod explain;
mod history_check;
mod membership;
mod monitor;
pub mod pc;
mod solve;

pub use anomaly::{classify_graph, classify_history, Classification};
pub use construct::{execution_from_graph, execution_from_graph_iterative, NotInGraphSi};
pub use encoding::{choice_points, ObjChoices};
pub use explain::{explain_si_violation, ExplainedCycle, ExplainedEdge};
pub use history_check::{
    history_membership, history_membership_traced, history_witness, history_witness_traced,
    SearchBudget, SearchExhausted,
};
pub use membership::{
    check_psi, check_psi_traced, check_ser, check_ser_traced, check_si, check_si_traced,
    psi_characteristic_irreflexive, ser_characteristic_acyclic, si_characteristic_acyclic,
    GraphClass, MembershipError, INCREMENTAL_CROSSOVER,
};
pub use monitor::{MonitorVerdict, ObservedTx, SiMonitor};
pub use solve::{smallest_solution, Solution};
