//! Prefix consistency: carrying out the paper's §7 programme.
//!
//! §7 closes with: *"we expect that the approach to constructing a total
//! commit order from transactional dependencies in the proof of our
//! soundness theorem can be used to give dependency graph
//! characterisations to other consistency models whose formulation
//! includes similar total orders, such as prefix consistency \[33\]."*
//!
//! This module does exactly that. Prefix consistency (PC) is SI without
//! write-conflict detection: `ExecPC = INT ∧ EXT ∧ SESSION ∧ PREFIX`.
//! Dropping NOCONFLICT removes the requirement `WW ⊆ VIS`, so the
//! Figure 3 inequality system relaxes to (with `D' = SO ∪ WR`):
//!
//! ```text
//! (P1) SO ∪ WR ⊆ VIS     (P2) CO ; VIS ⊆ VIS    (P3) VIS ⊆ CO
//! (P4) CO ; CO ⊆ CO      (P5) VIS ; RW ⊆ CO     (P6) WW ⊆ CO
//! ```
//!
//! whose least solution, by the Lemma 15 argument verbatim, is
//!
//! ```text
//! CO = ((D' ; RW?) ∪ WW ∪ R)⁺        VIS = ((D' ; RW?) ∪ WW ∪ R)* ; D'
//! ```
//!
//! giving the characterisation
//!
//! > **GraphPC** `= {G | T_G ⊨ INT ∧ ((SO ∪ WR) ; RW?) ∪ WW is acyclic}`.
//!
//! Soundness follows by replaying the Theorem 10(i) construction with the
//! relaxed base; completeness because every PC execution satisfies
//! (P1)–(P6) (Lemma 12 and Proposition 14 never used NOCONFLICT). Both
//! directions are *mechanically validated* in this repository: the
//! construction's output is checked against the PC axioms with
//! `graph(X) = G`, and on exhaustively/randomly generated tiny histories
//! graph-level membership coincides with brute-force search over
//! executions (`si_execution::brute::is_allowed_pc`).
//!
//! Sanity corollaries, also tested: `GraphSI ⊆ GraphPC` (SI = PC +
//! NOCONFLICT), and lost update — rejected by SI — is admitted by PC.

use si_depgraph::DependencyGraph;
use si_execution::AbstractExecution;
use si_relations::{Relation, TxId};

use crate::membership::{GraphClass, MembershipError};
use crate::NotInGraphSi;

/// The PC base relation `((SO ∪ WR) ; RW?) ∪ WW`.
fn pc_base(graph: &DependencyGraph) -> Relation {
    let mut d_prime = graph.so_relation();
    d_prime.union_with(&graph.wr_relation());
    let mut base = d_prime.compose_opt(&graph.rw_relation());
    base.union_with(&graph.ww_relation());
    base
}

/// Membership in `GraphPC`: `T_G ⊨ INT` and `((SO ∪ WR) ; RW?) ∪ WW`
/// acyclic — the derived prefix-consistency characterisation (module
/// docs).
///
/// # Errors
///
/// Returns the INT violation or a witness cycle of the base relation
/// (reported under [`GraphClass::Si`]'s sibling formatting with the
/// composed-relation granularity: each step is one `SO`/`WR` edge
/// optionally followed by an `RW` edge, or a single `WW` edge).
pub fn check_pc_graph(graph: &DependencyGraph) -> Result<(), MembershipError> {
    graph
        .history()
        .check_int()
        .map_err(|(tx, violation)| MembershipError::Int { tx, violation })?;
    match pc_base(graph).find_cycle() {
        None => Ok(()),
        Some(nodes) => Err(MembershipError::Cycle { class: GraphClass::Pc, nodes }),
    }
}

/// The Theorem 10(i)-style soundness construction for PC: builds an
/// execution satisfying the PC axioms with `graph(X) = G`, by enforcing a
/// linearisation of the PC base commit order.
///
/// # Errors
///
/// Returns a witness cycle if `G ∉ GraphPC`.
pub fn execution_from_graph_pc(graph: &DependencyGraph) -> Result<AbstractExecution, NotInGraphSi> {
    let n = graph.tx_count();
    let base = pc_base(graph);
    let linear = match base.transitive_closure().topo_sort() {
        Ok(order) => order,
        Err(_) => {
            let cycle = base.find_cycle().expect("closure cyclic implies base cyclic");
            return Err(NotInGraphSi { cycle });
        }
    };
    let mut total = Relation::new(n);
    for (i, &a) in linear.iter().enumerate() {
        for &b in &linear[i + 1..] {
            total.insert(a, b);
        }
    }
    // Least solution with R = the full linearisation: CO = total,
    // VIS = total* ; D' = D' ∪ (total ; D').
    let mut d_prime = graph.so_relation();
    d_prime.union_with(&graph.wr_relation());
    let vis = total.reflexive_transitive_closure().compose(&d_prime);
    let exec = AbstractExecution::new(graph.history().clone(), vis, total)
        .expect("solutions of the PC system are structurally valid");
    Ok(exec)
}

/// Decides `H ∈ HistPC` by searching WR/WW extensions for a `GraphPC`
/// member (the PC analogue of
/// [`history_membership`](crate::history_membership)).
///
/// # Errors
///
/// Returns [`SearchExhausted`](crate::SearchExhausted) if the budget ran
/// out first.
pub fn history_membership_pc(
    history: &si_model::History,
    budget: &crate::SearchBudget,
) -> Result<bool, crate::SearchExhausted> {
    crate::history_check::history_witness_for_class(GraphClass::Pc, history, budget)
        .map(|w| w.is_some())
}

/// The minimum element used in tests: PC's base relation exposed for
/// diagnostics and benches.
pub fn pc_base_relation(graph: &DependencyGraph) -> Relation {
    pc_base(graph)
}

/// Whether two transactions are ordered by the PC base's closure —
/// a cheap way to inspect forced commit-order edges.
pub fn pc_forces_commit_order(graph: &DependencyGraph, a: TxId, b: TxId) -> bool {
    pc_base(graph).transitive_closure().contains(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_si, SearchBudget};
    use si_depgraph::{extract, DepGraphBuilder};
    use si_execution::check_pc;
    use si_model::{HistoryBuilder, Op};

    fn lost_update_graph() -> DependencyGraph {
        let mut b = HistoryBuilder::new();
        let acct = b.object("acct");
        let (s1, s2) = (b.session(), b.session());
        b.push_tx(s1, [Op::read(acct, 0), Op::write(acct, 50)]);
        b.push_tx(s2, [Op::read(acct, 0), Op::write(acct, 25)]);
        let h = b.build();
        let mut g = DepGraphBuilder::new(h);
        g.infer_wr();
        g.build().unwrap()
    }

    #[test]
    fn lost_update_in_pc_not_si() {
        let g = lost_update_graph();
        assert!(check_si(&g).is_err());
        assert!(check_pc_graph(&g).is_ok(), "PC admits lost updates");
        // And the construction realises it.
        let exec = execution_from_graph_pc(&g).unwrap();
        assert!(exec.is_co_total());
        assert!(check_pc(&exec).is_ok(), "{:?}", check_pc(&exec));
        assert_eq!(extract(&exec).unwrap(), g);
    }

    #[test]
    fn long_fork_rejected_by_pc() {
        // PC retains PREFIX, so the long fork stays forbidden.
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let (s1, s2, s3, s4) = (b.session(), b.session(), b.session(), b.session());
        b.push_tx(s1, [Op::write(x, 1)]);
        b.push_tx(s2, [Op::write(y, 1)]);
        b.push_tx(s3, [Op::read(x, 1), Op::read(y, 0)]);
        b.push_tx(s4, [Op::read(x, 0), Op::read(y, 1)]);
        let h = b.build();
        assert!(!history_membership_pc(&h, &SearchBudget::default()).unwrap());
    }

    #[test]
    fn graph_si_subset_of_graph_pc() {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let s = b.session();
        b.push_tx(s, [Op::write(x, 1)]);
        b.push_tx(s, [Op::read(x, 1)]);
        let h = b.build();
        let mut gb = DepGraphBuilder::new(h);
        gb.infer_wr();
        let g = gb.build().unwrap();
        assert!(check_si(&g).is_ok());
        assert!(check_pc_graph(&g).is_ok());
    }

    #[test]
    fn forced_commit_order_edges() {
        let g = lost_update_graph();
        // WW forces init before both writers in CO.
        assert!(pc_forces_commit_order(&g, TxId(0), TxId(1)));
        assert!(pc_forces_commit_order(&g, TxId(0), TxId(2)));
        assert!(!pc_base_relation(&g).is_empty());
    }
}
