//! Shared encoding of history membership as per-object choice points.
//!
//! Theorems 8/9/21 reduce `history ∈ HistX` to a search over `WR`/`WW`
//! extensions: for every object, a `WR(x)` witness per external read
//! (any *other* transaction whose final write to `x` produced the value
//! read) and a total `WW(x)` order over the writers. Both the exact
//! backtracking enumerator ([`crate::history_membership`]) and the CDCL
//! solver (`si-solve`) search exactly this space, so the derivation of
//! the choice points — including the encode-time rejections that need no
//! search at all — lives here, once.

use std::collections::HashMap;

use si_model::{History, Obj, Op, TxId, Value};

/// The choice points of one object: its writers (whose permutations are
/// the `WW(x)` candidates) and its external readers with their candidate
/// `WR(x)` witnesses.
#[derive(Debug, Clone)]
pub struct ObjChoices {
    /// The object.
    pub obj: Obj,
    /// Every transaction writing `obj`, including the init transaction.
    pub writers: Vec<TxId>,
    /// `(reader, candidate writers)` for each external read of `obj`.
    /// Candidate lists are non-empty (an empty list rejects the whole
    /// history at encode time) and never contain the reader itself.
    pub readers: Vec<(TxId, Vec<TxId>)>,
}

/// Derives the per-object choice points of `history`, or `None` when the
/// history is trivially outside *every* graph class — an internal-
/// consistency (INT) violation, or an external read no other
/// transaction's final write can justify. Both rejections are
/// independent of the `WR`/`WW` choices, so no extension can succeed.
pub fn choice_points(history: &History) -> Option<Vec<ObjChoices>> {
    if history.check_int().is_err() {
        return None;
    }
    // One pass over the raw operations builds, per object, the writer
    // list, a final-write-value index and the external-read list — the
    // per-object-times-per-transaction scans would be quadratic on big
    // histories (and on the init transaction, which writes every object).
    #[derive(Default)]
    struct Slot {
        writers: Vec<TxId>,
        by_value: HashMap<Value, Vec<TxId>>,
        reads: Vec<(TxId, Value)>,
    }
    let mut slots: Vec<Slot> = Vec::new();
    // stamp/pos dedup object touches within one transaction in O(1):
    // `stamp[x] == id` means `x` already has an entry for this
    // transaction, at `tx_objs[pos[x]]`.
    let mut stamp: Vec<u32> = Vec::new();
    let mut pos: Vec<u32> = Vec::new();
    // Per distinct object of the current transaction: the external read
    // (first op is a read) and the last written value, if any.
    let mut tx_objs: Vec<(Obj, Option<Value>, Option<Value>)> = Vec::new();
    for (id, t) in history.transactions() {
        tx_objs.clear();
        for op in t.ops() {
            let xi = op.obj().index();
            if xi >= stamp.len() {
                stamp.resize(xi + 1, u32::MAX);
                pos.resize(xi + 1, 0);
            }
            if stamp[xi] != id.0 {
                stamp[xi] = id.0;
                pos[xi] = tx_objs.len() as u32;
                let ext = match op {
                    Op::Read(_, n) => Some(*n),
                    Op::Write(..) => None,
                };
                tx_objs.push((op.obj(), ext, None));
            }
            if op.is_write() {
                tx_objs[pos[xi] as usize].2 = Some(op.value());
            }
        }
        for &(x, ext_read, final_write) in &tx_objs {
            if slots.len() <= x.index() {
                slots.resize_with(x.index() + 1, Slot::default);
            }
            let slot = &mut slots[x.index()];
            if let Some(v) = final_write {
                slot.writers.push(id);
                slot.by_value.entry(v).or_default().push(id);
            }
            if let Some(v) = ext_read {
                slot.reads.push((id, v));
            }
        }
    }
    // Transactions arrive in ascending id order, so every per-slot list
    // is already ascending — matching the scan-based derivation exactly.
    let mut choices = Vec::new();
    for (i, slot) in slots.iter().enumerate() {
        if slot.writers.is_empty() && slot.reads.is_empty() {
            continue;
        }
        let mut readers = Vec::with_capacity(slot.reads.len());
        for &(id, v) in &slot.reads {
            let candidates: Vec<TxId> = match slot.by_value.get(&v) {
                Some(ws) => ws.iter().copied().filter(|&w| w != id).collect(),
                None => Vec::new(),
            };
            if candidates.is_empty() {
                return None;
            }
            readers.push((id, candidates));
        }
        choices.push(ObjChoices {
            obj: Obj::from_index(i),
            writers: slot.writers.clone(),
            readers,
        });
    }
    Some(choices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_model::{HistoryBuilder, Op};

    #[test]
    fn derives_candidates_and_rejects_unjustifiable_reads() {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let (s1, s2, s3) = (b.session(), b.session(), b.session());
        b.push_tx(s1, [Op::write(x, 1)]);
        b.push_tx(s2, [Op::write(x, 1)]);
        b.push_tx(s3, [Op::read(x, 1)]);
        let h = b.build();
        let choices = choice_points(&h).unwrap();
        assert_eq!(choices.len(), 1);
        // Init plus the two writers of 1.
        assert_eq!(choices[0].writers.len(), 3);
        let (_, candidates) = &choices[0].readers[0];
        assert_eq!(candidates.len(), 2, "both writers of 1 are candidates");

        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let s = b.session();
        b.push_tx(s, [Op::read(x, 42)]);
        assert!(choice_points(&b.build()).is_none());
    }

    #[test]
    fn int_violation_rejects_at_encode_time() {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let s = b.session();
        b.push_tx(s, [Op::write(x, 1), Op::read(x, 9)]);
        assert!(choice_points(&b.build()).is_none());
    }
}
