//! Theorem 10(i): building a concrete SI execution from a dependency
//! graph in `GraphSI`.

use core::fmt;

use si_depgraph::DependencyGraph;
use si_execution::AbstractExecution;
use si_relations::{Relation, TxId};

use crate::solve::smallest_solution;

/// The input graph is not in `GraphSI`: its base commit order (the
/// smallest solution of the Figure 3 system with `R = ∅`) ties a cycle, so
/// no SI execution can realise it (Theorem 9).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotInGraphSi {
    /// A witness cycle in `(SO ∪ WR ∪ WW) ; RW?`.
    pub cycle: Vec<TxId>,
}

impl fmt::Display for NotInGraphSi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph is not in GraphSI; witness cycle: ")?;
        for t in &self.cycle {
            write!(f, "{t} -> ")?;
        }
        match self.cycle.first() {
            Some(first) => write!(f, "{first}"),
            None => Ok(()),
        }
    }
}

impl std::error::Error for NotInGraphSi {}

/// Constructs an execution `X ∈ ExecSI` with `graph(X) = G`
/// (Theorem 10(i), soundness), in one step.
///
/// The paper's proof repeatedly enforces an arbitrary unrelated pair into
/// the commit order and re-solves (see
/// [`execution_from_graph_iterative`]). Lemma 15 holds for *any* enforced
/// set `R`, so we may instead enforce a whole linearisation at once: take
/// `R = L`, a topological linearisation of the base commit order
/// `CO₀ = (D ; RW?)⁺`. Then `CO = ((D ; RW?) ∪ L)⁺ = L` is total and
/// acyclic, and by Lemmas 13 and 15 the resulting pair is a solution whose
/// pre-execution is a full execution in `ExecSI` with dependency graph `G`.
/// This is `O(n³/64)` instead of the iterative `O(n⁴)`-ish process.
///
/// # Errors
///
/// Returns [`NotInGraphSi`] with a witness cycle if `G ∉ GraphSI`.
///
/// # Panics
///
/// Panics if the underlying history violates INT (callers should check
/// [`check_si`](crate::check_si) first, which includes INT), since such a
/// "graph" cannot come from `DependencyGraph`'s own invariants being used
/// sensibly; the execution would be meaningless.
pub fn execution_from_graph(graph: &DependencyGraph) -> Result<AbstractExecution, NotInGraphSi> {
    let n = graph.tx_count();
    let base = smallest_solution(graph, &Relation::new(n));
    let linear = match base.co.topo_sort() {
        Ok(order) => order,
        Err(_) => {
            let composed = graph.dep_relation().compose_opt(&graph.rw_relation());
            let cycle = composed.find_cycle().expect("CO₀ cyclic implies composed cyclic");
            return Err(NotInGraphSi { cycle });
        }
    };
    let mut total = Relation::new(n);
    for (i, &a) in linear.iter().enumerate() {
        for &b in &linear[i + 1..] {
            total.insert(a, b);
        }
    }
    let solution = smallest_solution(graph, &total);
    debug_assert_eq!(solution.co, total, "enforcing a linear extension yields CO = L");
    finish(graph, solution.vis, solution.co)
}

/// Constructs an execution `X ∈ ExecSI` with `graph(X) = G` following the
/// paper's proof of Theorem 10(i) *literally*: starting from the smallest
/// solution, repeatedly pick the first pair of transactions unrelated by
/// `CO`, enforce it, and re-solve via Lemma 15, until `CO` is total.
///
/// Produces the same kind of witness as [`execution_from_graph`] (the two
/// may differ in the chosen total order); kept for fidelity to the paper
/// and exercised against the one-shot construction in tests and benches.
///
/// # Errors
///
/// Returns [`NotInGraphSi`] with a witness cycle if `G ∉ GraphSI`.
pub fn execution_from_graph_iterative(
    graph: &DependencyGraph,
) -> Result<AbstractExecution, NotInGraphSi> {
    let n = graph.tx_count();
    let mut enforced = Relation::new(n);
    loop {
        let solution = smallest_solution(graph, &enforced);
        if !solution.co.is_acyclic() {
            let composed = graph.dep_relation().compose_opt(&graph.rw_relation());
            let cycle = composed
                .find_cycle()
                .unwrap_or_else(|| solution.co.find_cycle().expect("CO is cyclic"));
            return Err(NotInGraphSi { cycle });
        }
        match solution.co.first_unrelated_pair() {
            Some((a, b)) => {
                // The paper picks an arbitrary unrelated pair; we pick the
                // lexicographically first for reproducibility.
                enforced.insert(a, b);
            }
            None => return finish(graph, solution.vis, solution.co),
        }
    }
}

fn finish(
    graph: &DependencyGraph,
    vis: Relation,
    co: Relation,
) -> Result<AbstractExecution, NotInGraphSi> {
    let exec = AbstractExecution::new(graph.history().clone(), vis, co)
        .expect("solutions of the Figure 3 system are structurally valid");
    Ok(exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_depgraph::{extract, DepGraphBuilder};
    use si_execution::SpecModel;
    use si_model::{HistoryBuilder, Op};

    fn write_skew() -> DependencyGraph {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let (s1, s2) = (b.session(), b.session());
        b.push_tx(s1, [Op::read(x, 0), Op::read(y, 0), Op::write(x, 1)]);
        b.push_tx(s2, [Op::read(x, 0), Op::read(y, 0), Op::write(y, 1)]);
        let h = b.build();
        let mut g = DepGraphBuilder::new(h);
        g.infer_wr();
        g.build().unwrap()
    }

    fn lost_update() -> DependencyGraph {
        let mut b = HistoryBuilder::new();
        let acct = b.object("acct");
        let (s1, s2) = (b.session(), b.session());
        b.push_tx(s1, [Op::read(acct, 0), Op::write(acct, 50)]);
        b.push_tx(s2, [Op::read(acct, 0), Op::write(acct, 25)]);
        let h = b.build();
        let mut g = DepGraphBuilder::new(h);
        g.infer_wr();
        g.build().unwrap()
    }

    #[test]
    fn write_skew_realised_as_si_execution() {
        let g = write_skew();
        for construct in [execution_from_graph, execution_from_graph_iterative] {
            let exec = construct(&g).unwrap();
            assert!(exec.is_co_total());
            assert!(SpecModel::Si.check(&exec).is_ok());
            // graph(X) = G — the heart of soundness.
            assert_eq!(extract(&exec).unwrap(), g);
        }
    }

    #[test]
    fn lost_update_is_rejected_with_witness() {
        let g = lost_update();
        for construct in [execution_from_graph, execution_from_graph_iterative] {
            let err = construct(&g).unwrap_err();
            assert!(!err.cycle.is_empty());
            let composed = g.dep_relation().compose_opt(&g.rw_relation());
            for w in err.cycle.windows(2) {
                assert!(composed.contains(w[0], w[1]));
            }
            assert!(composed.contains(*err.cycle.last().unwrap(), err.cycle[0]));
        }
    }

    #[test]
    fn session_chains_are_respected() {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let s = b.session();
        b.push_tx(s, [Op::write(x, 1)]);
        b.push_tx(s, [Op::read(x, 1), Op::write(x, 2)]);
        b.push_tx(s, [Op::read(x, 2)]);
        let h = b.build();
        let mut g = DepGraphBuilder::new(h);
        g.infer_wr();
        let g = g.build().unwrap();
        let exec = execution_from_graph(&g).unwrap();
        assert!(SpecModel::Si.check(&exec).is_ok());
        // SO ⊆ VIS (SESSION) must have been materialised.
        assert!(g.so_relation().is_subset(exec.vis()));
        assert_eq!(extract(&exec).unwrap(), g);
    }

    #[test]
    fn one_shot_and_iterative_agree_on_membership() {
        for g in [write_skew(), lost_update()] {
            assert_eq!(
                execution_from_graph(&g).is_ok(),
                execution_from_graph_iterative(&g).is_ok()
            );
        }
    }

    #[test]
    fn constructed_execution_satisfies_lemma12() {
        // Lemma 12: VIS ; RW ⊆ CO in any SI execution.
        let g = write_skew();
        let exec = execution_from_graph(&g).unwrap();
        let vis_rw = exec.vis().compose(&g.rw_relation());
        assert!(vis_rw.is_subset(exec.co()));
    }
}
