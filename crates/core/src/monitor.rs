//! An incremental, online SI checker — the runtime-monitoring application
//! the paper motivates in §1 ("this way of specifying consistency models
//! has been shown to be particularly appropriate for … run-time
//! monitoring [9, 36]").
//!
//! The monitor receives committed transactions one at a time, each with
//! the dependencies the system observed (which writer each read saw, and
//! the object version orders), and flags the *first* transaction whose
//! arrival takes the accumulated dependency graph outside the chosen
//! graph class. Because edges only ever get added, a violation is final —
//! exactly the monotonicity that makes Theorem 9's acyclicity condition
//! monitorable online.

use si_execution::SpecModel;
use si_model::Obj;
use si_relations::{Relation, TxId};
use si_telemetry::{EdgeKind, Event, SpanTimer, Telemetry};

/// A transaction reported to the monitor: its dependencies as observed by
/// the system.
#[derive(Debug, Clone, Default)]
pub struct ObservedTx {
    /// Session predecessor, if any (the previous transaction of the same
    /// session); induces an `SO` edge (transitively closed internally).
    pub session_predecessor: Option<TxId>,
    /// `(object, writer)` pairs: this transaction's external read of
    /// `object` observed `writer`'s version.
    pub reads_from: Vec<(Obj, TxId)>,
    /// Objects this transaction wrote. The monitor appends it to each
    /// object's version order (systems report commits in version order —
    /// true of first-committer-wins implementations).
    pub writes: Vec<Obj>,
}

/// The verdict for one appended transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorVerdict {
    /// The accumulated graph is still in the monitored class.
    Consistent,
    /// This transaction's edges closed a forbidden cycle; the monitored
    /// class is violated from this transaction on.
    Violation {
        /// A witness cycle of the class's composed relation.
        cycle: Vec<TxId>,
    },
}

/// Incremental SI/SER/PSI monitor over a stream of committed
/// transactions.
///
/// # Example
///
/// ```
/// use si_core::{ObservedTx, SiMonitor};
/// use si_execution::SpecModel;
/// use si_model::Obj;
///
/// let mut monitor = SiMonitor::new(SpecModel::Si);
/// let x = Obj(0);
/// let y = Obj(1);
/// let init = monitor.append(ObservedTx { writes: vec![x, y], ..Default::default() });
/// assert!(monitor.is_consistent());
///
/// // Write skew: both read the initial versions, write disjointly — SI
/// // tolerates it…
/// let _t1 = monitor.append(ObservedTx {
///     reads_from: vec![(x, init), (y, init)],
///     writes: vec![x],
///     ..Default::default()
/// });
/// let _t2 = monitor.append(ObservedTx {
///     reads_from: vec![(x, init), (y, init)],
///     writes: vec![y],
///     ..Default::default()
/// });
/// assert!(monitor.is_consistent());
/// ```
#[derive(Debug, Clone)]
pub struct SiMonitor {
    model: SpecModel,
    /// `SO ∪ WR ∪ WW` so far.
    dep: Relation,
    /// `RW` so far.
    rw: Relation,
    /// Last transaction of each session chain is tracked by the caller;
    /// the monitor itself only stores per-object state:
    /// version order per object.
    version_order: Vec<Vec<TxId>>, // indexed by Obj
    /// `(object, reader, writer)` triples seen, to derive RW when later
    /// writers arrive.
    reads: Vec<(Obj, TxId, TxId)>,
    violated: Option<Vec<TxId>>,
    next_tx: u32,
    so_pred: Vec<Option<TxId>>,
    telemetry: Telemetry,
}

impl SiMonitor {
    /// Creates a monitor for the given model's graph class.
    pub fn new(model: SpecModel) -> Self {
        SiMonitor {
            model,
            dep: Relation::new(0),
            rw: Relation::new(0),
            version_order: Vec::new(),
            reads: Vec::new(),
            violated: None,
            next_tx: 0,
            so_pred: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Creates a monitor that emits
    /// [`EdgeAdded`](si_telemetry::Event::EdgeAdded) /
    /// [`CycleSearchStep`](si_telemetry::Event::CycleSearchStep) /
    /// [`VerdictEmitted`](si_telemetry::Event::VerdictEmitted) telemetry.
    pub fn with_telemetry(model: SpecModel, telemetry: Telemetry) -> Self {
        let mut monitor = SiMonitor::new(model);
        monitor.telemetry = telemetry;
        monitor
    }

    /// Attaches (or replaces) the telemetry handle.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The telemetry label of this monitor's verdicts.
    fn check_label(&self) -> &'static str {
        match self.model {
            SpecModel::Si => "monitor.si",
            SpecModel::Ser => "monitor.ser",
            SpecModel::Psi => "monitor.psi",
        }
    }

    /// Number of transactions appended so far.
    pub fn tx_count(&self) -> usize {
        self.next_tx as usize
    }

    /// Whether no violation has been flagged yet.
    pub fn is_consistent(&self) -> bool {
        self.violated.is_none()
    }

    /// The first violation's witness cycle, if any.
    pub fn violation(&self) -> Option<&[TxId]> {
        self.violated.as_deref()
    }

    /// Appends a committed transaction and returns its [`TxId`]; query
    /// the monitor state with
    /// [`SiMonitor::is_consistent`] / [`SiMonitor::violation`].
    ///
    /// Once a violation is flagged the monitor stays violated (edges are
    /// only added, so the forbidden cycle never disappears).
    pub fn append(&mut self, tx: ObservedTx) -> TxId {
        let id = TxId(self.next_tx);
        self.next_tx += 1;
        self.grow(self.next_tx as usize);

        // SO edge, transitively extended along the session chain.
        if let Some(pred) = tx.session_predecessor {
            let mut cur = Some(pred);
            while let Some(p) = cur {
                self.dep.insert(p, id);
                self.telemetry.emit(|| Event::EdgeAdded {
                    kind: EdgeKind::So,
                    from: p.0,
                    to: id.0,
                });
                cur = self.so_pred[p.index()];
            }
            self.so_pred[id.index()] = Some(pred);
        }

        // WR edges + remember reads for future RW derivation.
        for &(x, writer) in &tx.reads_from {
            self.ensure_obj(x);
            self.dep.insert(writer, id);
            self.telemetry.emit(|| Event::EdgeAdded {
                kind: EdgeKind::Wr,
                from: writer.0,
                to: id.0,
            });
            self.reads.push((x, id, writer));
            // RW edges towards writers that already overwrote `writer`.
            let order = &self.version_order[x.index()];
            if let Some(pos) = order.iter().position(|&w| w == writer) {
                let later: Vec<TxId> =
                    order[pos + 1..].iter().copied().filter(|&s| s != id).collect();
                for s in later {
                    self.rw.insert(id, s);
                    self.telemetry.emit(|| Event::EdgeAdded {
                        kind: EdgeKind::Rw,
                        from: id.0,
                        to: s.0,
                    });
                }
            }
        }

        // WW edges: this transaction becomes the newest version of each
        // written object; readers of older versions now anti-depend on it.
        for &x in &tx.writes {
            self.ensure_obj(x);
            let order = self.version_order[x.index()].clone();
            for &prev in &order {
                self.dep.insert(prev, id);
                self.telemetry.emit(|| Event::EdgeAdded {
                    kind: EdgeKind::Ww,
                    from: prev.0,
                    to: id.0,
                });
            }
            for &(ox, reader, writer) in &self.reads {
                if ox == x && reader != id && order.contains(&writer) {
                    self.rw.insert(reader, id);
                    self.telemetry.emit(|| Event::EdgeAdded {
                        kind: EdgeKind::Rw,
                        from: reader.0,
                        to: id.0,
                    });
                }
            }
            self.version_order[x.index()].push(id);
        }

        if self.violated.is_none() {
            let timer = SpanTimer::start();
            let composed = match self.model {
                SpecModel::Si => self.dep.compose_opt(&self.rw),
                SpecModel::Ser => self.dep.union(&self.rw),
                SpecModel::Psi => self.dep.transitive_closure().compose_opt(&self.rw),
            };
            let cycle = match self.model {
                SpecModel::Psi => {
                    (0..self.next_tx).map(TxId).find(|&t| composed.contains(t, t)).map(|t| vec![t])
                }
                _ => composed.find_cycle(),
            };
            let nanos = timer.elapsed_nanos();
            let check = self.check_label();
            self.telemetry.emit(|| Event::CycleSearchStep {
                check,
                nodes: u64::from(self.next_tx),
                edges: composed.edge_count() as u64,
            });
            self.telemetry.emit(|| Event::VerdictEmitted { check, ok: cycle.is_none(), nanos });
            self.violated = cycle;
        }
        id
    }

    fn grow(&mut self, n: usize) {
        self.dep = self.dep.grown(n);
        self.rw = self.rw.grown(n);
        self.so_pred.resize(n, None);
    }

    fn ensure_obj(&mut self, x: Obj) {
        if x.index() >= self.version_order.len() {
            self.version_order.resize(x.index() + 1, Vec::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Obj {
        Obj(0)
    }
    fn y() -> Obj {
        Obj(1)
    }

    fn init(monitor: &mut SiMonitor) -> TxId {
        monitor.append(ObservedTx { writes: vec![x(), y()], ..Default::default() })
    }

    #[test]
    fn write_skew_tolerated_by_si_flagged_by_ser() {
        for (model, expect_ok) in [(SpecModel::Si, true), (SpecModel::Ser, false)] {
            let mut m = SiMonitor::new(model);
            let i = init(&mut m);
            m.append(ObservedTx {
                reads_from: vec![(x(), i), (y(), i)],
                writes: vec![x()],
                ..Default::default()
            });
            m.append(ObservedTx {
                reads_from: vec![(x(), i), (y(), i)],
                writes: vec![y()],
                ..Default::default()
            });
            assert_eq!(m.is_consistent(), expect_ok, "{model}");
        }
    }

    #[test]
    fn lost_update_flagged_by_all() {
        for model in SpecModel::ALL {
            let mut m = SiMonitor::new(model);
            let i = init(&mut m);
            m.append(ObservedTx {
                reads_from: vec![(x(), i)],
                writes: vec![x()],
                ..Default::default()
            });
            m.append(ObservedTx {
                reads_from: vec![(x(), i)],
                writes: vec![x()],
                ..Default::default()
            });
            assert!(!m.is_consistent(), "{model} missed the lost update");
        }
    }

    #[test]
    fn long_fork_tolerated_only_by_psi() {
        for (model, expect_ok) in
            [(SpecModel::Psi, true), (SpecModel::Si, false), (SpecModel::Ser, false)]
        {
            let mut m = SiMonitor::new(model);
            let i = init(&mut m);
            let w1 = m.append(ObservedTx { writes: vec![x()], ..Default::default() });
            let w2 = m.append(ObservedTx { writes: vec![y()], ..Default::default() });
            m.append(ObservedTx { reads_from: vec![(x(), w1), (y(), i)], ..Default::default() });
            m.append(ObservedTx { reads_from: vec![(x(), i), (y(), w2)], ..Default::default() });
            assert_eq!(m.is_consistent(), expect_ok, "{model}");
        }
    }

    #[test]
    fn violation_is_sticky_and_witnessed() {
        let mut m = SiMonitor::new(SpecModel::Si);
        let i = init(&mut m);
        m.append(ObservedTx {
            reads_from: vec![(x(), i)],
            writes: vec![x()],
            ..Default::default()
        });
        m.append(ObservedTx {
            reads_from: vec![(x(), i)],
            writes: vec![x()],
            ..Default::default()
        });
        assert!(!m.is_consistent());
        let witness = m.violation().unwrap().to_vec();
        assert!(!witness.is_empty());
        // Appending a harmless transaction does not clear the flag.
        m.append(ObservedTx { writes: vec![y()], ..Default::default() });
        assert!(!m.is_consistent());
        assert_eq!(m.violation().unwrap(), witness.as_slice());
    }

    #[test]
    fn session_chains_count() {
        // T1 writes x; same session's T2 "reads stale x" (observes init
        // although T1 precedes it in the session) — SESSION makes this a
        // violation in every model.
        let mut m = SiMonitor::new(SpecModel::Si);
        let i = init(&mut m);
        let t1 = m.append(ObservedTx { writes: vec![x()], ..Default::default() });
        m.append(ObservedTx {
            session_predecessor: Some(t1),
            reads_from: vec![(x(), i)],
            ..Default::default()
        });
        assert!(!m.is_consistent());
    }

    #[test]
    fn serial_stream_stays_consistent() {
        let mut m = SiMonitor::new(SpecModel::Ser);
        let mut last = init(&mut m);
        for _ in 0..10 {
            last = m.append(ObservedTx {
                session_predecessor: Some(last),
                reads_from: vec![(x(), last)],
                writes: vec![x()],
            });
            assert!(m.is_consistent());
        }
        assert_eq!(m.tx_count(), 11); // init + 10 increments
    }
}
