//! An incremental, online SI checker — the runtime-monitoring application
//! the paper motivates in §1 ("this way of specifying consistency models
//! has been shown to be particularly appropriate for … run-time
//! monitoring [9, 36]").
//!
//! The monitor receives committed transactions one at a time, each with
//! the dependencies the system observed (which writer each read saw, and
//! the object version orders), and flags the *first* transaction whose
//! arrival takes the accumulated dependency graph outside the chosen
//! graph class. Because edges only ever get added, a violation is final —
//! exactly the monotonicity that makes Theorem 9's acyclicity condition
//! monitorable online.
//!
//! Two engines implement the check:
//!
//! * the default **incremental** engine ([`IncrementalClass`]) maintains
//!   the class's characteristic relation under edge insertion
//!   (Pearce–Kelly online topological order), so an append costs the
//!   bounded searches its new edges trigger — amortised near-linear,
//!   the way production black-box checkers such as PolySI scale;
//! * the **dense oracle** engine ([`SiMonitor::new_dense`]) recomputes
//!   the composed relation from scratch with the bitset [`Relation`]
//!   algebra on every append — `O(n³/64)` per append, kept as the
//!   differential-testing oracle (`tests/monitor.rs`) and for
//!   apples-to-apples benchmarks (`crates/bench/benches/monitor_scaling`).

use si_depgraph::DependencyGraph;
use si_execution::SpecModel;
use si_model::Obj;
use si_relations::{ClassKind, DepEdgeKind, IncrementalClass, IncrementalStats, Relation, TxId};
use si_telemetry::{EdgeKind, Event, SpanTimer, Telemetry};

/// A transaction reported to the monitor: its dependencies as observed by
/// the system.
#[derive(Debug, Clone, Default)]
pub struct ObservedTx {
    /// Session predecessor, if any (the previous transaction of the same
    /// session); induces an `SO` edge (transitively closed internally).
    pub session_predecessor: Option<TxId>,
    /// `(object, writer)` pairs: this transaction's external read of
    /// `object` observed `writer`'s version.
    pub reads_from: Vec<(Obj, TxId)>,
    /// Objects this transaction wrote. The monitor appends it to each
    /// object's version order (systems report commits in version order —
    /// true of first-committer-wins implementations).
    pub writes: Vec<Obj>,
}

/// The verdict for one appended transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorVerdict {
    /// The accumulated graph is still in the monitored class.
    Consistent,
    /// This transaction's edges closed a forbidden cycle; the monitored
    /// class is violated from this transaction on.
    Violation {
        /// A witness cycle of the class's composed relation.
        cycle: Vec<TxId>,
    },
}

/// The check engine backing a monitor.
#[derive(Debug, Clone)]
enum MonitorEngine {
    /// Online maintenance of the class's characteristic relation (boxed:
    /// the maintainer's index vectors dwarf the two dense relation
    /// handles).
    Incremental(Box<IncrementalClass>),
    /// From-scratch dense recomposition per append (the oracle).
    Dense {
        /// `SO ∪ WR ∪ WW` so far.
        dep: Relation,
        /// `RW` so far.
        rw: Relation,
    },
}

/// Incremental SI/SER/PSI monitor over a stream of committed
/// transactions.
///
/// # Example
///
/// ```
/// use si_core::{ObservedTx, SiMonitor};
/// use si_execution::SpecModel;
/// use si_model::Obj;
///
/// let mut monitor = SiMonitor::new(SpecModel::Si);
/// let x = Obj(0);
/// let y = Obj(1);
/// let init = monitor.append(ObservedTx { writes: vec![x, y], ..Default::default() });
/// assert!(monitor.is_consistent());
///
/// // Write skew: both read the initial versions, write disjointly — SI
/// // tolerates it…
/// let _t1 = monitor.append(ObservedTx {
///     reads_from: vec![(x, init), (y, init)],
///     writes: vec![x],
///     ..Default::default()
/// });
/// let _t2 = monitor.append(ObservedTx {
///     reads_from: vec![(x, init), (y, init)],
///     writes: vec![y],
///     ..Default::default()
/// });
/// assert!(monitor.is_consistent());
/// ```
#[derive(Debug, Clone)]
pub struct SiMonitor {
    model: SpecModel,
    engine: MonitorEngine,
    /// Version order per object, in append order.
    version_order: Vec<Vec<TxId>>, // indexed by Obj
    /// Per object: the transactions that externally read one of its
    /// versions — the index that turns write-side anti-dependency
    /// derivation into a per-object lookup instead of a scan over every
    /// read ever observed.
    readers_of: Vec<Vec<TxId>>, // indexed by Obj
    violated: Option<Vec<TxId>>,
    next_tx: u32,
    so_pred: Vec<Option<TxId>>,
    telemetry: Telemetry,
    /// Reusable per-append edge buffer.
    scratch: Vec<(EdgeKind, TxId, TxId)>,
}

fn dep_kind(kind: EdgeKind) -> DepEdgeKind {
    match kind {
        EdgeKind::So => DepEdgeKind::So,
        EdgeKind::Wr => DepEdgeKind::Wr,
        EdgeKind::Ww => DepEdgeKind::Ww,
        EdgeKind::Rw => DepEdgeKind::Rw,
    }
}

fn class_of(model: SpecModel) -> ClassKind {
    match model {
        SpecModel::Si => ClassKind::Si,
        SpecModel::Ser => ClassKind::Ser,
        SpecModel::Psi => ClassKind::Psi,
    }
}

/// The dense oracle's verdict over accumulated `dep`/`rw` relations.
fn dense_verdict(model: SpecModel, dep: &Relation, rw: &Relation) -> (Relation, Option<Vec<TxId>>) {
    let composed = match model {
        SpecModel::Si => dep.compose_opt(rw),
        SpecModel::Ser => dep.union(rw),
        SpecModel::Psi => dep.transitive_closure().compose_opt(rw),
    };
    let cycle = match model {
        SpecModel::Psi => (0..composed.universe() as u32)
            .map(TxId)
            .find(|&t| composed.contains(t, t))
            .map(|t| vec![t]),
        _ => composed.find_cycle(),
    };
    (composed, cycle)
}

impl SiMonitor {
    /// Creates a monitor for the given model's graph class, backed by the
    /// incremental engine.
    pub fn new(model: SpecModel) -> Self {
        Self::with_engine(
            model,
            MonitorEngine::Incremental(Box::new(IncrementalClass::new(class_of(model), 0))),
        )
    }

    /// Creates a monitor backed by the dense from-scratch engine —
    /// `O(n³/64)` per append. Verdict-equivalent to [`SiMonitor::new`]
    /// (witness cycles may differ); kept as the differential-testing
    /// oracle and benchmark baseline.
    pub fn new_dense(model: SpecModel) -> Self {
        Self::with_engine(
            model,
            MonitorEngine::Dense { dep: Relation::new(0), rw: Relation::new(0) },
        )
    }

    fn with_engine(model: SpecModel, engine: MonitorEngine) -> Self {
        SiMonitor {
            model,
            engine,
            version_order: Vec::new(),
            readers_of: Vec::new(),
            violated: None,
            next_tx: 0,
            so_pred: Vec::new(),
            telemetry: Telemetry::disabled(),
            scratch: Vec::new(),
        }
    }

    /// Creates a monitor that emits
    /// [`EdgeAdded`](si_telemetry::Event::EdgeAdded) /
    /// [`CycleSearchStep`](si_telemetry::Event::CycleSearchStep) /
    /// [`VerdictEmitted`](si_telemetry::Event::VerdictEmitted) telemetry.
    pub fn with_telemetry(model: SpecModel, telemetry: Telemetry) -> Self {
        let mut monitor = SiMonitor::new(model);
        monitor.telemetry = telemetry;
        monitor
    }

    /// Attaches (or replaces) the telemetry handle.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Whether this monitor runs the dense from-scratch oracle engine.
    pub fn is_dense_oracle(&self) -> bool {
        matches!(self.engine, MonitorEngine::Dense { .. })
    }

    /// Warm-starts a monitor as if the first `prefix` transactions of
    /// `graph` (in `TxId` order) had been appended, paying only the edge
    /// application plus a *single* verdict check at the end — the cheap
    /// way to resume monitoring from an offline-validated checkpoint, and
    /// what lets benchmarks measure steady-state append cost without
    /// replaying the dense engine's per-append checks.
    ///
    /// Requires the graph's dependencies to point backwards in `TxId`
    /// order (true of engine-extracted, commit-ordered graphs); panics
    /// otherwise. Set `dense` for the dense oracle engine.
    pub fn resume_from_graph(
        model: SpecModel,
        graph: &DependencyGraph,
        prefix: usize,
        dense: bool,
    ) -> Self {
        let mut monitor = if dense { Self::new_dense(model) } else { Self::new(model) };
        let h = graph.history();
        let mut last_of_session: Vec<Option<TxId>> = vec![None; h.session_count()];
        for t in h.tx_ids().take(prefix) {
            let session = h.session_of(t);
            let tx = ObservedTx {
                session_predecessor: session.and_then(|s| last_of_session[s.index()]),
                reads_from: h
                    .transaction(t)
                    .external_read_set()
                    .into_iter()
                    .map(|x| (x, graph.writer_for(t, x).expect("reads have writers")))
                    .collect(),
                writes: h.transaction(t).write_set(),
            };
            if let Some(s) = session {
                last_of_session[s.index()] = Some(t);
            }
            let id = TxId(monitor.next_tx);
            monitor.next_tx += 1;
            monitor.grow(monitor.next_tx as usize);
            monitor.apply_observed(&tx, id);
        }
        // One verdict for the whole prefix (the incremental engine has
        // been checking all along; the dense engine composes once).
        monitor.violated = match &monitor.engine {
            MonitorEngine::Incremental(class) => class.violation().map(<[TxId]>::to_vec),
            MonitorEngine::Dense { dep, rw } => dense_verdict(model, dep, rw).1,
        };
        monitor
    }

    /// The telemetry label of this monitor's verdicts.
    fn check_label(&self) -> &'static str {
        match self.model {
            SpecModel::Si => "monitor.si",
            SpecModel::Ser => "monitor.ser",
            SpecModel::Psi => "monitor.psi",
        }
    }

    /// Number of transactions appended so far.
    pub fn tx_count(&self) -> usize {
        self.next_tx as usize
    }

    /// Whether no violation has been flagged yet.
    pub fn is_consistent(&self) -> bool {
        self.violated.is_none()
    }

    /// The first violation's witness cycle, if any.
    pub fn violation(&self) -> Option<&[TxId]> {
        self.violated.as_deref()
    }

    /// Appends a committed transaction and returns its [`TxId`]; query
    /// the monitor state with
    /// [`SiMonitor::is_consistent`] / [`SiMonitor::violation`].
    ///
    /// Once a violation is flagged the monitor stays violated (edges are
    /// only added, so the forbidden cycle never disappears).
    pub fn append(&mut self, tx: ObservedTx) -> TxId {
        let id = TxId(self.next_tx);
        self.next_tx += 1;
        self.grow(self.next_tx as usize);

        let check_needed = self.violated.is_none();
        let timer = SpanTimer::start();
        let stats_before = match &self.engine {
            MonitorEngine::Incremental(class) => class.stats(),
            MonitorEngine::Dense { .. } => IncrementalStats::default(),
        };

        self.apply_observed(&tx, id);

        if check_needed {
            let check = self.check_label();
            let (cycle, edges, stats) = match &mut self.engine {
                MonitorEngine::Incremental(class) => {
                    let mut stats = class.stats();
                    stats.visited -= stats_before.visited;
                    stats.reordered -= stats_before.reordered;
                    (class.violation().map(<[TxId]>::to_vec), class.maintained_edge_count(), stats)
                }
                MonitorEngine::Dense { dep, rw } => {
                    let (composed, cycle) = dense_verdict(self.model, dep, rw);
                    (cycle, composed.edge_count(), IncrementalStats::default())
                }
            };
            let nanos = timer.elapsed_nanos();
            self.telemetry.emit(|| Event::CycleSearchStep {
                check,
                nodes: u64::from(self.next_tx),
                edges: edges as u64,
                visited: stats.visited,
                reordered: stats.reordered,
            });
            self.telemetry.emit(|| Event::VerdictEmitted { check, ok: cycle.is_none(), nanos });
            self.violated = cycle;
        }
        id
    }

    /// Derives `id`'s dependency edges and applies them to the engine
    /// (emitting [`Event::EdgeAdded`] per edge), without checking.
    fn apply_observed(&mut self, tx: &ObservedTx, id: TxId) {
        let mut edges = std::mem::take(&mut self.scratch);
        edges.clear();

        // SO edge, transitively extended along the session chain.
        if let Some(pred) = tx.session_predecessor {
            let mut cur = Some(pred);
            while let Some(p) = cur {
                edges.push((EdgeKind::So, p, id));
                cur = self.so_pred[p.index()];
            }
            self.so_pred[id.index()] = Some(pred);
        }

        // WR edges, read-side RW edges towards writers that already
        // overwrote the observed version, and the readers index for
        // write-side derivation later.
        for &(x, writer) in &tx.reads_from {
            self.ensure_obj(x);
            edges.push((EdgeKind::Wr, writer, id));
            let order = &self.version_order[x.index()];
            if let Some(pos) = order.iter().position(|&w| w == writer) {
                for &s in &order[pos + 1..] {
                    if s != id {
                        edges.push((EdgeKind::Rw, id, s));
                    }
                }
                self.readers_of[x.index()].push(id);
            }
        }

        // WW edges: this transaction becomes the newest version of each
        // written object; readers of older versions now anti-depend on it.
        for &x in &tx.writes {
            self.ensure_obj(x);
            for &prev in &self.version_order[x.index()] {
                edges.push((EdgeKind::Ww, prev, id));
            }
            for &reader in &self.readers_of[x.index()] {
                if reader != id {
                    edges.push((EdgeKind::Rw, reader, id));
                }
            }
            self.version_order[x.index()].push(id);
        }

        for &(kind, from, to) in &edges {
            self.telemetry.emit(|| Event::EdgeAdded { kind, from: from.0, to: to.0 });
            match &mut self.engine {
                MonitorEngine::Incremental(class) => {
                    class.add(dep_kind(kind), from, to);
                }
                MonitorEngine::Dense { dep, rw } => {
                    match kind {
                        EdgeKind::Rw => rw.insert(from, to),
                        _ => dep.insert(from, to),
                    };
                }
            }
        }
        self.scratch = edges;
    }

    fn grow(&mut self, n: usize) {
        match &mut self.engine {
            MonitorEngine::Incremental(class) => class.grow(n),
            MonitorEngine::Dense { dep, rw } => {
                *dep = dep.grown(n);
                *rw = rw.grown(n);
            }
        }
        self.so_pred.resize(n, None);
    }

    fn ensure_obj(&mut self, x: Obj) {
        if x.index() >= self.version_order.len() {
            self.version_order.resize(x.index() + 1, Vec::new());
            self.readers_of.resize(x.index() + 1, Vec::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Obj {
        Obj(0)
    }
    fn y() -> Obj {
        Obj(1)
    }

    /// Both engines, so every scenario differentially tests the
    /// incremental path against the dense oracle.
    fn monitors(model: SpecModel) -> [SiMonitor; 2] {
        [SiMonitor::new(model), SiMonitor::new_dense(model)]
    }

    fn init(monitor: &mut SiMonitor) -> TxId {
        monitor.append(ObservedTx { writes: vec![x(), y()], ..Default::default() })
    }

    #[test]
    fn write_skew_tolerated_by_si_flagged_by_ser() {
        for (model, expect_ok) in [(SpecModel::Si, true), (SpecModel::Ser, false)] {
            for mut m in monitors(model) {
                let i = init(&mut m);
                m.append(ObservedTx {
                    reads_from: vec![(x(), i), (y(), i)],
                    writes: vec![x()],
                    ..Default::default()
                });
                m.append(ObservedTx {
                    reads_from: vec![(x(), i), (y(), i)],
                    writes: vec![y()],
                    ..Default::default()
                });
                assert_eq!(m.is_consistent(), expect_ok, "{model} dense={}", m.is_dense_oracle());
            }
        }
    }

    #[test]
    fn lost_update_flagged_by_all() {
        for model in SpecModel::ALL {
            for mut m in monitors(model) {
                let i = init(&mut m);
                m.append(ObservedTx {
                    reads_from: vec![(x(), i)],
                    writes: vec![x()],
                    ..Default::default()
                });
                m.append(ObservedTx {
                    reads_from: vec![(x(), i)],
                    writes: vec![x()],
                    ..Default::default()
                });
                assert!(!m.is_consistent(), "{model} missed the lost update");
            }
        }
    }

    #[test]
    fn long_fork_tolerated_only_by_psi() {
        for (model, expect_ok) in
            [(SpecModel::Psi, true), (SpecModel::Si, false), (SpecModel::Ser, false)]
        {
            for mut m in monitors(model) {
                let i = init(&mut m);
                let w1 = m.append(ObservedTx { writes: vec![x()], ..Default::default() });
                let w2 = m.append(ObservedTx { writes: vec![y()], ..Default::default() });
                m.append(ObservedTx {
                    reads_from: vec![(x(), w1), (y(), i)],
                    ..Default::default()
                });
                m.append(ObservedTx {
                    reads_from: vec![(x(), i), (y(), w2)],
                    ..Default::default()
                });
                assert_eq!(m.is_consistent(), expect_ok, "{model}");
            }
        }
    }

    #[test]
    fn violation_is_sticky_and_witnessed() {
        for mut m in monitors(SpecModel::Si) {
            let i = init(&mut m);
            m.append(ObservedTx {
                reads_from: vec![(x(), i)],
                writes: vec![x()],
                ..Default::default()
            });
            m.append(ObservedTx {
                reads_from: vec![(x(), i)],
                writes: vec![x()],
                ..Default::default()
            });
            assert!(!m.is_consistent());
            let witness = m.violation().unwrap().to_vec();
            assert!(!witness.is_empty());
            // Appending a harmless transaction does not clear the flag.
            m.append(ObservedTx { writes: vec![y()], ..Default::default() });
            assert!(!m.is_consistent());
            assert_eq!(m.violation().unwrap(), witness.as_slice());
        }
    }

    #[test]
    fn session_chains_count() {
        // T1 writes x; same session's T2 "reads stale x" (observes init
        // although T1 precedes it in the session) — SESSION makes this a
        // violation in every model.
        for mut m in monitors(SpecModel::Si) {
            let i = init(&mut m);
            let t1 = m.append(ObservedTx { writes: vec![x()], ..Default::default() });
            m.append(ObservedTx {
                session_predecessor: Some(t1),
                reads_from: vec![(x(), i)],
                ..Default::default()
            });
            assert!(!m.is_consistent());
        }
    }

    #[test]
    fn serial_stream_stays_consistent() {
        for mut m in monitors(SpecModel::Ser) {
            let mut last = init(&mut m);
            for _ in 0..10 {
                last = m.append(ObservedTx {
                    session_predecessor: Some(last),
                    reads_from: vec![(x(), last)],
                    writes: vec![x()],
                });
                assert!(m.is_consistent());
            }
            assert_eq!(m.tx_count(), 11); // init + 10 increments
        }
    }
}
