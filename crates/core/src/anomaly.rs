//! Classification of histories and dependency graphs across the three
//! consistency models, in the style of Figure 2.

use core::fmt;

use si_depgraph::DependencyGraph;
use si_execution::SpecModel;
use si_model::History;

use crate::history_check::{history_membership, SearchBudget, SearchExhausted};
use crate::membership::{check_psi, check_ser, check_si};

/// Which consistency models admit a history or dependency graph.
///
/// Because `GraphSER ⊆ GraphSI ⊆ GraphPSI` (and likewise for histories),
/// only four combinations occur; [`Classification::anomaly_label`] names
/// them after the canonical Figure 2 anomalies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Classification {
    /// Admitted by serializability.
    pub ser: bool,
    /// Admitted by snapshot isolation.
    pub si: bool,
    /// Admitted by parallel snapshot isolation.
    pub psi: bool,
    /// Admitted by prefix consistency (the [`crate::pc`] extension; SI
    /// without write-conflict detection). Satisfies `si ⇒ pc`.
    pub pc: bool,
}

impl Classification {
    /// A coarse label for the observable class, following Figure 2:
    ///
    /// * admitted everywhere → `"serializable"`;
    /// * SI but not SER → `"SI-only (write-skew-like)"` — the only cyclic
    ///   shape SI admits has two adjacent anti-dependencies (Theorem 19);
    /// * PSI but not SI → `"PSI-only (long-fork-like)"` — some cycle has
    ///   no two adjacent anti-dependencies (Theorem 22);
    /// * admitted nowhere → `"aborted-by-all (lost-update-like)"`.
    pub fn anomaly_label(&self) -> &'static str {
        match (self.ser, self.si, self.psi) {
            (true, _, _) => "serializable",
            (false, true, _) => "SI-only (write-skew-like)",
            (false, false, true) => "PSI-only (long-fork-like)",
            (false, false, false) => "aborted-by-all (lost-update-like)",
        }
    }

    /// Whether the inclusion chains SER ⊆ SI ⊆ PSI and SI ⊆ PC hold —
    /// always true for classifications produced by this crate; useful as a
    /// sanity assertion on hand-made values.
    pub fn respects_inclusions(&self) -> bool {
        fn implies(a: bool, b: bool) -> bool {
            !a || b
        }
        implies(self.ser, self.si) && implies(self.si, self.psi) && implies(self.si, self.pc)
    }
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SER: {}, SI: {}, PSI: {}, PC: {} — {}",
            self.ser,
            self.si,
            self.psi,
            self.pc,
            self.anomaly_label()
        )
    }
}

/// Classifies a dependency graph by the membership checks of Theorems 8, 9
/// and 21 plus the PC extension (all polynomial).
pub fn classify_graph(graph: &DependencyGraph) -> Classification {
    Classification {
        ser: check_ser(graph).is_ok(),
        si: check_si(graph).is_ok(),
        psi: check_psi(graph).is_ok(),
        pc: crate::pc::check_pc_graph(graph).is_ok(),
    }
}

/// Classifies a history by searching for admitting dependency graphs
/// (exponential worst case; see [`history_membership`]).
///
/// # Errors
///
/// Returns [`SearchExhausted`] if any of the three searches ran out of
/// budget.
pub fn classify_history(
    history: &History,
    budget: &SearchBudget,
) -> Result<Classification, SearchExhausted> {
    Ok(Classification {
        ser: history_membership(SpecModel::Ser, history, budget)?,
        si: history_membership(SpecModel::Si, history, budget)?,
        psi: history_membership(SpecModel::Psi, history, budget)?,
        pc: crate::pc::history_membership_pc(history, budget)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_model::{HistoryBuilder, Op};

    #[test]
    fn figure2_labels() {
        // Write skew.
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let (s1, s2) = (b.session(), b.session());
        b.push_tx(s1, [Op::read(x, 0), Op::read(y, 0), Op::write(x, 1)]);
        b.push_tx(s2, [Op::read(x, 0), Op::read(y, 0), Op::write(y, 1)]);
        let ws = b.build();
        let c = classify_history(&ws, &SearchBudget::default()).unwrap();
        assert_eq!(c.anomaly_label(), "SI-only (write-skew-like)");
        assert!(c.respects_inclusions());

        // Long fork.
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let (s1, s2, s3, s4) = (b.session(), b.session(), b.session(), b.session());
        b.push_tx(s1, [Op::write(x, 1)]);
        b.push_tx(s2, [Op::write(y, 1)]);
        b.push_tx(s3, [Op::read(x, 1), Op::read(y, 0)]);
        b.push_tx(s4, [Op::read(x, 0), Op::read(y, 1)]);
        let lf = b.build();
        let c = classify_history(&lf, &SearchBudget::default()).unwrap();
        assert_eq!(c.anomaly_label(), "PSI-only (long-fork-like)");

        // Lost update.
        let mut b = HistoryBuilder::new();
        let acct = b.object("acct");
        let (s1, s2) = (b.session(), b.session());
        b.push_tx(s1, [Op::read(acct, 0), Op::write(acct, 50)]);
        b.push_tx(s2, [Op::read(acct, 0), Op::write(acct, 25)]);
        let lu = b.build();
        let c = classify_history(&lu, &SearchBudget::default()).unwrap();
        assert_eq!(c.anomaly_label(), "aborted-by-all (lost-update-like)");

        // Serial.
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let s = b.session();
        b.push_tx(s, [Op::write(x, 1)]);
        b.push_tx(s, [Op::read(x, 1)]);
        let serial = b.build();
        let c = classify_history(&serial, &SearchBudget::default()).unwrap();
        assert_eq!(c.anomaly_label(), "serializable");
    }

    #[test]
    fn inclusion_sanity() {
        assert!(Classification { ser: true, si: true, psi: true, pc: true }.respects_inclusions());
        assert!(!Classification { ser: true, si: false, psi: true, pc: true }.respects_inclusions());
        assert!(
            !Classification { ser: false, si: true, psi: false, pc: true }.respects_inclusions()
        );
        assert!(
            !Classification { ser: false, si: true, psi: true, pc: false }.respects_inclusions()
        );
    }

    #[test]
    fn display_mentions_label() {
        let c = Classification { ser: false, si: true, psi: true, pc: true };
        assert!(c.to_string().contains("write-skew"));
    }
}
