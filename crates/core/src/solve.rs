//! Lemma 15: the closed-form smallest solution of the Figure 3
//! inequalities.

use si_depgraph::DependencyGraph;
use si_relations::Relation;

/// A solution `(VIS, CO)` to the system of inequalities in Figure 3 of the
/// paper:
///
/// ```text
/// (S1)  SO ∪ WR ∪ WW ⊆ VIS
/// (S2)  CO ; VIS ⊆ VIS
/// (S3)  VIS ⊆ CO
/// (S4)  CO ; CO ⊆ CO
/// (S5)  VIS ; RW ⊆ CO
/// ```
///
/// By Lemma 13, whenever `VIS` and `CO` are acyclic and solve the system,
/// `(T, SO, VIS, CO)` is a pre-execution in `PreExecSI` whose dependency
/// graph is exactly the input graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// The visibility relation.
    pub vis: Relation,
    /// The (possibly partial) commit order.
    pub co: Relation,
}

impl Solution {
    /// Verifies that the pair actually satisfies (S1)–(S5) for `graph` —
    /// used by tests and by callers that construct candidate solutions by
    /// other means.
    pub fn satisfies_inequalities(&self, graph: &DependencyGraph) -> bool {
        let d = graph.dep_relation();
        let rw = graph.rw_relation();
        d.is_subset(&self.vis)                                  // S1
            && self.co.compose(&self.vis).is_subset(&self.vis)  // S2
            && self.vis.is_subset(&self.co)                     // S3
            && self.co.compose(&self.co).is_subset(&self.co)    // S4
            && self.vis.compose(&rw).is_subset(&self.co) // S5
    }
}

/// Computes the smallest solution of the Figure 3 system whose commit
/// order contains every pair of `enforced` (the lemma's `R`):
///
/// ```text
/// VIS = ((D ; RW?) ∪ R)* ; D        CO = ((D ; RW?) ∪ R)+
/// ```
///
/// with `D = SO ∪ WR ∪ WW`. Minimality (Lemma 15): for any other solution
/// `(VIS', CO')` with `R ⊆ CO'`, we have `VIS ⊆ VIS'` and `CO ⊆ CO'`.
///
/// For `R = ∅` this yields the base pre-execution `P₀` of the Theorem 10(i)
/// construction; `G ∈ GraphSI` iff that base `CO` is irreflexive.
///
/// # Panics
///
/// Panics if `enforced` ranges over a different universe than the graph.
pub fn smallest_solution(graph: &DependencyGraph, enforced: &Relation) -> Solution {
    assert_eq!(
        enforced.universe(),
        graph.tx_count(),
        "enforced edges must range over the graph's transactions"
    );
    let d = graph.dep_relation();
    let rw = graph.rw_relation();
    let base = d.compose_opt(&rw).union(enforced); // (D ; RW?) ∪ R
    let co = base.transitive_closure();
    let vis = base.reflexive_transitive_closure().compose(&d);
    Solution { vis, co }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_depgraph::DepGraphBuilder;
    use si_model::{HistoryBuilder, Op};
    use si_relations::TxId;

    /// Write skew: the canonical `GraphSI \ GraphSER` member.
    fn write_skew() -> DependencyGraph {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let (s1, s2) = (b.session(), b.session());
        b.push_tx(s1, [Op::read(x, 0), Op::read(y, 0), Op::write(x, 1)]);
        b.push_tx(s2, [Op::read(x, 0), Op::read(y, 0), Op::write(y, 1)]);
        let h = b.build();
        let mut g = DepGraphBuilder::new(h);
        g.infer_wr();
        g.build().unwrap()
    }

    #[test]
    fn base_solution_satisfies_system() {
        let g = write_skew();
        let sol = smallest_solution(&g, &Relation::new(g.tx_count()));
        assert!(sol.satisfies_inequalities(&g));
        assert!(sol.co.is_acyclic(), "write skew is in GraphSI");
        assert!(sol.vis.is_acyclic());
    }

    #[test]
    fn enforced_edges_end_up_in_co() {
        let g = write_skew();
        let mut r = Relation::new(g.tx_count());
        r.insert(TxId(1), TxId(2));
        let sol = smallest_solution(&g, &r);
        assert!(sol.co.contains(TxId(1), TxId(2)));
        assert!(sol.satisfies_inequalities(&g));
    }

    #[test]
    fn minimality_against_enforced_supersets() {
        // The solution with R = ∅ is contained in the solution with any R.
        let g = write_skew();
        let base = smallest_solution(&g, &Relation::new(g.tx_count()));
        let mut r = Relation::new(g.tx_count());
        r.insert(TxId(2), TxId(1));
        let bigger = smallest_solution(&g, &r);
        assert!(base.co.is_subset(&bigger.co));
        assert!(base.vis.is_subset(&bigger.vis));
    }

    #[test]
    fn lost_update_base_co_is_cyclic() {
        // Lost update ∉ GraphSI, so the smallest CO ties a cycle.
        let mut b = HistoryBuilder::new();
        let acct = b.object("acct");
        let (s1, s2) = (b.session(), b.session());
        b.push_tx(s1, [Op::read(acct, 0), Op::write(acct, 50)]);
        b.push_tx(s2, [Op::read(acct, 0), Op::write(acct, 25)]);
        let h = b.build();
        let mut g = DepGraphBuilder::new(h);
        g.infer_wr();
        let g = g.build().unwrap();
        let sol = smallest_solution(&g, &Relation::new(g.tx_count()));
        assert!(!sol.co.is_acyclic());
    }

    #[test]
    fn vis_contains_dependencies() {
        let g = write_skew();
        let sol = smallest_solution(&g, &Relation::new(g.tx_count()));
        // S1 explicitly.
        assert!(g.dep_relation().is_subset(&sol.vis));
        // VIS must not relate the write-skew peers (they don't see each
        // other's writes).
        assert!(!sol.vis.contains(TxId(1), TxId(2)));
        assert!(!sol.vis.contains(TxId(2), TxId(1)));
        // But S5 forces their CO edges through VIS;RW: init's readers…
        // here the RW edges are T1 -RW-> T2 -RW-> T1 and VIS;RW includes
        // init -VIS-> T1 -RW-> T2, so init -CO-> … always holds.
        assert!(sol.co.contains(TxId(0), TxId(1)));
        assert!(sol.co.contains(TxId(0), TxId(2)));
    }
}
