//! Static chopping graphs (§5, Corollary 18).

use si_relations::{MultiGraph, TxId};

use crate::dcg::{ChopEdge, ConflictKind};
use crate::program::{PieceId, ProgramSet};

/// Maps between [`PieceId`]s and the dense vertex indices of a static
/// chopping graph.
#[derive(Debug, Clone)]
pub struct PieceNode {
    nodes: Vec<PieceId>,
}

impl PieceNode {
    /// The piece at a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn piece(&self, v: TxId) -> PieceId {
        self.nodes[v.index()]
    }

    /// The vertex of a piece.
    pub fn vertex(&self, piece: PieceId) -> Option<TxId> {
        self.nodes.iter().position(|&p| p == piece).map(TxId::from_index)
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether there are no pieces.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Builds the static chopping graph `SCG(P)` of a program set (§5): one
/// vertex per piece `(i, j)` and an edge `(i₁,j₁) → (i₂,j₂)` iff
///
/// * `i₁ = i₂ ∧ j₁ < j₂` — a *successor* edge;
/// * `i₁ = i₂ ∧ j₁ > j₂` — a *predecessor* edge;
/// * `i₁ ≠ i₂ ∧ W₁ ∩ R₂ ≠ ∅` — a read-dependency conflict;
/// * `i₁ ≠ i₂ ∧ W₁ ∩ W₂ ≠ ∅` — a write-dependency conflict;
/// * `i₁ ≠ i₂ ∧ R₁ ∩ W₂ ≠ ∅` — an anti-dependency conflict.
///
/// The edge set over-approximates `DCG(G)` for every dependency graph `G`
/// producible by `P` (one session per program instance), which is what
/// makes Corollary 18 sound. Note the approximation treats each program as
/// instantiable many times: conflicts between two instances of the *same*
/// program are modelled by the self-conflicts the definition induces when
/// a program conflicts with itself — the analysis follows the paper in
/// requiring `i₁ ≠ i₂` only for conflict edges between *pieces*, while
/// multiple instances of one program are handled by duplicating the
/// program in the set if needed.
///
/// Returns the labelled multigraph and the vertex↔piece mapping.
pub fn static_chopping_graph(programs: &ProgramSet) -> (MultiGraph<ChopEdge>, PieceNode) {
    let nodes: Vec<PieceId> = programs.pieces().collect();
    let mut g = MultiGraph::new(nodes.len());
    let vertex =
        |p: PieceId| TxId::from_index(nodes.iter().position(|&q| q == p).expect("piece in set"));

    for &a in &nodes {
        for &b in &nodes {
            if a == b {
                continue;
            }
            let (va, vb) = (vertex(a), vertex(b));
            if a.program == b.program {
                if a.piece < b.piece {
                    g.add_edge(va, vb, ChopEdge::Successor);
                } else {
                    g.add_edge(va, vb, ChopEdge::Predecessor);
                }
                continue;
            }
            let intersects =
                |xs: &[si_model::Obj], ys: &[si_model::Obj]| xs.iter().any(|x| ys.contains(x));
            if intersects(programs.writes(a), programs.reads(b)) {
                g.add_edge(va, vb, ChopEdge::Conflict(ConflictKind::Wr));
            }
            if intersects(programs.writes(a), programs.writes(b)) {
                g.add_edge(va, vb, ChopEdge::Conflict(ConflictKind::Ww));
            }
            if intersects(programs.reads(a), programs.writes(b)) {
                g.add_edge(va, vb, ChopEdge::Conflict(ConflictKind::Rw));
            }
        }
    }
    (g, PieceNode { nodes })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 6 programs: transfer chopped in two, plus two
    /// single-piece lookups.
    fn figure6() -> ProgramSet {
        let mut ps = ProgramSet::new();
        let a1 = ps.object("acct1");
        let a2 = ps.object("acct2");
        let t = ps.add_program("transfer");
        ps.add_piece(t, "acct1 -= 100", [a1], [a1]);
        ps.add_piece(t, "acct2 += 100", [a2], [a2]);
        let l1 = ps.add_program("lookup1");
        ps.add_piece(l1, "return acct1", [a1], []);
        let l2 = ps.add_program("lookup2");
        ps.add_piece(l2, "return acct2", [a2], []);
        ps
    }

    #[test]
    fn figure6_edges() {
        let ps = figure6();
        let (g, nodes) = static_chopping_graph(&ps);
        assert_eq!(nodes.len(), 4);
        assert!(!nodes.is_empty());

        let count = |kind: ChopEdge| g.edges().filter(|e| *e.label == kind).count();
        // transfer's two pieces: one successor + one predecessor edge.
        assert_eq!(count(ChopEdge::Successor), 1);
        assert_eq!(count(ChopEdge::Predecessor), 1);
        // transfer piece 1 <-> lookup1 on acct1: WR one way, RW the other;
        // likewise piece 2 <-> lookup2 on acct2.
        assert_eq!(count(ChopEdge::Conflict(ConflictKind::Wr)), 2);
        assert_eq!(count(ChopEdge::Conflict(ConflictKind::Rw)), 2);
        // Both pieces write disjoint objects; lookups write nothing.
        assert_eq!(count(ChopEdge::Conflict(ConflictKind::Ww)), 0);
    }

    #[test]
    fn node_mapping_roundtrip() {
        let ps = figure6();
        let (_, nodes) = static_chopping_graph(&ps);
        for piece in ps.pieces() {
            let v = nodes.vertex(piece).unwrap();
            assert_eq!(nodes.piece(v), piece);
        }
        assert_eq!(nodes.vertex(PieceId { program: crate::ProgramId(9), piece: 0 }), None);
    }

    #[test]
    fn same_program_pieces_never_conflict() {
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let p = ps.add_program("p");
        ps.add_piece(p, "a", [x], [x]);
        ps.add_piece(p, "b", [x], [x]);
        let (g, _) = static_chopping_graph(&ps);
        assert!(g.edges().all(|e| !e.label.is_conflict()));
    }

    #[test]
    fn rw_and_wr_are_directional() {
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let w = ps.add_program("writer");
        let wp = ps.add_piece(w, "w", [], [x]);
        let r = ps.add_program("reader");
        let rp = ps.add_piece(r, "r", [x], []);
        let (g, nodes) = static_chopping_graph(&ps);
        let (vw, vr) = (nodes.vertex(wp).unwrap(), nodes.vertex(rp).unwrap());
        let edges: Vec<_> = g.edges().map(|e| (e.from, e.to, *e.label)).collect();
        assert_eq!(edges.len(), 2);
        assert!(edges.contains(&(vw, vr, ChopEdge::Conflict(ConflictKind::Wr))));
        assert!(edges.contains(&(vr, vw, ChopEdge::Conflict(ConflictKind::Rw))));
    }
}
