//! The chopping advisor: find a correct chopping automatically.
//!
//! §5 tells you whether a *given* chopping is correct; in practice one
//! wants the opposite direction — "how finely *can* I chop?". The advisor
//! starts from the finest chopping the client proposes and greedily merges
//! adjacent pieces of the programs involved in critical cycles until the
//! static analysis accepts, yielding a correct chopping that is as fine as
//! the greedy order allows. Merging pieces only removes predecessor edges
//! and unions read/write sets, which can only remove critical cycles
//! involving the merged program's predecessor edges, so the process
//! terminates — in the worst case at the fully merged (unchopped)
//! application, which is always correct.

use crate::analysis::analyse_chopping;
use crate::critical::{Criterion, SearchBudgetExceeded};
use crate::dcg::ChopEdge;
use crate::program::ProgramSet;

/// The advisor's result.
#[derive(Debug, Clone)]
pub struct Advice {
    /// A correct chopping (piece read/write sets preserved, some pieces
    /// merged).
    pub programs: ProgramSet,
    /// How many merge steps were taken (0 = the input was already
    /// correct).
    pub merges: usize,
}

impl Advice {
    /// Total pieces in the advised chopping.
    pub fn piece_count(&self) -> usize {
        self.programs.piece_count()
    }
}

/// Greedily coarsens `programs` until the chopping is correct under
/// `criterion`.
///
/// The merge choice is driven by the witness: the first predecessor edge
/// on the critical cycle identifies a program whose chopping participates
/// in the danger; its pieces around that edge are merged. The result is
/// correct by construction (the loop only exits on an accepting
/// analysis).
///
/// # Errors
///
/// Returns [`SearchBudgetExceeded`] if any analysis round was cut short.
///
/// # Panics
///
/// Panics if a critical cycle contains no predecessor edge (impossible:
/// criticality requires a conflict-predecessor-conflict fragment).
pub fn advise_chopping(
    programs: &ProgramSet,
    criterion: Criterion,
    step_budget: usize,
) -> Result<Advice, SearchBudgetExceeded> {
    let mut current = programs.clone();
    let mut merges = 0;
    loop {
        let report = analyse_chopping(&current, criterion, step_budget)?;
        let Some(cycle) = report.witness else {
            return Ok(Advice { programs: current, merges });
        };
        // Find a predecessor edge on the cycle: it runs from piece j to
        // piece j' < j of the same program; merge pieces (j', j'+1).
        let pred_at = cycle
            .labels
            .iter()
            .position(|&l| l == ChopEdge::Predecessor)
            .expect("critical cycles contain a predecessor edge");
        let from = report.nodes.piece(cycle.nodes[pred_at]);
        let to = report.nodes.piece(cycle.nodes[(pred_at + 1) % cycle.nodes.len()]);
        debug_assert_eq!(from.program, to.program);
        let merge_at = to.piece.min(from.piece);
        current = current.merge_adjacent_pieces(from.program, merge_at);
        merges += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{PieceId, ProgramId};

    /// Figure 5's programs: the advisor must coarsen lookupAll (or the
    /// transfer) until correct.
    fn figure5() -> ProgramSet {
        let mut ps = ProgramSet::new();
        let a1 = ps.object("acct1");
        let a2 = ps.object("acct2");
        let t = ps.add_program("transfer");
        ps.add_piece(t, "acct1 -= 100", [a1], [a1]);
        ps.add_piece(t, "acct2 += 100", [a2], [a2]);
        let l = ps.add_program("lookupAll");
        ps.add_piece(l, "var1 = acct1", [a1], []);
        ps.add_piece(l, "var2 = acct2", [a2], []);
        ps
    }

    #[test]
    fn advisor_fixes_figure5() {
        let advice = advise_chopping(&figure5(), Criterion::Si, 2_000_000).unwrap();
        assert!(advice.merges > 0);
        assert!(advice.piece_count() < figure5().piece_count());
        // The advised chopping really is correct.
        let report = analyse_chopping(&advice.programs, Criterion::Si, 2_000_000).unwrap();
        assert!(report.correct);
        // Object names survive the rebuilds.
        assert_eq!(advice.programs.object_name(si_model::Obj(0)), Some("acct1"));
    }

    #[test]
    fn advisor_keeps_correct_choppings_unchanged() {
        // Figure 6 is already correct: zero merges.
        let mut ps = ProgramSet::new();
        let a1 = ps.object("acct1");
        let a2 = ps.object("acct2");
        let t = ps.add_program("transfer");
        ps.add_piece(t, "a", [a1], [a1]);
        ps.add_piece(t, "b", [a2], [a2]);
        let l1 = ps.add_program("lookup1");
        ps.add_piece(l1, "c", [a1], []);
        let l2 = ps.add_program("lookup2");
        ps.add_piece(l2, "d", [a2], []);
        let advice = advise_chopping(&ps, Criterion::Si, 2_000_000).unwrap();
        assert_eq!(advice.merges, 0);
        assert_eq!(advice.piece_count(), 4);
    }

    #[test]
    fn advisor_terminates_on_adversarial_input() {
        // Many mutually conflicting chopped programs: worst case merges
        // down towards whole transactions but must terminate correct.
        let mut ps = ProgramSet::new();
        let objs: Vec<_> = (0..3).map(|i| ps.object(&format!("o{i}"))).collect();
        for p in 0..3 {
            let prog = ps.add_program(&format!("p{p}"));
            for k in 0..3 {
                let o = objs[(p + k) % 3];
                ps.add_piece(prog, &format!("p{p}k{k}"), [o], [o]);
            }
        }
        let advice = advise_chopping(&ps, Criterion::Si, 5_000_000).unwrap();
        let report = analyse_chopping(&advice.programs, Criterion::Si, 5_000_000).unwrap();
        assert!(report.correct);
        assert_eq!(advice.programs.program_count(), 3);
    }

    #[test]
    fn merge_preserves_sets() {
        let ps = figure5();
        let merged = ps.merge_adjacent_pieces(ProgramId(1), 0);
        assert_eq!(merged.pieces_of(ProgramId(1)), 1);
        let piece = PieceId { program: ProgramId(1), piece: 0 };
        assert_eq!(merged.reads(piece).len(), 2); // acct1 and acct2
        assert!(merged.writes(piece).is_empty());
        // Other program untouched.
        assert_eq!(merged.pieces_of(ProgramId(0)), 2);
    }
}
