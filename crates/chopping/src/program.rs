//! Chopped applications: programs made of pieces with read/write sets.
//!
//! Following §5, an application is a set of *programs* `P = {P₁, P₂, …}`,
//! each the code of the session obtained by chopping one transaction into
//! `k_i` *pieces*. The static analysis sees only each piece's read set
//! `Rᵢʲ` and write set `Wᵢʲ` (over-approximations of the objects it can
//! touch at run time).

use core::fmt;

use si_model::Obj;

/// Identifies a program within a [`ProgramSet`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct ProgramId(pub usize);

/// Identifies a piece: `(program, index within the program)`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct PieceId {
    /// The owning program.
    pub program: ProgramId,
    /// Zero-based position of the piece in its program (session order).
    pub piece: usize,
}

impl fmt::Display for PieceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.program.0, self.piece)
    }
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct Piece {
    label: String,
    reads: Vec<Obj>,
    writes: Vec<Obj>,
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct Program {
    name: String,
    pieces: Vec<Piece>,
}

/// A set of chopped programs with interned object names — the input of the
/// static chopping analysis (Corollary 18) and of the robustness analyses
/// of §6.
///
/// # Example
///
/// ```
/// use si_chopping::ProgramSet;
///
/// let mut ps = ProgramSet::new();
/// let x = ps.object("x");
/// let w = ps.add_program("writer");
/// ps.add_piece(w, "x := 1", [], [x]);
/// assert_eq!(ps.piece_count(), 1);
/// assert_eq!(ps.piece_label(si_chopping::PieceId { program: w, piece: 0 }), "x := 1");
/// ```
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct ProgramSet {
    programs: Vec<Program>,
    object_names: Vec<String>,
}

impl ProgramSet {
    /// Creates an empty program set.
    pub fn new() -> Self {
        ProgramSet::default()
    }

    /// Interns an object name (idempotent).
    pub fn object(&mut self, name: &str) -> Obj {
        if let Some(i) = self.object_names.iter().position(|n| n == name) {
            return Obj::from_index(i);
        }
        self.object_names.push(name.to_owned());
        Obj::from_index(self.object_names.len() - 1)
    }

    /// The name of an interned object.
    pub fn object_name(&self, x: Obj) -> Option<&str> {
        self.object_names.get(x.index()).map(String::as_str)
    }

    /// Number of interned objects (the object universe size a workload
    /// over this set must be built with).
    pub fn object_count(&self) -> usize {
        self.object_names.len()
    }

    /// Adds an empty program; populate it with
    /// [`add_piece`](ProgramSet::add_piece).
    pub fn add_program(&mut self, name: &str) -> ProgramId {
        self.programs.push(Program { name: name.to_owned(), pieces: Vec::new() });
        ProgramId(self.programs.len() - 1)
    }

    /// Appends a piece to `program` with the given read and write sets,
    /// returning its id. The piece's position is its session order.
    ///
    /// # Panics
    ///
    /// Panics if `program` is not from this set.
    pub fn add_piece<R, W>(
        &mut self,
        program: ProgramId,
        label: &str,
        reads: R,
        writes: W,
    ) -> PieceId
    where
        R: IntoIterator<Item = Obj>,
        W: IntoIterator<Item = Obj>,
    {
        let prog = &mut self.programs[program.0];
        let mut reads: Vec<Obj> = reads.into_iter().collect();
        let mut writes: Vec<Obj> = writes.into_iter().collect();
        reads.sort_unstable();
        reads.dedup();
        writes.sort_unstable();
        writes.dedup();
        prog.pieces.push(Piece { label: label.to_owned(), reads, writes });
        PieceId { program, piece: prog.pieces.len() - 1 }
    }

    /// Number of programs.
    pub fn program_count(&self) -> usize {
        self.programs.len()
    }

    /// Total number of pieces across all programs.
    pub fn piece_count(&self) -> usize {
        self.programs.iter().map(|p| p.pieces.len()).sum()
    }

    /// Number of pieces of one program (`k_i`).
    ///
    /// # Panics
    ///
    /// Panics if `program` is not from this set.
    pub fn pieces_of(&self, program: ProgramId) -> usize {
        self.programs[program.0].pieces.len()
    }

    /// All program ids.
    pub fn programs(&self) -> impl Iterator<Item = ProgramId> + '_ {
        (0..self.programs.len()).map(ProgramId)
    }

    /// All piece ids, grouped by program, in session order.
    pub fn pieces(&self) -> impl Iterator<Item = PieceId> + '_ {
        self.programs.iter().enumerate().flat_map(|(pi, prog)| {
            (0..prog.pieces.len()).map(move |j| PieceId { program: ProgramId(pi), piece: j })
        })
    }

    /// A program's name.
    ///
    /// # Panics
    ///
    /// Panics if `program` is not from this set.
    pub fn program_name(&self, program: ProgramId) -> &str {
        &self.programs[program.0].name
    }

    /// A piece's human-readable label.
    ///
    /// # Panics
    ///
    /// Panics if `piece` is not from this set.
    pub fn piece_label(&self, piece: PieceId) -> &str {
        &self.programs[piece.program.0].pieces[piece.piece].label
    }

    /// The piece's read set `Rᵢʲ`.
    ///
    /// # Panics
    ///
    /// Panics if `piece` is not from this set.
    pub fn reads(&self, piece: PieceId) -> &[Obj] {
        &self.programs[piece.program.0].pieces[piece.piece].reads
    }

    /// The piece's write set `Wᵢʲ`.
    ///
    /// # Panics
    ///
    /// Panics if `piece` is not from this set.
    pub fn writes(&self, piece: PieceId) -> &[Obj] {
        &self.programs[piece.program.0].pieces[piece.piece].writes
    }

    /// Returns the set with pieces `k` and `k+1` of `program` merged into
    /// one piece whose read/write sets are the unions and whose label
    /// joins the originals with ` + `. All other programs and pieces are
    /// unchanged. When `k + 1` is out of range the set is returned as-is.
    ///
    /// This is the primitive step of the chopping advisor and of
    /// `si-lint`'s merge-repair search: merging pieces only removes
    /// predecessor edges from the static chopping graph and unions
    /// read/write sets, so it can only remove critical cycles through the
    /// merged program's predecessor edges.
    ///
    /// # Panics
    ///
    /// Panics if `program` is not from this set.
    pub fn merge_adjacent_pieces(&self, program: ProgramId, k: usize) -> ProgramSet {
        let mut out = ProgramSet { programs: Vec::new(), object_names: self.object_names.clone() };
        for (pi, prog) in self.programs.iter().enumerate() {
            let mut pieces = Vec::new();
            let mut j = 0;
            while j < prog.pieces.len() {
                if ProgramId(pi) == program && j == k && j + 1 < prog.pieces.len() {
                    let (first, second) = (&prog.pieces[j], &prog.pieces[j + 1]);
                    let mut reads: Vec<Obj> =
                        first.reads.iter().chain(&second.reads).copied().collect();
                    let mut writes: Vec<Obj> =
                        first.writes.iter().chain(&second.writes).copied().collect();
                    reads.sort_unstable();
                    reads.dedup();
                    writes.sort_unstable();
                    writes.dedup();
                    pieces.push(Piece {
                        label: format!("{} + {}", first.label, second.label),
                        reads,
                        writes,
                    });
                    j += 2;
                } else {
                    pieces.push(prog.pieces[j].clone());
                    j += 1;
                }
            }
            out.programs.push(Program { name: prog.name.clone(), pieces });
        }
        out
    }

    /// Returns the set with every program duplicated `instances` times
    /// (copy `k` of program `P` named `P#k`), modelling that many
    /// concurrent run-time instances of each program. Object interning is
    /// preserved, so [`Obj`] values agree between the original and the
    /// replica.
    ///
    /// The §6 static dependency graph draws one vertex per program, which
    /// hides dangerous structures formed by two instances of the *same*
    /// program; replication makes them visible to the analyses (see
    /// `StaticDepGraph::from_programs_with_instances` in `si-robustness`).
    ///
    /// # Panics
    ///
    /// Panics if `instances` is zero.
    pub fn replicated(&self, instances: usize) -> ProgramSet {
        assert!(instances >= 1, "need at least one instance per program");
        let mut out = ProgramSet { programs: Vec::new(), object_names: self.object_names.clone() };
        for k in 0..instances {
            for prog in &self.programs {
                out.programs.push(Program {
                    name: format!("{}#{k}", prog.name),
                    pieces: prog.pieces.clone(),
                });
            }
        }
        out
    }

    /// Merges every program into a single-piece program (the unchopped
    /// application): the piece's read/write sets are the unions over the
    /// program's pieces. Used by the robustness analyses of §6, which work
    /// on whole transactions.
    pub fn unchopped(&self) -> ProgramSet {
        let mut out = ProgramSet { programs: Vec::new(), object_names: self.object_names.clone() };
        for prog in &self.programs {
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            for piece in &prog.pieces {
                reads.extend(piece.reads.iter().copied());
                writes.extend(piece.writes.iter().copied());
            }
            reads.sort_unstable();
            reads.dedup();
            writes.sort_unstable();
            writes.dedup();
            out.programs.push(Program {
                name: prog.name.clone(),
                pieces: vec![Piece { label: format!("{} (whole)", prog.name), reads, writes }],
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let y = ps.object("y");
        assert_eq!(ps.object("x"), x);
        let p = ps.add_program("transfer");
        let p1 = ps.add_piece(p, "first", [x], [x]);
        let p2 = ps.add_piece(p, "second", [y], [y]);
        assert_eq!(ps.program_count(), 1);
        assert_eq!(ps.piece_count(), 2);
        assert_eq!(ps.pieces_of(p), 2);
        assert_eq!(ps.reads(p1), &[x]);
        assert_eq!(ps.writes(p2), &[y]);
        assert_eq!(ps.piece_label(p1), "first");
        assert_eq!(ps.program_name(p), "transfer");
        assert_eq!(ps.pieces().collect::<Vec<_>>(), vec![p1, p2]);
        assert_eq!(ps.object_name(x), Some("x"));
    }

    #[test]
    fn read_write_sets_are_dedup_sorted() {
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let y = ps.object("y");
        let p = ps.add_program("p");
        let piece = ps.add_piece(p, "piece", [y, x, y], [x, x]);
        assert_eq!(ps.reads(piece), &[x, y]);
        assert_eq!(ps.writes(piece), &[x]);
    }

    #[test]
    fn replicated_duplicates_programs() {
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let y = ps.object("y");
        let p = ps.add_program("transfer");
        ps.add_piece(p, "a", [x], [x]);
        ps.add_piece(p, "b", [y], [y]);
        let twice = ps.replicated(2);
        assert_eq!(twice.program_count(), 2);
        assert_eq!(twice.piece_count(), 4);
        assert_eq!(twice.program_name(ProgramId(0)), "transfer#0");
        assert_eq!(twice.program_name(ProgramId(1)), "transfer#1");
        // Interning preserved: the replica resolves the same Obj values.
        assert_eq!(twice.object_name(x), Some("x"));
        let piece = PieceId { program: ProgramId(1), piece: 1 };
        assert_eq!(twice.reads(piece), &[y]);
        assert_eq!(twice.writes(piece), &[y]);
    }

    #[test]
    fn unchopped_unions_pieces() {
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let y = ps.object("y");
        let p = ps.add_program("transfer");
        ps.add_piece(p, "a", [x], [x]);
        ps.add_piece(p, "b", [y], [y]);
        let whole = ps.unchopped();
        assert_eq!(whole.piece_count(), 1);
        let piece = whole.pieces().next().unwrap();
        assert_eq!(whole.reads(piece), &[x, y]);
        assert_eq!(whole.writes(piece), &[x, y]);
    }
}
