//! Dynamic chopping graphs (§5).

use core::fmt;

use si_depgraph::DependencyGraph;
use si_relations::MultiGraph;

/// The kind of a conflict edge in a chopping graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConflictKind {
    /// Read dependency (`WR`).
    Wr,
    /// Write dependency (`WW`).
    Ww,
    /// Anti-dependency (`RW`).
    Rw,
}

/// An edge of a (static or dynamic) chopping graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChopEdge {
    /// Session order (`SO`), or "later piece of the same program".
    Successor,
    /// Reverse session order (`SO⁻¹`), or "earlier piece of the same
    /// program".
    Predecessor,
    /// A dependency between different sessions/programs.
    Conflict(ConflictKind),
}

impl ChopEdge {
    /// Whether the edge is a conflict edge (of any kind).
    pub fn is_conflict(self) -> bool {
        matches!(self, ChopEdge::Conflict(_))
    }

    /// Whether the edge is an anti-dependency conflict.
    pub fn is_rw_conflict(self) -> bool {
        matches!(self, ChopEdge::Conflict(ConflictKind::Rw))
    }

    /// Whether the edge is a read- or write-dependency conflict (the
    /// "separator" kinds in the SI criticality condition).
    pub fn is_dep_conflict(self) -> bool {
        matches!(self, ChopEdge::Conflict(ConflictKind::Wr | ConflictKind::Ww))
    }
}

impl fmt::Display for ChopEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChopEdge::Successor => write!(f, "S"),
            ChopEdge::Predecessor => write!(f, "P"),
            ChopEdge::Conflict(ConflictKind::Wr) => write!(f, "WR"),
            ChopEdge::Conflict(ConflictKind::Ww) => write!(f, "WW"),
            ChopEdge::Conflict(ConflictKind::Rw) => write!(f, "RW"),
        }
    }
}

/// Builds the dynamic chopping graph `DCG(G)` of a dependency graph (§5):
///
/// * vertices are `G`'s transactions;
/// * `SO` edges become *successor* edges and their inverses *predecessor*
///   edges;
/// * `WR`/`WW`/`RW` edges **between different sessions** (i.e. not related
///   by `≈_G`) become *conflict* edges; dependencies inside a session are
///   dropped — splicing internalises them.
///
/// Theorem 16: if `G ∈ GraphSI` and `DCG(G)` has no SI-critical cycle,
/// then `G` is spliceable.
pub fn dynamic_chopping_graph(graph: &DependencyGraph) -> MultiGraph<ChopEdge> {
    let n = graph.tx_count();
    let mut g = MultiGraph::new(n);
    let same_session = graph.history().same_session();

    for (a, b) in graph.so_relation().iter_pairs() {
        g.add_edge(a, b, ChopEdge::Successor);
        g.add_edge(b, a, ChopEdge::Predecessor);
    }
    for (kind, rel) in [
        (ConflictKind::Wr, graph.wr_relation()),
        (ConflictKind::Ww, graph.ww_relation()),
        (ConflictKind::Rw, graph.rw_relation()),
    ] {
        for (a, b) in rel.iter_pairs() {
            if !same_session.contains(a, b) {
                g.add_edge(a, b, ChopEdge::Conflict(kind));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_depgraph::DepGraphBuilder;
    use si_model::{HistoryBuilder, Op};
    use si_relations::TxId;

    #[test]
    fn edges_are_classified() {
        // Session 1: T1 writes x, T2 reads y. Session 2: T3 reads x,
        // writes y.
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let s1 = b.session();
        let s2 = b.session();
        b.push_tx(s1, [Op::write(x, 1)]);
        b.push_tx(s1, [Op::read(y, 0)]);
        b.push_tx(s2, [Op::read(x, 1), Op::write(y, 1)]);
        let h = b.build();
        let mut gb = DepGraphBuilder::new(h);
        gb.infer_wr();
        let g = gb.build().unwrap();

        let dcg = dynamic_chopping_graph(&g);
        let kinds: Vec<(TxId, TxId, ChopEdge)> =
            dcg.edges().map(|e| (e.from, e.to, *e.label)).collect();

        // SO between T1 and T2 (session 1) in both roles.
        assert!(kinds.contains(&(TxId(1), TxId(2), ChopEdge::Successor)));
        assert!(kinds.contains(&(TxId(2), TxId(1), ChopEdge::Predecessor)));
        // Cross-session conflicts: T1 -WR-> T3 (x), T2 -RW-> T3 (y).
        assert!(kinds.contains(&(TxId(1), TxId(3), ChopEdge::Conflict(ConflictKind::Wr))));
        assert!(kinds.contains(&(TxId(2), TxId(3), ChopEdge::Conflict(ConflictKind::Rw))));
    }

    #[test]
    fn same_session_conflicts_are_dropped() {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let s = b.session();
        b.push_tx(s, [Op::write(x, 1)]);
        b.push_tx(s, [Op::read(x, 1)]); // WR within the session
        let h = b.build();
        let mut gb = DepGraphBuilder::new(h);
        gb.infer_wr();
        let g = gb.build().unwrap();
        let dcg = dynamic_chopping_graph(&g);
        // The only conflict edges allowed are those involving the init
        // transaction (it is in no session, so ≈ relates it to nothing).
        for e in dcg.edges() {
            if e.label.is_conflict() {
                assert!(e.from == TxId(0) || e.to == TxId(0), "unexpected {e:?}");
            }
        }
    }

    #[test]
    fn edge_kind_predicates() {
        assert!(ChopEdge::Conflict(ConflictKind::Rw).is_conflict());
        assert!(ChopEdge::Conflict(ConflictKind::Rw).is_rw_conflict());
        assert!(!ChopEdge::Conflict(ConflictKind::Rw).is_dep_conflict());
        assert!(ChopEdge::Conflict(ConflictKind::Ww).is_dep_conflict());
        assert!(!ChopEdge::Successor.is_conflict());
        assert_eq!(ChopEdge::Predecessor.to_string(), "P");
    }
}
