//! Top-level chopping analyses: Corollary 18 (static) and Theorem 16
//! (dynamic).

use core::fmt;

use si_depgraph::DependencyGraph;
use si_relations::LabelledCycle;

use crate::critical::{find_critical_cycle, Criterion, SearchBudgetExceeded};
use crate::dcg::{dynamic_chopping_graph, ChopEdge, ConflictKind};
use crate::program::{PieceId, ProgramSet};
use crate::scg::{static_chopping_graph, PieceNode};

/// The object a conflict edge between two pieces fights over: the first
/// (lowest-interned) element of the relevant set intersection, or `None`
/// if the sets do not intersect (i.e. the edge does not exist).
pub fn conflict_object(
    programs: &ProgramSet,
    from: PieceId,
    to: PieceId,
    kind: ConflictKind,
) -> Option<si_model::Obj> {
    let (xs, ys) = match kind {
        ConflictKind::Wr => (programs.writes(from), programs.reads(to)),
        ConflictKind::Ww => (programs.writes(from), programs.writes(to)),
        ConflictKind::Rw => (programs.reads(from), programs.writes(to)),
    };
    // Both sets are sorted by Obj index, so the first match is canonical.
    xs.iter().copied().find(|x| ys.contains(x))
}

/// Outcome of the static chopping analysis of a program set under one
/// criterion.
#[derive(Debug, Clone)]
pub struct ChoppingReport {
    /// The criterion applied.
    pub criterion: Criterion,
    /// `true` iff the static chopping graph has no critical cycle, i.e.
    /// the chopping is correct under the criterion's model.
    pub correct: bool,
    /// A witness critical cycle when `correct` is false.
    pub witness: Option<LabelledCycle<ChopEdge>>,
    /// The vertex↔piece mapping for interpreting the witness.
    pub nodes: PieceNode,
}

impl ChoppingReport {
    /// Renders the witness cycle over program and piece *names* from
    /// `programs` (empty string when correct). Conflict edges are
    /// annotated with the object they conflict on, e.g.
    /// `transfer[acct1 -= 100] -WR(acct1)-> lookupAll[var1 = acct1]`.
    pub fn describe_witness(&self, programs: &ProgramSet) -> String {
        let Some(cycle) = &self.witness else {
            return String::new();
        };
        let render_node = |piece: PieceId| {
            format!("{}[{}]", programs.program_name(piece.program), programs.piece_label(piece))
        };
        let mut out = String::new();
        let n = cycle.nodes.len();
        for (i, (node, label)) in cycle.nodes.iter().zip(&cycle.labels).enumerate() {
            let piece = self.nodes.piece(*node);
            let next = self.nodes.piece(cycle.nodes[(i + 1) % n]);
            let edge = match label {
                ChopEdge::Conflict(kind) => match conflict_object(programs, piece, next, *kind) {
                    Some(obj) => {
                        let name = programs.object_name(obj).unwrap_or("?");
                        format!("-{label}({name})-> ")
                    }
                    None => format!("-{label}-> "),
                },
                _ => format!("-{label}-> "),
            };
            out.push_str(&render_node(piece));
            out.push(' ');
            out.push_str(&edge);
        }
        if let Some(first) = cycle.nodes.first() {
            out.push_str(&render_node(self.nodes.piece(*first)));
        }
        out
    }
}

impl fmt::Display for ChoppingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.correct {
            write!(f, "chopping is correct under {}", self.criterion)
        } else {
            write!(f, "chopping is INCORRECT under {} (critical cycle found)", self.criterion)
        }
    }
}

/// The static chopping analysis (Corollary 18 for SI; Theorems 29 and 31
/// for SER and PSI): builds `SCG(P)` and searches it for a critical cycle.
///
/// # Errors
///
/// Returns [`SearchBudgetExceeded`] if cycle enumeration was cut short —
/// the chopping must then be treated as possibly incorrect.
pub fn analyse_chopping(
    programs: &ProgramSet,
    criterion: Criterion,
    step_budget: usize,
) -> Result<ChoppingReport, SearchBudgetExceeded> {
    let (graph, nodes) = static_chopping_graph(programs);
    let witness = find_critical_cycle(&graph, criterion, step_budget)?;
    Ok(ChoppingReport { criterion, correct: witness.is_none(), witness, nodes })
}

/// The dynamic chopping criterion (Theorem 16): `true` iff `DCG(G)` has no
/// SI-critical cycle, in which case `G` is spliceable (provided
/// `G ∈ GraphSI`).
///
/// # Errors
///
/// Returns [`SearchBudgetExceeded`] if cycle enumeration was cut short.
pub fn is_spliceable_by_criterion(
    graph: &DependencyGraph,
    step_budget: usize,
) -> Result<bool, SearchBudgetExceeded> {
    let dcg = dynamic_chopping_graph(graph);
    Ok(find_critical_cycle(&dcg, Criterion::Si, step_budget)?.is_none())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 5: {transfer, lookupAll} with lookupAll chopped in two.
    fn figure5() -> ProgramSet {
        let mut ps = ProgramSet::new();
        let a1 = ps.object("acct1");
        let a2 = ps.object("acct2");
        let t = ps.add_program("transfer");
        ps.add_piece(t, "acct1 -= 100", [a1], [a1]);
        ps.add_piece(t, "acct2 += 100", [a2], [a2]);
        let l = ps.add_program("lookupAll");
        ps.add_piece(l, "var1 = acct1", [a1], []);
        ps.add_piece(l, "var2 = acct2", [a2], []);
        ps
    }

    /// Figure 6: {transfer, lookup1, lookup2}.
    fn figure6() -> ProgramSet {
        let mut ps = ProgramSet::new();
        let a1 = ps.object("acct1");
        let a2 = ps.object("acct2");
        let t = ps.add_program("transfer");
        ps.add_piece(t, "acct1 -= 100", [a1], [a1]);
        ps.add_piece(t, "acct2 += 100", [a2], [a2]);
        let l1 = ps.add_program("lookup1");
        ps.add_piece(l1, "return acct1", [a1], []);
        let l2 = ps.add_program("lookup2");
        ps.add_piece(l2, "return acct2", [a2], []);
        ps
    }

    #[test]
    fn figure5_is_incorrect_under_si() {
        let report = analyse_chopping(&figure5(), Criterion::Si, 1_000_000).unwrap();
        assert!(!report.correct);
        let desc = report.describe_witness(&figure5());
        assert!(desc.contains("->"), "witness should render: {desc}");
        // The rendering names programs, pieces and conflict objects.
        assert!(desc.contains("transfer[") || desc.contains("lookupAll["), "{desc}");
        assert!(desc.contains("(acct1)") || desc.contains("(acct2)"), "{desc}");
        assert!(report.to_string().contains("INCORRECT"));
    }

    #[test]
    fn conflict_object_resolves_the_contended_object() {
        let ps = figure5();
        let a1 = PieceId { program: crate::ProgramId(0), piece: 0 }; // transfer: acct1 -= 100
        let lookup1 = PieceId { program: crate::ProgramId(1), piece: 0 }; // var1 = acct1
        let obj = conflict_object(&ps, a1, lookup1, ConflictKind::Wr).unwrap();
        assert_eq!(ps.object_name(obj), Some("acct1"));
        assert_eq!(conflict_object(&ps, a1, lookup1, ConflictKind::Ww), None);
        let anti = conflict_object(&ps, lookup1, a1, ConflictKind::Rw).unwrap();
        assert_eq!(ps.object_name(anti), Some("acct1"));
    }

    #[test]
    fn figure6_is_correct_under_si_and_ser() {
        for criterion in [Criterion::Si, Criterion::Ser, Criterion::Psi] {
            let report = analyse_chopping(&figure6(), criterion, 1_000_000).unwrap();
            assert!(report.correct, "figure 6 must be correct under {criterion}");
            assert_eq!(report.describe_witness(&figure6()), "");
        }
    }

    /// Figure 11: correct under SI, incorrect under SER.
    fn figure11() -> ProgramSet {
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let y = ps.object("y");
        let w1 = ps.add_program("write1");
        ps.add_piece(w1, "var1 = x", [x], []);
        ps.add_piece(w1, "y = var1", [], [y]);
        let w2 = ps.add_program("write2");
        ps.add_piece(w2, "var2 = y", [y], []);
        ps.add_piece(w2, "x = var2", [], [x]);
        ps
    }

    #[test]
    fn figure11_si_yes_ser_no() {
        let ps = figure11();
        assert!(analyse_chopping(&ps, Criterion::Si, 1_000_000).unwrap().correct);
        assert!(!analyse_chopping(&ps, Criterion::Ser, 1_000_000).unwrap().correct);
        // PSI accepts whatever SI accepts.
        assert!(analyse_chopping(&ps, Criterion::Psi, 1_000_000).unwrap().correct);
    }

    /// Figure 12: correct under PSI, incorrect under SI.
    fn figure12() -> ProgramSet {
        let mut ps = ProgramSet::new();
        let x = ps.object("x");
        let y = ps.object("y");
        let w1 = ps.add_program("write1");
        ps.add_piece(w1, "x = post1", [], [x]);
        let w2 = ps.add_program("write2");
        ps.add_piece(w2, "y = post2", [], [y]);
        let r1 = ps.add_program("read1");
        ps.add_piece(r1, "a = y", [y], []);
        ps.add_piece(r1, "b = x", [x], []);
        let r2 = ps.add_program("read2");
        ps.add_piece(r2, "a = x", [x], []);
        ps.add_piece(r2, "b = y", [y], []);
        ps
    }

    #[test]
    fn figure12_psi_yes_si_no() {
        let ps = figure12();
        assert!(analyse_chopping(&ps, Criterion::Psi, 1_000_000).unwrap().correct);
        assert!(!analyse_chopping(&ps, Criterion::Si, 1_000_000).unwrap().correct);
        assert!(!analyse_chopping(&ps, Criterion::Ser, 1_000_000).unwrap().correct);
    }

    #[test]
    fn unchopped_programs_are_always_correct() {
        // A one-piece program has no predecessor edges, hence no critical
        // cycles under any criterion.
        let ps = figure5().unchopped();
        for criterion in [Criterion::Ser, Criterion::Si, Criterion::Psi] {
            assert!(analyse_chopping(&ps, criterion, 1_000_000).unwrap().correct);
        }
    }
}
