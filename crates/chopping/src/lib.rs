//! Transaction chopping under snapshot isolation — §5 and Appendix B of
//! *Analysing Snapshot Isolation* (Cerone & Gotsman, PODC 2016).
//!
//! *Chopping* splits a transaction into a session of smaller transactions
//! to improve performance. A chopping is **correct** when every chopped
//! execution can be *spliced* — its sessions merged back into single
//! transactions — without leaving the consistency model, i.e. without
//! exhibiting behaviour the unchopped application could not.
//!
//! The crate implements both halves of the paper's analysis:
//!
//! * **Dynamic** (Theorem 16): a dependency graph `G ∈ GraphSI` is
//!   spliceable if its *dynamic chopping graph* [`dynamic_chopping_graph`]
//!   — conflict edges across sessions plus successor/predecessor edges —
//!   has no **SI-critical cycle**: a simple cycle with a
//!   conflict-predecessor-conflict fragment in which any two
//!   anti-dependency edges are separated by a read/write dependency edge.
//!   [`splice_history`] and [`splice_graph`] perform the actual splicing.
//!
//! * **Static** (Corollary 18): given only each program piece's read and
//!   write sets, the *static chopping graph* [`static_chopping_graph`]
//!   over-approximates every dynamic graph the programs can produce; if it
//!   has no SI-critical cycle the chopping is correct for **every**
//!   execution.
//!
//! The same machinery checks the serializability criterion of Shasha et
//! al. (Theorem 29: SER-critical = simple + fragment) and the parallel-SI
//! criterion (Theorem 31: PSI-critical = SER-critical + at most one
//! anti-dependency), enabling the Appendix B comparisons: every
//! PSI-critical cycle is SI-critical, and every SI-critical cycle is
//! SER-critical, so correctness transfers downwards:
//! `correct under SER ⇐ correct under SI ⇐ correct under PSI`.
//!
//! # Example: Figures 5 and 6
//!
//! ```
//! use si_chopping::{static_chopping_graph, find_critical_cycle, Criterion, ProgramSet};
//!
//! let mut ps = ProgramSet::new();
//! let a1 = ps.object("acct1");
//! let a2 = ps.object("acct2");
//! let transfer = ps.add_program("transfer");
//! ps.add_piece(transfer, "acct1 -= 100", [a1], [a1]);
//! ps.add_piece(transfer, "acct2 += 100", [a2], [a2]);
//! let lookup_all = ps.add_program("lookupAll");
//! ps.add_piece(lookup_all, "read both", [a1, a2], []);
//!
//! // Figure 5: chopping {transfer, lookupAll} is incorrect under SI.
//! let (scg, _nodes) = static_chopping_graph(&ps);
//! let witness = find_critical_cycle(&scg, Criterion::Si, 1_000_000).unwrap();
//! assert!(witness.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod advisor;
mod analysis;
mod critical;
mod dcg;
mod program;
mod scg;
mod splice;

pub use advisor::{advise_chopping, Advice};
pub use analysis::{analyse_chopping, conflict_object, is_spliceable_by_criterion, ChoppingReport};
pub use critical::{find_critical_cycle, is_critical, Criterion, SearchBudgetExceeded};
pub use dcg::{dynamic_chopping_graph, ChopEdge, ConflictKind};
pub use program::{PieceId, ProgramId, ProgramSet};
pub use scg::{static_chopping_graph, PieceNode};
pub use splice::{splice_graph, splice_history, SpliceError};
