//! Critical cycles: the dangerous shapes of chopping graphs.

use core::fmt;

use si_relations::{CycleVisit, EnumerationEnd, LabelledCycle, MultiGraph};

use crate::dcg::ChopEdge;

/// Which consistency model's chopping criterion to apply.
///
/// All three criteria require a *simple* cycle containing three
/// consecutive edges of the form "conflict, predecessor, conflict"; they
/// differ in how they constrain anti-dependency (RW) conflict edges:
///
/// | criterion | extra condition on the cycle | source |
/// |-----------|------------------------------|--------|
/// | [`Ser`](Criterion::Ser) | none | Definition 28 / Shasha et al. |
/// | [`Si`](Criterion::Si)   | any two RW edges are separated by a WR or WW edge | §5 |
/// | [`Psi`](Criterion::Psi) | at most one RW edge | Definition 30 / \[11\] |
///
/// Consequently every PSI-critical cycle is SI-critical and every
/// SI-critical cycle is SER-critical, so the criteria get *laxer* (more
/// choppings accepted) as the model gets weaker: SER ⊑ SI ⊑ PSI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Criterion {
    /// Serializability (Theorem 29).
    Ser,
    /// Snapshot isolation (Theorem 16 / Corollary 18).
    Si,
    /// Parallel snapshot isolation (Theorem 31).
    Psi,
}

impl fmt::Display for Criterion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Criterion::Ser => write!(f, "SER"),
            Criterion::Si => write!(f, "SI"),
            Criterion::Psi => write!(f, "PSI"),
        }
    }
}

/// Whether the cycle contains three consecutive edges (cyclically) of the
/// form "conflict, predecessor, conflict".
fn has_conflict_pred_conflict(labels: &[ChopEdge]) -> bool {
    let n = labels.len();
    if n < 3 {
        return false;
    }
    (0..n).any(|i| {
        labels[i].is_conflict()
            && labels[(i + 1) % n] == ChopEdge::Predecessor
            && labels[(i + 2) % n].is_conflict()
    })
}

/// Whether, walking the cycle cyclically, every two consecutive RW
/// conflict edges have at least one WR/WW conflict edge strictly between
/// them. Vacuously true with fewer than two RW edges.
fn rw_edges_separated(labels: &[ChopEdge]) -> bool {
    let n = labels.len();
    let rw_positions: Vec<usize> = (0..n).filter(|&i| labels[i].is_rw_conflict()).collect();
    if rw_positions.len() < 2 {
        return true;
    }
    for (k, &start) in rw_positions.iter().enumerate() {
        let end = rw_positions[(k + 1) % rw_positions.len()];
        // Walk the open segment (start, end) cyclically.
        let mut i = (start + 1) % n;
        let mut separated = false;
        while i != end {
            if labels[i].is_dep_conflict() {
                separated = true;
                break;
            }
            i = (i + 1) % n;
        }
        if !separated {
            return false;
        }
    }
    true
}

/// Whether a (vertex-simple) cycle is critical for the given criterion.
/// The caller guarantees simplicity — cycles produced by
/// [`MultiGraph::simple_cycles`] always are.
pub fn is_critical(criterion: Criterion, cycle: &LabelledCycle<ChopEdge>) -> bool {
    if !has_conflict_pred_conflict(&cycle.labels) {
        return false;
    }
    match criterion {
        Criterion::Ser => true,
        Criterion::Si => rw_edges_separated(&cycle.labels),
        Criterion::Psi => cycle.labels.iter().filter(|l| l.is_rw_conflict()).count() <= 1,
    }
}

/// The cycle enumeration hit its step budget before finding a critical
/// cycle or exhausting the graph; the analysis is inconclusive and must be
/// treated as "possibly incorrect chopping".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudgetExceeded;

impl fmt::Display for SearchBudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "critical-cycle search budget exceeded; result inconclusive")
    }
}

impl std::error::Error for SearchBudgetExceeded {}

/// Strongly connected components of the projected (label-blind) digraph,
/// as a component index per vertex. Iterative Tarjan.
fn components(graph: &MultiGraph<ChopEdge>) -> Vec<u32> {
    let n = graph.vertex_count();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in graph.edges() {
        adj[e.from.index()].push(e.to.index() as u32);
    }

    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut comp = vec![0u32; n];
    let mut next_index = 0u32;
    let mut next_comp = 0u32;
    let mut call: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        call.push((root, 0));
        while let Some(&mut (v, ref mut i)) = call.last_mut() {
            if let Some(&w) = adj[v as usize].get(*i) {
                *i += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    loop {
                        let w = stack.pop().expect("Tarjan stack holds the component");
                        on_stack[w as usize] = false;
                        comp[w as usize] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

/// Whether the "conflict, predecessor, conflict" fragment every critical
/// cycle must contain can possibly lie on a cycle: some predecessor edge
/// `v → w` inside one SCC with a same-SCC conflict edge into `v` and a
/// same-SCC conflict edge out of `w`. A simple cycle stays within one SCC,
/// so this is necessary for *any* criterion's critical cycle — but only an
/// over-approximation (the witnesses need not be joinable into one simple
/// cycle), hence Johnson's enumeration still decides the survivors.
fn fragment_feasible(graph: &MultiGraph<ChopEdge>) -> bool {
    let comp = components(graph);
    let n = graph.vertex_count();
    let mut conflict_in = vec![false; n];
    let mut conflict_out = vec![false; n];
    for e in graph.edges() {
        if e.label.is_conflict() && e.from != e.to && comp[e.from.index()] == comp[e.to.index()] {
            conflict_out[e.from.index()] = true;
            conflict_in[e.to.index()] = true;
        }
    }
    graph.edges().any(|e| {
        *e.label == ChopEdge::Predecessor
            && comp[e.from.index()] == comp[e.to.index()]
            && conflict_in[e.from.index()]
            && conflict_out[e.to.index()]
    })
}

/// Searches the chopping graph for a critical cycle under `criterion`,
/// enumerating simple cycles with Johnson's algorithm (bounded by
/// `step_budget` edge traversals).
///
/// An SCC prescreen runs first: if no "conflict, predecessor, conflict"
/// fragment fits inside a strongly connected component, no critical cycle
/// can exist under *any* criterion and the (potentially exponential)
/// enumeration is skipped entirely — correct choppings, whose graphs are
/// usually cycle-poor, get a linear-time fast path.
///
/// Returns the first critical cycle found, or `None` if the enumeration
/// completed without one — by Theorem 16 / Corollary 18 / Theorems 29 & 31
/// the corresponding chopping is then correct.
///
/// # Errors
///
/// Returns [`SearchBudgetExceeded`] if the enumeration was cut short.
pub fn find_critical_cycle(
    graph: &MultiGraph<ChopEdge>,
    criterion: Criterion,
    step_budget: usize,
) -> Result<Option<LabelledCycle<ChopEdge>>, SearchBudgetExceeded> {
    if !fragment_feasible(graph) {
        return Ok(None);
    }
    let mut found = None;
    let end = graph.simple_cycles(step_budget, |cycle| {
        if is_critical(criterion, cycle) {
            found = Some(cycle.clone());
            CycleVisit::Stop
        } else {
            CycleVisit::Continue
        }
    });
    match end {
        EnumerationEnd::BudgetExhausted => Err(SearchBudgetExceeded),
        _ => Ok(found),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcg::ConflictKind;
    use si_relations::TxId;

    fn cycle(labels: &[ChopEdge]) -> LabelledCycle<ChopEdge> {
        LabelledCycle {
            nodes: (0..labels.len() as u32).map(TxId).collect(),
            labels: labels.to_vec(),
        }
    }

    const WR: ChopEdge = ChopEdge::Conflict(ConflictKind::Wr);
    const WW: ChopEdge = ChopEdge::Conflict(ConflictKind::Ww);
    const RW: ChopEdge = ChopEdge::Conflict(ConflictKind::Rw);
    const S: ChopEdge = ChopEdge::Successor;
    const P: ChopEdge = ChopEdge::Predecessor;

    #[test]
    fn fragment_detection() {
        assert!(has_conflict_pred_conflict(&[WR, P, RW]));
        assert!(has_conflict_pred_conflict(&[P, RW, S, WR])); // wraps: WR,P,RW
        assert!(!has_conflict_pred_conflict(&[WR, S, RW]));
        assert!(!has_conflict_pred_conflict(&[WR, P, S]));
        assert!(!has_conflict_pred_conflict(&[WR, P]));
    }

    #[test]
    fn rw_separation() {
        // Zero or one RW: vacuous.
        assert!(rw_edges_separated(&[WR, P, WW]));
        assert!(rw_edges_separated(&[RW, P, WW]));
        // Two RW separated by WR both ways round.
        assert!(rw_edges_separated(&[WR, P, RW, WR, P, RW]));
        // Two RW with a bare predecessor between them (Figure 11's cycle):
        // not separated.
        assert!(!rw_edges_separated(&[RW, P, RW, P]));
        // Separated one way but not the other.
        assert!(!rw_edges_separated(&[RW, WR, RW, P]));
    }

    #[test]
    fn criteria_ordering_on_examples() {
        // Figure 11's cycle (9): RW, P, RW, P — SER-critical only.
        let fig11 = cycle(&[RW, P, RW, P]);
        assert!(is_critical(Criterion::Ser, &fig11));
        assert!(!is_critical(Criterion::Si, &fig11));
        assert!(!is_critical(Criterion::Psi, &fig11));

        // Figure 12's cycle (10): WR, P, RW, WR, P, RW — SER- and
        // SI-critical, not PSI-critical.
        let fig12 = cycle(&[WR, P, RW, WR, P, RW]);
        assert!(is_critical(Criterion::Ser, &fig12));
        assert!(is_critical(Criterion::Si, &fig12));
        assert!(!is_critical(Criterion::Psi, &fig12));

        // Figure 5's cycle: RW, WR, RW, P (one of its rotations) — the
        // transfer/lookupAll chopping. Two RWs separated by WR one way but
        // only P the other way: not SI-critical? No — check the actual
        // shape below in scg tests; here test a PSI-critical one.
        let psi_critical = cycle(&[WR, P, WR, P]);
        assert!(is_critical(Criterion::Psi, &psi_critical));
        assert!(is_critical(Criterion::Si, &psi_critical));
        assert!(is_critical(Criterion::Ser, &psi_critical));
    }

    #[test]
    fn every_psi_critical_is_si_critical_is_ser_critical() {
        // Exhaustively over label sequences of length ≤ 5.
        let alphabet = [WR, WW, RW, S, P];
        fn rec(
            alphabet: &[ChopEdge],
            prefix: &mut Vec<ChopEdge>,
            len: usize,
            check: &mut impl FnMut(&[ChopEdge]),
        ) {
            if prefix.len() == len {
                check(prefix);
                return;
            }
            for &l in alphabet {
                prefix.push(l);
                rec(alphabet, prefix, len, check);
                prefix.pop();
            }
        }
        for len in 1..=5 {
            rec(&alphabet, &mut Vec::new(), len, &mut |labels| {
                let c = cycle(labels);
                if is_critical(Criterion::Psi, &c) {
                    assert!(is_critical(Criterion::Si, &c), "PSI ⊄ SI at {labels:?}");
                }
                if is_critical(Criterion::Si, &c) {
                    assert!(is_critical(Criterion::Ser, &c), "SI ⊄ SER at {labels:?}");
                }
            });
        }
    }

    #[test]
    fn search_finds_and_misses() {
        use si_relations::MultiGraph;
        // Triangle WR, P, RW — critical under all three criteria.
        let mut g = MultiGraph::new(3);
        g.add_edge(TxId(0), TxId(1), WR);
        g.add_edge(TxId(1), TxId(2), P);
        g.add_edge(TxId(2), TxId(0), RW);
        for criterion in [Criterion::Ser, Criterion::Si, Criterion::Psi] {
            let found = find_critical_cycle(&g, criterion, 1_000_000).unwrap();
            assert!(found.is_some(), "{criterion} missed the critical triangle");
        }

        // Square RW, P, RW, P — only SER-critical.
        let mut g = MultiGraph::new(4);
        g.add_edge(TxId(0), TxId(1), RW);
        g.add_edge(TxId(1), TxId(2), P);
        g.add_edge(TxId(2), TxId(3), RW);
        g.add_edge(TxId(3), TxId(0), P);
        assert!(find_critical_cycle(&g, Criterion::Ser, 1_000_000).unwrap().is_some());
        assert!(find_critical_cycle(&g, Criterion::Si, 1_000_000).unwrap().is_none());
        assert!(find_critical_cycle(&g, Criterion::Psi, 1_000_000).unwrap().is_none());
    }

    #[test]
    fn budget_exhaustion_reported() {
        use si_relations::MultiGraph;
        // A dense mixed graph that passes the SCC prescreen (conflict and
        // predecessor edges everywhere) but has exponentially many simple
        // cycles, so a tiny budget must be reported as exceeded.
        let mut g: MultiGraph<ChopEdge> = MultiGraph::new(6);
        for a in 0..6u32 {
            for b in 0..6u32 {
                if a != b {
                    g.add_edge(TxId(a), TxId(b), WR);
                    g.add_edge(TxId(a), TxId(b), P);
                }
            }
        }
        assert_eq!(find_critical_cycle(&g, Criterion::Si, 5), Err(SearchBudgetExceeded));
    }

    #[test]
    fn prescreen_rejects_fragment_free_graphs_without_enumeration() {
        use si_relations::MultiGraph;
        // The complete successor-only graph has ~400 simple cycles but no
        // conflict or predecessor edge at all: the prescreen must answer
        // "no critical cycle" without touching the step budget.
        let mut g: MultiGraph<ChopEdge> = MultiGraph::new(6);
        for a in 0..6u32 {
            for b in 0..6u32 {
                if a != b {
                    g.add_edge(TxId(a), TxId(b), S);
                }
            }
        }
        for criterion in [Criterion::Ser, Criterion::Si, Criterion::Psi] {
            assert_eq!(find_critical_cycle(&g, criterion, 0), Ok(None), "{criterion}");
        }

        // A predecessor edge whose endpoints sit in different SCCs (no way
        // back) is equally infeasible.
        let mut g: MultiGraph<ChopEdge> = MultiGraph::new(4);
        g.add_edge(TxId(0), TxId(1), WR);
        g.add_edge(TxId(1), TxId(0), RW);
        g.add_edge(TxId(1), TxId(2), P);
        g.add_edge(TxId(2), TxId(3), WW);
        g.add_edge(TxId(3), TxId(2), WR);
        assert_eq!(find_critical_cycle(&g, Criterion::Ser, 0), Ok(None));
    }

    #[test]
    fn prescreen_admits_the_critical_triangle() {
        use si_relations::MultiGraph;
        // Regression guard for the prescreen's direction conventions: the
        // WR,P,RW triangle from `search_finds_and_misses` must survive it.
        let mut g: MultiGraph<ChopEdge> = MultiGraph::new(3);
        g.add_edge(TxId(0), TxId(1), WR);
        g.add_edge(TxId(1), TxId(2), P);
        g.add_edge(TxId(2), TxId(0), RW);
        assert!(fragment_feasible(&g));
        assert!(find_critical_cycle(&g, Criterion::Ser, 1_000_000).unwrap().is_some());
    }
}
