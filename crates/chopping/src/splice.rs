//! Splicing histories and dependency graphs (§5).

use core::fmt;
use std::collections::BTreeMap;

use si_depgraph::{DepGraphError, DependencyGraph, WrMap, WwMap};
use si_model::{History, Op, Transaction, TxId};
use si_relations::Relation;

/// Result of splicing a history: the spliced history plus the mapping from
/// old transactions to their spliced counterparts.
#[derive(Debug, Clone)]
pub struct SplicedHistory {
    /// The spliced history: one transaction per original session, each in
    /// its own singleton session (`SO = ∅`), plus the untouched init
    /// transaction.
    pub history: History,
    /// `map[old.index()]` is the spliced transaction standing for `old`.
    pub map: Vec<TxId>,
}

/// Splices every session of `history` into a single transaction — the
/// paper's `splice(H)`: the spliced transaction concatenates the session's
/// operations in session order; the resulting history has empty session
/// order.
///
/// The init transaction (if any) is preserved as-is; sessions with no
/// transactions are dropped (they contribute no operations).
pub fn splice_history(history: &History) -> SplicedHistory {
    let mut transactions = Vec::new();
    let mut sessions = Vec::new();
    let mut map = vec![TxId(0); history.tx_count()];
    let mut init = None;

    if let Some(old_init) = history.init_tx() {
        transactions.push(history.transaction(old_init).clone());
        map[old_init.index()] = TxId(0);
        init = Some(TxId(0));
    }
    for (_, txs) in history.sessions() {
        if txs.is_empty() {
            continue;
        }
        let mut ops: Vec<Op> = Vec::new();
        for &t in txs {
            ops.extend_from_slice(history.transaction(t).ops());
        }
        let new_id = TxId::from_index(transactions.len());
        transactions.push(Transaction::new(ops));
        for &t in txs {
            map[t.index()] = new_id;
        }
        sessions.push(vec![new_id]);
    }
    let history =
        History::from_parts(transactions, sessions, init, history.object_names().to_vec())
            .expect("splicing preserves the session-structure invariants");
    SplicedHistory { history, map }
}

/// Why a dependency graph could not be spliced into a well-formed
/// dependency graph. By Theorem 16 these failures cannot happen when
/// `DCG(G)` has no SI-critical cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpliceError {
    /// Lifting `WW(x)` across sessions produced a cyclic (hence non-total)
    /// version order.
    CyclicWw {
        /// The object whose lifted version order is cyclic.
        obj: si_model::Obj,
    },
    /// The lifted relations violate Definition 6 (e.g. a lifted read
    /// dependency targets a read that became internal, with a conflicting
    /// value).
    Malformed(DepGraphError),
}

impl fmt::Display for SpliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpliceError::CyclicWw { obj } => {
                write!(f, "lifted version order of {obj} is cyclic")
            }
            SpliceError::Malformed(e) => write!(f, "spliced graph is malformed: {e}"),
        }
    }
}

impl std::error::Error for SpliceError {}

impl From<DepGraphError> for SpliceError {
    fn from(e: DepGraphError) -> Self {
        SpliceError::Malformed(e)
    }
}

/// Splices a dependency graph — the paper's `splice(G)`: the history is
/// spliced with [`splice_history`], and the dependencies are lifted across
/// sessions:
///
/// * `WR_splice(x)`: `~T~ -WR(x)→ ~S~` iff some `T' ≈ T`, `S' ≈ S` with
///   `T ¬≈ S` have `T' -WR(x)→ S'`;
/// * `WW_splice(x)`: likewise for `WW`, linearised into a version order;
/// * `RW_splice(x)`: derived, as always (Definition 5) — Lemma 17
///   guarantees this matches the lifted `RW` when `DCG(G)` has no critical
///   cycle.
///
/// # Errors
///
/// Returns [`SpliceError`] when the lift does not produce a well-formed
/// dependency graph. Theorem 16 (tested property): if `G ∈ GraphSI` and
/// `DCG(G)` has no SI-critical cycle, splicing succeeds *and* the result
/// is in `GraphSI`.
pub fn splice_graph(graph: &DependencyGraph) -> Result<DependencyGraph, SpliceError> {
    let spliced = splice_history(graph.history());
    let n = spliced.history.tx_count();
    let same_session = graph.history().same_session();

    let mut wr: WrMap = BTreeMap::new();
    let mut ww: WwMap = BTreeMap::new();

    for x in graph.objects() {
        // Lift WR.
        for (writer, reader) in graph.wr_pairs(x) {
            if same_session.contains(writer, reader) {
                continue;
            }
            let (w, r) = (spliced.map[writer.index()], spliced.map[reader.index()]);
            debug_assert_ne!(w, r, "cross-session pairs map to distinct spliced txs");
            wr.entry(x).or_default().insert(r, w);
        }
        // Lift WW into a relation on spliced transactions, then linearise.
        let mut lifted = Relation::new(n);
        let mut writers: Vec<TxId> = Vec::new();
        for (a, b) in graph.ww_pairs(x) {
            let (sa, sb) = (spliced.map[a.index()], spliced.map[b.index()]);
            if !writers.contains(&sa) {
                writers.push(sa);
            }
            if !writers.contains(&sb) {
                writers.push(sb);
            }
            if !same_session.contains(a, b) {
                lifted.insert(sa, sb);
            }
        }
        // Single-writer objects still need their writer listed.
        for &w in graph.ww_order(x) {
            let sw = spliced.map[w.index()];
            if !writers.contains(&sw) {
                writers.push(sw);
            }
        }
        if writers.is_empty() {
            continue;
        }
        // Linearise the lifted pairs. Definition 6 only requires *a* total
        // order containing the lifted WW edges, so any linear extension
        // works; a cycle in the lifted pairs means no total order exists.
        let order: Vec<TxId> = match lifted.topo_sort() {
            Ok(sorted) => sorted.into_iter().filter(|t| writers.contains(t)).collect(),
            Err(_) => return Err(SpliceError::CyclicWw { obj: x }),
        };
        ww.insert(x, order);
    }

    Ok(DependencyGraph::new(spliced.history, wr, ww)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_depgraph::DepGraphBuilder;
    use si_model::{HistoryBuilder, Op};

    /// Chopped transfer alongside two lookups (the Figure 4 graph G2
    /// situation): spliceable.
    fn chopped_transfer_history() -> History {
        let mut b = HistoryBuilder::new();
        let a1 = b.object("acct1");
        let a2 = b.object("acct2");
        let st = b.session();
        let sl1 = b.session();
        let sl2 = b.session();
        // transfer chopped: [read+write acct1], [read+write acct2]
        b.push_tx(st, [Op::read(a1, 100), Op::write(a1, 0)]);
        b.push_tx(st, [Op::read(a2, 0), Op::write(a2, 100)]);
        // lookup1 sees the state before the transfer, lookup2 after — the
        // spliceable graph G2 of Figure 4.
        b.push_tx(sl1, [Op::read(a1, 100)]);
        b.push_tx(sl2, [Op::read(a2, 100)]);
        b.build_with_initial_values([(a1, 100), (a2, 0)])
    }

    #[test]
    fn splice_history_merges_sessions() {
        let h = chopped_transfer_history();
        let spliced = splice_history(&h);
        // init + 3 sessions.
        assert_eq!(spliced.history.tx_count(), 4);
        assert_eq!(spliced.history.init_tx(), Some(TxId(0)));
        // The transfer session became one transaction with all 4 ops.
        let merged = spliced.history.transaction(spliced.map[1]);
        assert_eq!(merged.len(), 4);
        assert_eq!(spliced.map[1], spliced.map[2]);
        // SO is empty after splicing.
        assert!(spliced.history.session_order().is_empty());
        assert!(spliced.history.check_int().is_ok());
    }

    #[test]
    fn splice_graph_lifts_dependencies() {
        let h = chopped_transfer_history();
        let mut gb = DepGraphBuilder::new(h);
        gb.infer_wr();
        let g = gb.build().unwrap();
        let spliced = splice_graph(&g).unwrap();
        // lookup1 read acct1's initial version, which the spliced transfer
        // overwrites (anti-dependency); lookup2 read the transferred
        // acct2 (read dependency).
        let transfer = TxId(1);
        let lookup1 = TxId(2);
        let lookup2 = TxId(3);
        assert!(spliced.rw_relation().contains(lookup1, transfer));
        assert!(spliced.wr_relation().contains(transfer, lookup2));
        // lookup1's writer is the init transaction.
        assert_eq!(spliced.writer_for(lookup1, si_model::Obj(0)), Some(TxId(0)));
        // The spliced graph is exactly G2' of §5: only cross-session
        // dependencies survive, and it is in GraphSI (acyclic here).
        assert!(spliced.all_relation().is_acyclic());
    }

    #[test]
    fn splice_failure_on_interleaved_writes() {
        // Session A writes x twice; session B's write lands between them:
        // the lifted WW is cyclic.
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let sa = b.session();
        let sb = b.session();
        b.push_tx(sa, [Op::write(x, 1)]);
        b.push_tx(sa, [Op::write(x, 3)]);
        b.push_tx(sb, [Op::write(x, 2)]);
        let h = b.build();
        let mut gb = DepGraphBuilder::new(h);
        // WW order: init, A1, B, A2 — B between A's writes.
        gb.ww_order(x, [TxId(0), TxId(1), TxId(3), TxId(2)]);
        let g = gb.build().unwrap();
        assert_eq!(splice_graph(&g), Err(SpliceError::CyclicWw { obj: x }));
    }

    #[test]
    fn internalised_reads_are_dropped_from_wr() {
        // T1 writes x, T2 (same session) reads it: after splicing the read
        // is internal, and the WR edge must not be lifted.
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let s = b.session();
        b.push_tx(s, [Op::write(x, 1)]);
        b.push_tx(s, [Op::read(x, 1)]);
        let h = b.build();
        let mut gb = DepGraphBuilder::new(h);
        gb.infer_wr();
        let g = gb.build().unwrap();
        let spliced = splice_graph(&g).unwrap();
        // Spliced transaction reads x only internally.
        assert_eq!(spliced.history().transaction(TxId(1)).external_read(x), None);
        assert_eq!(spliced.writer_for(TxId(1), x), None);
    }
}
