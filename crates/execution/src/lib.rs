//! Abstract executions and the consistency axioms of *Analysing Snapshot
//! Isolation* (Cerone & Gotsman, PODC 2016), §2.
//!
//! An [`AbstractExecution`] extends a history with two relations that
//! declaratively describe how the transactional system processed its
//! transactions (Definition 3):
//!
//! * **visibility** `VIS`: `T -VIS→ S` means the writes of `T` are included
//!   in the snapshot taken by `S`;
//! * **commit order** `CO ⊇ VIS`: `T -CO→ S` means `T` committed before
//!   `S`. In a full execution `CO` is a strict *total* order; in a
//!   *pre-execution* (Definition 11) it may be partial — the intermediate
//!   objects of the paper's soundness construction.
//!
//! Consistency models are specified by the axioms of Figure 1, each
//! implemented as a checker with a counterexample witness:
//!
//! | axiom | meaning | function |
//! |-------|---------|----------|
//! | INT | reads agree with preceding ops in the same transaction | [`check_int`] |
//! | EXT | external reads see the last visible write (by `CO`) | [`check_ext`] |
//! | SESSION | `SO ⊆ VIS` | [`check_session`] |
//! | PREFIX | `CO ; VIS ⊆ VIS` | [`check_prefix`] |
//! | NOCONFLICT | concurrent writers of an object are `VIS`-related | [`check_no_conflict`] |
//! | TOTALVIS | `CO = VIS` | [`check_total_vis`] |
//! | TRANSVIS | `VIS` is transitive | [`check_trans_vis`] |
//!
//! [`SpecModel`] bundles the axiom sets of Definitions 4 and 20:
//! `ExecSI = INT ∧ EXT ∧ SESSION ∧ PREFIX ∧ NOCONFLICT`,
//! `ExecSER = INT ∧ EXT ∧ SESSION ∧ TOTALVIS`, and
//! `ExecPSI = INT ∧ EXT ∧ SESSION ∧ TRANSVIS ∧ NOCONFLICT`.
//!
//! The [`brute`] module decides `HistSI` / `HistSER` / `HistPSI` for *tiny*
//! histories by exhaustive search over `(VIS, CO)` pairs, directly from the
//! definitions; the `si-core` crate uses it to cross-validate the
//! dependency-graph characterisations.
//!
//! # Example
//!
//! ```
//! use si_model::{HistoryBuilder, Op};
//! use si_execution::{AbstractExecution, SpecModel};
//! use si_relations::{Relation, TxId};
//!
//! let mut b = HistoryBuilder::new();
//! let x = b.object("x");
//! let s = b.session();
//! b.push_tx(s, [Op::write(x, 1)]);
//! b.push_tx(s, [Op::read(x, 1)]);
//! let h = b.build();
//!
//! // init -> T1 -> T2 in both VIS and CO.
//! let vis = Relation::from_pairs(3, [
//!     (TxId(0), TxId(1)), (TxId(0), TxId(2)), (TxId(1), TxId(2)),
//! ]);
//! let co = vis.clone();
//! let exec = AbstractExecution::new(h, vis, co).unwrap();
//! assert!(SpecModel::Si.check(&exec).is_ok());
//! assert!(SpecModel::Ser.check(&exec).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod axioms;
pub mod brute;
mod execution;
mod models;

pub use axioms::{
    check_ext, check_int, check_no_conflict, check_prefix, check_session, check_total_vis,
    check_trans_vis, AxiomViolation,
};
pub use execution::{AbstractExecution, StructureError};
pub use models::{check_pc, check_pc_pre, SpecModel};
