//! The consistency axioms of Figure 1, each with counterexample witnesses.

use core::fmt;

use si_model::{IntViolation, Obj, Value};
use si_relations::TxId;

use crate::AbstractExecution;

/// A counterexample to one of the Figure 1 axioms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxiomViolation {
    /// INT failed inside a transaction.
    Int {
        /// The offending transaction.
        tx: TxId,
        /// The in-transaction violation.
        violation: IntViolation,
    },
    /// EXT: an external read has no visible writer at all. (The paper
    /// avoids this case by the initialisation transaction.)
    ExtNoVisibleWriter {
        /// The reading transaction.
        reader: TxId,
        /// The object read.
        obj: Obj,
    },
    /// EXT: the CO-maximal visible writer wrote a different value.
    ExtWrongValue {
        /// The reading transaction.
        reader: TxId,
        /// The object read.
        obj: Obj,
        /// The value the reader returned.
        read: Value,
        /// The CO-maximal visible writer of `obj`.
        writer: TxId,
        /// The value that writer last wrote to `obj`.
        written: Value,
    },
    /// SESSION: a session-order edge is missing from `VIS`.
    Session(TxId, TxId),
    /// PREFIX: `S' -CO→ S -VIS→ T` but not `S' -VIS→ T`.
    Prefix {
        /// The earlier-committed transaction that should be visible.
        committed: TxId,
        /// The visible transaction.
        seen: TxId,
        /// The observer.
        observer: TxId,
    },
    /// NOCONFLICT: two distinct writers of the same object are unrelated by
    /// `VIS`.
    Conflict {
        /// First writer.
        first: TxId,
        /// Second writer.
        second: TxId,
        /// The object both wrote.
        obj: Obj,
    },
    /// TOTALVIS: `CO` and `VIS` differ at this edge (present in `CO`,
    /// absent from `VIS`).
    TotalVis(TxId, TxId),
    /// TRANSVIS: `VIS` is not transitive at this triple.
    TransVis(TxId, TxId, TxId),
    /// The axiom set requires a full execution but `CO` is not total; the
    /// pair is unrelated.
    CoNotTotal(TxId, TxId),
}

impl fmt::Display for AxiomViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxiomViolation::Int { tx, violation } => write!(f, "INT violated in {tx}: {violation}"),
            AxiomViolation::ExtNoVisibleWriter { reader, obj } => {
                write!(f, "EXT violated: {reader} reads {obj} but sees no writer of it")
            }
            AxiomViolation::ExtWrongValue { reader, obj, read, writer, written } => write!(
                f,
                "EXT violated: {reader} read {read} from {obj} but the latest visible \
                 writer {writer} wrote {written}"
            ),
            AxiomViolation::Session(a, b) => {
                write!(f, "SESSION violated: {a} -SO-> {b} not in VIS")
            }
            AxiomViolation::Prefix { committed, seen, observer } => write!(
                f,
                "PREFIX violated: {committed} -CO-> {seen} -VIS-> {observer} but \
                 {committed} is not visible to {observer}"
            ),
            AxiomViolation::Conflict { first, second, obj } => write!(
                f,
                "NOCONFLICT violated: {first} and {second} both write {obj} but are \
                 unrelated by VIS"
            ),
            AxiomViolation::TotalVis(a, b) => {
                write!(f, "TOTALVIS violated: {a} -CO-> {b} but not {a} -VIS-> {b}")
            }
            AxiomViolation::TransVis(a, b, c) => {
                write!(f, "TRANSVIS violated: {a} -VIS-> {b} -VIS-> {c} but not {a} -VIS-> {c}")
            }
            AxiomViolation::CoNotTotal(a, b) => {
                write!(f, "CO is not total: {a} and {b} are unrelated")
            }
        }
    }
}

impl std::error::Error for AxiomViolation {}

/// INT (internal consistency): every read preceded by an operation on the
/// same object in the same transaction returns that operation's value.
///
/// # Errors
///
/// Returns the first violating transaction.
pub fn check_int(exec: &AbstractExecution) -> Result<(), AxiomViolation> {
    exec.history().check_int().map_err(|(tx, violation)| AxiomViolation::Int { tx, violation })
}

/// EXT (external consistency): if `T ⊢ read(x, n)` then
/// `max_CO(VIS⁻¹(T) ∩ WriteTx_x) ⊢ write(x, n)`.
///
/// # Errors
///
/// Returns a witness if some external read sees no writer or the wrong
/// value.
pub fn check_ext(exec: &AbstractExecution) -> Result<(), AxiomViolation> {
    let h = exec.history();
    for (reader, t) in h.transactions() {
        for x in t.external_read_set() {
            let read = t.external_read(x).expect("x is in the external read set");
            let mut visible_writers = exec.snapshot_of(reader);
            visible_writers.intersect_with(&h.write_txs(x));
            let Some(writer) = exec.co().max_element(&visible_writers) else {
                return Err(AxiomViolation::ExtNoVisibleWriter { reader, obj: x });
            };
            let written = h.transaction(writer).final_write(x).expect("writer is in WriteTx_x");
            if written != read {
                return Err(AxiomViolation::ExtWrongValue {
                    reader,
                    obj: x,
                    read,
                    writer,
                    written,
                });
            }
        }
    }
    Ok(())
}

/// SESSION: `SO ⊆ VIS`.
///
/// # Errors
///
/// Returns the first session-order edge missing from `VIS`.
pub fn check_session(exec: &AbstractExecution) -> Result<(), AxiomViolation> {
    let so = exec.history().session_order();
    match so.difference(exec.vis()).iter_pairs().next() {
        Some((a, b)) => Err(AxiomViolation::Session(a, b)),
        None => Ok(()),
    }
}

/// PREFIX: `CO ; VIS ⊆ VIS` — a snapshot that includes `S` includes
/// everything that committed before `S`.
///
/// # Errors
///
/// Returns a witness triple.
pub fn check_prefix(exec: &AbstractExecution) -> Result<(), AxiomViolation> {
    let comp = exec.co().compose(exec.vis());
    match comp.difference(exec.vis()).iter_pairs().next() {
        Some((committed, observer)) => {
            let seen = exec
                .co()
                .successors(committed)
                .iter()
                .find(|&m| exec.vis().contains(m, observer))
                .expect("composition produced the pair");
            Err(AxiomViolation::Prefix { committed, seen, observer })
        }
        None => Ok(()),
    }
}

/// NOCONFLICT: distinct transactions writing the same object are related by
/// `VIS` one way or the other (the write-conflict detection of the SI
/// concurrency control).
///
/// # Errors
///
/// Returns the first unrelated writer pair.
pub fn check_no_conflict(exec: &AbstractExecution) -> Result<(), AxiomViolation> {
    let h = exec.history();
    for x in h.objects() {
        let writers: Vec<TxId> = h.write_txs(x).iter().collect();
        for (i, &a) in writers.iter().enumerate() {
            for &b in &writers[i + 1..] {
                if !exec.vis().contains(a, b) && !exec.vis().contains(b, a) {
                    return Err(AxiomViolation::Conflict { first: a, second: b, obj: x });
                }
            }
        }
    }
    Ok(())
}

/// TOTALVIS: `CO = VIS` (serializability's requirement that visibility
/// totally orders the transactions; `VIS ⊆ CO` holds structurally, so only
/// the reverse inclusion is checked).
///
/// # Errors
///
/// Returns the first `CO` edge missing from `VIS`.
pub fn check_total_vis(exec: &AbstractExecution) -> Result<(), AxiomViolation> {
    match exec.co().difference(exec.vis()).iter_pairs().next() {
        Some((a, b)) => Err(AxiomViolation::TotalVis(a, b)),
        None => Ok(()),
    }
}

/// TRANSVIS: `VIS` is transitive (parallel SI's weakening of PREFIX,
/// Definition 20).
///
/// # Errors
///
/// Returns a witness triple.
pub fn check_trans_vis(exec: &AbstractExecution) -> Result<(), AxiomViolation> {
    let comp = exec.vis().compose(exec.vis());
    match comp.difference(exec.vis()).iter_pairs().next() {
        Some((a, c)) => {
            let b = exec
                .vis()
                .successors(a)
                .iter()
                .find(|&m| exec.vis().contains(m, c))
                .expect("composition produced the pair");
            Err(AxiomViolation::TransVis(a, b, c))
        }
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_model::{HistoryBuilder, Op};
    use si_relations::Relation;

    /// Lost-update history (Figure 2(b)): both T1 and T2 read acct=0 and
    /// write deposits.
    fn lost_update_exec(vis_pairs: &[(u32, u32)], co_pairs: &[(u32, u32)]) -> AbstractExecution {
        let mut b = HistoryBuilder::new();
        let acct = b.object("acct");
        let s1 = b.session();
        let s2 = b.session();
        b.push_tx(s1, [Op::read(acct, 0), Op::write(acct, 50)]);
        b.push_tx(s2, [Op::read(acct, 0), Op::write(acct, 25)]);
        let h = b.build();
        let vis = Relation::from_pairs(3, vis_pairs.iter().map(|&(a, b)| (TxId(a), TxId(b))));
        let co = Relation::from_pairs(3, co_pairs.iter().map(|&(a, b)| (TxId(a), TxId(b))));
        AbstractExecution::new(h, vis, co).unwrap()
    }

    #[test]
    fn lost_update_violates_no_conflict() {
        // T1 and T2 both see only the init transaction.
        let exec = lost_update_exec(&[(0, 1), (0, 2)], &[(0, 1), (0, 2), (1, 2)]);
        assert!(check_int(&exec).is_ok());
        assert!(check_ext(&exec).is_ok());
        assert!(check_session(&exec).is_ok());
        let err = check_no_conflict(&exec).unwrap_err();
        assert!(matches!(err, AxiomViolation::Conflict { .. }));
    }

    #[test]
    fn lost_update_with_vis_violates_ext() {
        // Making T1 visible to T2 fixes NOCONFLICT but breaks EXT: T2 read
        // 0 yet its latest visible writer T1 wrote 50.
        let exec = lost_update_exec(&[(0, 1), (0, 2), (1, 2)], &[(0, 1), (0, 2), (1, 2)]);
        assert!(check_no_conflict(&exec).is_ok());
        let err = check_ext(&exec).unwrap_err();
        assert_eq!(
            err,
            AxiomViolation::ExtWrongValue {
                reader: TxId(2),
                obj: si_model::Obj(0),
                read: Value(0),
                writer: TxId(1),
                written: Value(50),
            }
        );
    }

    #[test]
    fn session_axiom_detects_missing_edge() {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let s = b.session();
        b.push_tx(s, [Op::write(x, 1)]);
        b.push_tx(s, [Op::read(x, 0)]); // reads the *initial* value
        let h = b.build();
        // VIS omits the SO edge T1 -> T2.
        let vis = Relation::from_pairs(3, [(TxId(0), TxId(1)), (TxId(0), TxId(2))]);
        let co =
            Relation::from_pairs(3, [(TxId(0), TxId(1)), (TxId(0), TxId(2)), (TxId(1), TxId(2))]);
        let exec = AbstractExecution::new(h, vis, co).unwrap();
        assert_eq!(check_session(&exec), Err(AxiomViolation::Session(TxId(1), TxId(2))));
        // Figure 2(a): once SESSION forces the edge, EXT forbids reading 0.
    }

    #[test]
    fn prefix_axiom_witness() {
        // T1 -CO-> T2 -VIS-> T3 but T1 not visible to T3.
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        for _ in 0..3 {
            let s = b.session();
            b.push_tx(s, [Op::write(x, 1)]);
        }
        let h = b.build();
        let vis = Relation::from_pairs(
            4,
            [(TxId(0), TxId(1)), (TxId(0), TxId(2)), (TxId(0), TxId(3)), (TxId(2), TxId(3))],
        );
        let mut co = vis.clone();
        co.insert(TxId(1), TxId(2));
        co.insert(TxId(1), TxId(3));
        co.insert(TxId(2), TxId(3));
        let exec = AbstractExecution::new(h, vis, co).unwrap();
        assert_eq!(
            check_prefix(&exec),
            Err(AxiomViolation::Prefix { committed: TxId(1), seen: TxId(2), observer: TxId(3) })
        );
    }

    #[test]
    fn total_vis_distinguishes_si_from_ser() {
        // Write skew: VIS misses both directions between T1, T2 while CO
        // orders them.
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let s1 = b.session();
        let s2 = b.session();
        b.push_tx(s1, [Op::read(x, 0), Op::read(y, 0), Op::write(x, 1)]);
        b.push_tx(s2, [Op::read(x, 0), Op::read(y, 0), Op::write(y, 1)]);
        let h = b.build();
        let vis = Relation::from_pairs(3, [(TxId(0), TxId(1)), (TxId(0), TxId(2))]);
        let mut co = vis.clone();
        co.insert(TxId(1), TxId(2));
        let exec = AbstractExecution::new(h, vis, co).unwrap();
        assert!(check_int(&exec).is_ok());
        assert!(check_ext(&exec).is_ok());
        assert!(check_no_conflict(&exec).is_ok());
        assert!(check_prefix(&exec).is_ok());
        assert_eq!(check_total_vis(&exec), Err(AxiomViolation::TotalVis(TxId(1), TxId(2))));
    }

    #[test]
    fn trans_vis_witness() {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        for _ in 0..3 {
            let s = b.session();
            b.push_tx(s, [Op::write(x, 1)]);
        }
        let h = b.build();
        let vis = Relation::from_pairs(
            4,
            [
                (TxId(0), TxId(1)),
                (TxId(0), TxId(2)),
                (TxId(0), TxId(3)),
                (TxId(1), TxId(2)),
                (TxId(2), TxId(3)),
            ],
        );
        let co = vis.transitive_closure();
        let co = {
            let mut co = co;
            co.union_with(&Relation::from_pairs(4, [(TxId(1), TxId(3))]));
            co
        };
        let exec = AbstractExecution::new(h, vis, co).unwrap();
        assert_eq!(
            check_trans_vis(&exec),
            Err(AxiomViolation::TransVis(TxId(1), TxId(2), TxId(3)))
        );
    }

    #[test]
    fn ext_requires_a_visible_writer() {
        let mut b = HistoryBuilder::new().without_init();
        let x = b.object("x");
        let s = b.session();
        b.push_tx(s, [Op::read(x, 0)]);
        let h = b.build();
        let exec = AbstractExecution::new(h, Relation::new(1), Relation::new(1)).unwrap();
        assert!(matches!(check_ext(&exec), Err(AxiomViolation::ExtNoVisibleWriter { .. })));
    }
}
