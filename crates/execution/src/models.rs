//! Consistency-model specifications: the axiom sets of Definitions 4 and 20.

use core::fmt;

use crate::axioms::{
    check_ext, check_int, check_no_conflict, check_prefix, check_session, check_total_vis,
    check_trans_vis, AxiomViolation,
};
use crate::AbstractExecution;

/// A consistency model specified by a set of Figure 1 axioms.
///
/// | model | axiom set | definition |
/// |-------|-----------|------------|
/// | [`Si`](SpecModel::Si)   | INT ∧ EXT ∧ SESSION ∧ PREFIX ∧ NOCONFLICT | Definition 4 (`ExecSI`) |
/// | [`Ser`](SpecModel::Ser) | INT ∧ EXT ∧ SESSION ∧ TOTALVIS            | Definition 4 (`ExecSER`) |
/// | [`Psi`](SpecModel::Psi) | INT ∧ EXT ∧ SESSION ∧ TRANSVIS ∧ NOCONFLICT | Definition 20 (`ExecPSI`) |
///
/// All three sets are over *strong session* variants: SESSION requires a
/// transaction's snapshot to include its session predecessors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecModel {
    /// Strong session snapshot isolation.
    Si,
    /// Strong session serializability.
    Ser,
    /// Parallel snapshot isolation (PREFIX weakened to TRANSVIS).
    Psi,
}

impl SpecModel {
    /// All models, strongest first.
    pub const ALL: [SpecModel; 3] = [SpecModel::Ser, SpecModel::Si, SpecModel::Psi];

    /// Checks whether a *full* execution (total `CO`) satisfies the model's
    /// axioms — membership in `ExecSI` / `ExecSER` / `ExecPSI`.
    ///
    /// # Errors
    ///
    /// Returns the first violated axiom with a witness;
    /// [`AxiomViolation::CoNotTotal`] if `CO` is not total.
    pub fn check(self, exec: &AbstractExecution) -> Result<(), AxiomViolation> {
        if let Some((a, b)) = exec.co().first_unrelated_pair() {
            return Err(AxiomViolation::CoNotTotal(a, b));
        }
        self.check_pre(exec)
    }

    /// Checks the model's axioms without requiring `CO` to be total —
    /// membership in `PreExecSI` (Definition 11) and its SER/PSI analogues.
    /// This is what the intermediate stages of the Theorem 10(i)
    /// construction satisfy.
    ///
    /// # Errors
    ///
    /// Returns the first violated axiom with a witness.
    pub fn check_pre(self, exec: &AbstractExecution) -> Result<(), AxiomViolation> {
        check_int(exec)?;
        check_ext(exec)?;
        check_session(exec)?;
        match self {
            SpecModel::Si => {
                check_prefix(exec)?;
                check_no_conflict(exec)
            }
            SpecModel::Ser => check_total_vis(exec),
            SpecModel::Psi => {
                check_trans_vis(exec)?;
                check_no_conflict(exec)
            }
        }
    }
}

/// Prefix consistency (the paper's §7 pointer, after Burckhardt et al.):
/// SI *without* write-conflict detection — the axiom set
/// `INT ∧ EXT ∧ SESSION ∧ PREFIX` over full executions. Every SI
/// execution is a PC execution; PC additionally admits lost updates.
///
/// Kept as a free function (not a [`SpecModel`] variant) because it is an
/// extension beyond the paper's three models.
///
/// # Errors
///
/// Returns the first violated axiom, or
/// [`AxiomViolation::CoNotTotal`] for pre-executions.
pub fn check_pc(exec: &AbstractExecution) -> Result<(), AxiomViolation> {
    if let Some((a, b)) = exec.co().first_unrelated_pair() {
        return Err(AxiomViolation::CoNotTotal(a, b));
    }
    check_pc_pre(exec)
}

/// The PC axioms without requiring `CO` to be total (the pre-execution
/// variant, mirroring [`SpecModel::check_pre`]).
///
/// # Errors
///
/// Returns the first violated axiom.
pub fn check_pc_pre(exec: &AbstractExecution) -> Result<(), AxiomViolation> {
    check_int(exec)?;
    check_ext(exec)?;
    check_session(exec)?;
    check_prefix(exec)
}

impl fmt::Display for SpecModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecModel::Si => write!(f, "SI"),
            SpecModel::Ser => write!(f, "SER"),
            SpecModel::Psi => write!(f, "PSI"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_model::{HistoryBuilder, Op};
    use si_relations::{Relation, TxId};

    /// The write-skew execution of Figure 2(d): allowed by SI (and PSI),
    /// rejected by SER.
    fn write_skew() -> AbstractExecution {
        let mut b = HistoryBuilder::new();
        let a1 = b.object("acct1");
        let a2 = b.object("acct2");
        let s1 = b.session();
        let s2 = b.session();
        b.push_tx(s1, [Op::read(a1, 70), Op::read(a2, 80), Op::write(a1, 0)]);
        b.push_tx(s2, [Op::read(a1, 70), Op::read(a2, 80), Op::write(a2, 0)]);
        let h = b.build_with_initial_values([(a1, 70), (a2, 80)]);
        let vis = Relation::from_pairs(3, [(TxId(0), TxId(1)), (TxId(0), TxId(2))]);
        let mut co = vis.clone();
        co.insert(TxId(1), TxId(2));
        AbstractExecution::new(h, vis, co).unwrap()
    }

    #[test]
    fn write_skew_in_si_and_psi_not_ser() {
        let exec = write_skew();
        assert!(SpecModel::Si.check(&exec).is_ok());
        assert!(SpecModel::Psi.check(&exec).is_ok());
        assert!(SpecModel::Ser.check(&exec).is_err());
    }

    #[test]
    fn check_requires_total_co() {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let s1 = b.session();
        let s2 = b.session();
        b.push_tx(s1, [Op::read(x, 0)]);
        b.push_tx(s2, [Op::read(x, 0)]);
        let h = b.build();
        let vis = Relation::from_pairs(3, [(TxId(0), TxId(1)), (TxId(0), TxId(2))]);
        let exec = AbstractExecution::new(h, vis.clone(), vis).unwrap();
        assert!(matches!(
            SpecModel::Si.check(&exec),
            Err(AxiomViolation::CoNotTotal(TxId(1), TxId(2)))
        ));
        // As a pre-execution it is fine.
        assert!(SpecModel::Si.check_pre(&exec).is_ok());
    }

    #[test]
    fn serializable_chain_satisfies_all_models() {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let s = b.session();
        b.push_tx(s, [Op::write(x, 1)]);
        b.push_tx(s, [Op::read(x, 1), Op::write(x, 2)]);
        let h = b.build();
        let co =
            Relation::from_pairs(3, [(TxId(0), TxId(1)), (TxId(0), TxId(2)), (TxId(1), TxId(2))]);
        let exec = AbstractExecution::new(h, co.clone(), co).unwrap();
        for model in SpecModel::ALL {
            assert!(model.check(&exec).is_ok(), "{model} rejected a serial chain");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(SpecModel::Si.to_string(), "SI");
        assert_eq!(SpecModel::Ser.to_string(), "SER");
        assert_eq!(SpecModel::Psi.to_string(), "PSI");
    }
}
