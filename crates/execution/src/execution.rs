//! The [`AbstractExecution`] type (Definitions 3 and 11 of the paper).

use core::fmt;

use si_model::History;
use si_relations::{Relation, TxId, TxSet};

/// An abstract execution `X = (T, SO, VIS, CO)` — a history extended with
/// visibility and commit-order relations (Definition 3) — or a
/// *pre-execution* when `CO` is not total (Definition 11).
///
/// Invariants enforced at construction:
///
/// * `VIS` and `CO` range over exactly the history's transactions;
/// * `VIS ⊆ CO` (a snapshot only includes previously committed
///   transactions);
/// * `CO` is a strict partial order (irreflexive and transitive), hence so
///   is `VIS` up to transitivity (which SI's PREFIX later implies).
///
/// Whether the execution is *full* (total `CO`) is queried with
/// [`AbstractExecution::is_co_total`]; the axiom sets in
/// [`SpecModel`](crate::SpecModel) insist on totality, while the
/// pre-execution variants do not.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AbstractExecution {
    history: History,
    vis: Relation,
    co: Relation,
}

/// Why a `(history, VIS, CO)` triple is not a well-formed (pre-)execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureError {
    /// `VIS` or `CO` ranges over a different number of transactions than
    /// the history.
    UniverseMismatch {
        /// Transactions in the history.
        history: usize,
        /// Universe of the offending relation.
        relation: usize,
    },
    /// Some `VIS` edge is missing from `CO`.
    VisNotInCo(TxId, TxId),
    /// `CO` relates a transaction to itself.
    CoReflexive(TxId),
    /// `CO` is not transitive: `(a,b)` and `(b,c)` present, `(a,c)` absent.
    CoNotTransitive(TxId, TxId, TxId),
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureError::UniverseMismatch { history, relation } => write!(
                f,
                "relation ranges over {relation} transactions but the history has {history}"
            ),
            StructureError::VisNotInCo(a, b) => {
                write!(f, "VIS edge {a} -> {b} is not in CO (VIS ⊆ CO required)")
            }
            StructureError::CoReflexive(t) => write!(f, "CO relates {t} to itself"),
            StructureError::CoNotTransitive(a, b, c) => {
                write!(f, "CO is not transitive: {a} -> {b} -> {c} but not {a} -> {c}")
            }
        }
    }
}

impl std::error::Error for StructureError {}

impl AbstractExecution {
    /// Builds an execution, validating the structural invariants of
    /// Definitions 3/11 (everything except CO-totality, which
    /// distinguishes executions from pre-executions).
    ///
    /// # Errors
    ///
    /// Returns a [`StructureError`] naming the violated invariant.
    pub fn new(history: History, vis: Relation, co: Relation) -> Result<Self, StructureError> {
        let n = history.tx_count();
        for rel in [&vis, &co] {
            if rel.universe() != n {
                return Err(StructureError::UniverseMismatch {
                    history: n,
                    relation: rel.universe(),
                });
            }
        }
        if let Some((a, b)) = vis.difference(&co).iter_pairs().next() {
            return Err(StructureError::VisNotInCo(a, b));
        }
        for t in history.tx_ids() {
            if co.contains(t, t) {
                return Err(StructureError::CoReflexive(t));
            }
        }
        // Transitivity with witness extraction.
        let comp = co.compose(&co);
        if let Some((a, c)) = comp.difference(&co).iter_pairs().next() {
            // Recover the midpoint for the witness.
            let b = co
                .successors(a)
                .iter()
                .find(|&m| co.contains(m, c))
                .expect("composition produced the pair, a midpoint exists");
            return Err(StructureError::CoNotTransitive(a, b, c));
        }
        Ok(AbstractExecution { history, vis, co })
    }

    /// The underlying history.
    #[inline]
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The visibility relation.
    #[inline]
    pub fn vis(&self) -> &Relation {
        &self.vis
    }

    /// The commit order.
    #[inline]
    pub fn co(&self) -> &Relation {
        &self.co
    }

    /// Number of transactions.
    #[inline]
    pub fn tx_count(&self) -> usize {
        self.history.tx_count()
    }

    /// Whether `CO` is a strict *total* order, i.e. whether this is a full
    /// execution rather than a pre-execution.
    pub fn is_co_total(&self) -> bool {
        self.co.first_unrelated_pair().is_none()
    }

    /// The snapshot of `T`: `VIS⁻¹(T)`, the set of transactions visible to
    /// it.
    pub fn snapshot_of(&self, t: TxId) -> TxSet {
        self.vis.predecessors(t)
    }

    /// Decomposes into parts (history, VIS, CO).
    pub fn into_parts(self) -> (History, Relation, Relation) {
        (self.history, self.vis, self.co)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_model::{HistoryBuilder, Op};

    fn tiny_history() -> History {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let s = b.session();
        b.push_tx(s, [Op::write(x, 1)]);
        b.push_tx(s, [Op::read(x, 1)]);
        b.build()
    }

    fn chain_rel(n: usize) -> Relation {
        let mut r = Relation::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                r.insert(TxId::from_index(i), TxId::from_index(j));
            }
        }
        r
    }

    #[test]
    fn well_formed_execution() {
        let h = tiny_history();
        let co = chain_rel(3);
        let exec = AbstractExecution::new(h, co.clone(), co).unwrap();
        assert!(exec.is_co_total());
        assert_eq!(exec.tx_count(), 3);
        let snap = exec.snapshot_of(TxId(2));
        assert!(snap.contains(TxId(0)) && snap.contains(TxId(1)));
    }

    #[test]
    fn vis_must_be_in_co() {
        let h = tiny_history();
        let mut vis = Relation::new(3);
        vis.insert(TxId(0), TxId(1));
        let co = Relation::new(3);
        assert_eq!(
            AbstractExecution::new(h, vis, co),
            Err(StructureError::VisNotInCo(TxId(0), TxId(1)))
        );
    }

    #[test]
    fn co_must_be_irreflexive_and_transitive() {
        let h = tiny_history();
        let mut co = Relation::new(3);
        co.insert(TxId(1), TxId(1));
        assert_eq!(
            AbstractExecution::new(h.clone(), Relation::new(3), co),
            Err(StructureError::CoReflexive(TxId(1)))
        );

        let mut co = Relation::new(3);
        co.insert(TxId(0), TxId(1));
        co.insert(TxId(1), TxId(2));
        assert_eq!(
            AbstractExecution::new(h, Relation::new(3), co),
            Err(StructureError::CoNotTransitive(TxId(0), TxId(1), TxId(2)))
        );
    }

    #[test]
    fn universe_mismatch_detected() {
        let h = tiny_history();
        assert!(matches!(
            AbstractExecution::new(h, Relation::new(2), Relation::new(2)),
            Err(StructureError::UniverseMismatch { history: 3, relation: 2 })
        ));
    }

    #[test]
    fn partial_co_is_a_pre_execution() {
        let h = tiny_history();
        let mut co = Relation::new(3);
        co.insert(TxId(0), TxId(1));
        let exec = AbstractExecution::new(h, Relation::new(3), co).unwrap();
        assert!(!exec.is_co_total());
    }
}
