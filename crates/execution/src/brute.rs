//! Brute-force decision of `HistSI` / `HistSER` / `HistPSI` for tiny
//! histories, directly from Definitions 4 and 20.
//!
//! These searches are exponential and exist to *cross-validate* the
//! polynomial dependency-graph characterisations of `si-core` (Theorems 8,
//! 9 and 21) on small inputs: for every tiny history, the brute-force
//! verdict from the axiomatic definition must coincide with the verdict
//! computed through dependency graphs.
//!
//! The search space is pruned with two structure theorems from the paper:
//!
//! * under PREFIX and a total `CO`, each snapshot `VIS⁻¹(T)` is a
//!   *prefix* of the `CO` order no longer than `T`'s own position, so SI
//!   executions are enumerated as (permutation, prefix-length vector)
//!   pairs;
//! * under TOTALVIS, `VIS = CO`, so SER executions are just permutations;
//! * for PSI, `CO` is determined up to linearisation by `VIS`
//!   (NOCONFLICT orders conflicting writers inside `VIS`), so we enumerate
//!   (permutation, subset-of-forward-pairs) candidates for `VIS`.

use core::fmt;

use si_model::History;
use si_relations::{Relation, TxId};

use crate::{AbstractExecution, SpecModel};

/// Budget limits for the exhaustive search.
#[derive(Debug, Clone, Copy)]
pub struct BruteConfig {
    /// Maximum number of candidate executions to examine before giving up.
    pub step_budget: u64,
}

impl Default for BruteConfig {
    fn default() -> Self {
        BruteConfig { step_budget: 50_000_000 }
    }
}

/// The search budget ran out before the space was exhausted; the history's
/// membership is undecided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BruteExhausted;

impl fmt::Display for BruteExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "brute-force search budget exhausted before a verdict was reached")
    }
}

impl std::error::Error for BruteExhausted {}

/// Searches for an execution of `history` satisfying `model`'s axioms,
/// i.e. decides `history ∈ HistSI/HistSER/HistPSI` (Definition 4/20) by
/// exhausting the `(VIS, CO)` space.
///
/// Returns `Ok(Some(execution))` with a witness if the history is allowed,
/// `Ok(None)` if the full space was exhausted without a witness.
///
/// # Errors
///
/// Returns [`BruteExhausted`] if the step budget ran out first.
pub fn find_execution(
    model: SpecModel,
    history: &History,
    config: &BruteConfig,
) -> Result<Option<AbstractExecution>, BruteExhausted> {
    // Fix the init transaction (if any) at position 0; permute the rest.
    let mut rest: Vec<TxId> = history.tx_ids().filter(|&t| Some(t) != history.init_tx()).collect();
    let prefix: Vec<TxId> = history.init_tx().into_iter().collect();

    let mut budget = config.step_budget;
    let mut found: Option<AbstractExecution> = None;
    permute(&mut rest, 0, &mut |perm| {
        if found.is_some() {
            return false;
        }
        let mut order = prefix.clone();
        order.extend_from_slice(perm);
        match try_order(model, history, &order, &mut budget) {
            Ok(Some(exec)) => {
                found = Some(exec);
                false
            }
            Ok(None) => true,
            Err(BruteExhausted) => false,
        }
    });
    if found.is_none() && budget == 0 {
        // Distinguish "exhausted space" from "ran out of budget": if the
        // budget hit zero mid-way we cannot claim a negative verdict.
        return Err(BruteExhausted);
    }
    Ok(found)
}

/// Brute-force decision of prefix-consistency membership (`HistPC`): like
/// the SI search — under PREFIX and a total `CO`, snapshots are
/// `CO`-prefixes — but checking the PC axiom set (no NOCONFLICT).
///
/// # Errors
///
/// Returns [`BruteExhausted`] if the step budget ran out first.
pub fn is_allowed_pc(history: &History, config: &BruteConfig) -> Result<bool, BruteExhausted> {
    let mut rest: Vec<TxId> = history.tx_ids().filter(|&t| Some(t) != history.init_tx()).collect();
    let prefix: Vec<TxId> = history.init_tx().into_iter().collect();
    let mut budget = config.step_budget;
    let mut found = false;
    permute(&mut rest, 0, &mut |perm| {
        if found {
            return false;
        }
        let mut order = prefix.clone();
        order.extend_from_slice(perm);
        let n = history.tx_count();
        let mut co = Relation::new(n);
        for (i, &a) in order.iter().enumerate() {
            for &b in &order[i + 1..] {
                co.insert(a, b);
            }
        }
        let mut lengths = vec![0usize; order.len()];
        match enumerate_pc_prefix_vectors(history, &order, &mut lengths, 0, &mut budget, &co) {
            Ok(Some(())) => {
                found = true;
                false
            }
            Ok(None) => true,
            Err(BruteExhausted) => false,
        }
    });
    if !found && budget == 0 {
        return Err(BruteExhausted);
    }
    Ok(found)
}

fn enumerate_pc_prefix_vectors(
    history: &History,
    order: &[TxId],
    lengths: &mut [usize],
    at: usize,
    budget: &mut u64,
    co: &Relation,
) -> Result<Option<()>, BruteExhausted> {
    if at == order.len() {
        if *budget == 0 {
            return Err(BruteExhausted);
        }
        *budget -= 1;
        let n = history.tx_count();
        let mut vis = Relation::new(n);
        for (i, &t) in order.iter().enumerate() {
            for &s in &order[..lengths[i]] {
                vis.insert(s, t);
            }
        }
        let exec = AbstractExecution::new(history.clone(), vis, co.clone())
            .expect("prefix-shaped VIS is contained in the total CO");
        if crate::check_pc(&exec).is_ok() {
            return Ok(Some(()));
        }
        return Ok(None);
    }
    for k in 0..=at {
        lengths[at] = k;
        if enumerate_pc_prefix_vectors(history, order, lengths, at + 1, budget, co)?.is_some() {
            return Ok(Some(()));
        }
    }
    Ok(None)
}

/// Convenience wrapper: `true` iff the history is allowed by the model.
///
/// # Errors
///
/// Returns [`BruteExhausted`] if the step budget ran out first.
pub fn is_allowed(
    model: SpecModel,
    history: &History,
    config: &BruteConfig,
) -> Result<bool, BruteExhausted> {
    find_execution(model, history, config).map(|w| w.is_some())
}

/// Enumerates permutations of `items[at..]`, calling `f` on each complete
/// permutation; `f` returns `false` to stop.
fn permute(items: &mut [TxId], at: usize, f: &mut impl FnMut(&[TxId]) -> bool) -> bool {
    if at == items.len() {
        return f(items);
    }
    for i in at..items.len() {
        items.swap(at, i);
        let keep_going = permute(items, at + 1, f);
        items.swap(at, i);
        if !keep_going {
            return false;
        }
    }
    true
}

/// Tries every `VIS` compatible with the total commit order given by
/// `order` under `model`.
fn try_order(
    model: SpecModel,
    history: &History,
    order: &[TxId],
    budget: &mut u64,
) -> Result<Option<AbstractExecution>, BruteExhausted> {
    let n = history.tx_count();
    let mut co = Relation::new(n);
    for (i, &a) in order.iter().enumerate() {
        for &b in &order[i + 1..] {
            co.insert(a, b);
        }
    }

    match model {
        SpecModel::Ser => {
            if *budget == 0 {
                return Err(BruteExhausted);
            }
            *budget -= 1;
            let exec = AbstractExecution::new(history.clone(), co.clone(), co)
                .expect("total order CO with VIS = CO is structurally valid");
            if SpecModel::Ser.check(&exec).is_ok() {
                return Ok(Some(exec));
            }
            Ok(None)
        }
        SpecModel::Si => {
            // VIS⁻¹(order[i]) is a CO-prefix of length k_i ≤ i.
            let mut lengths = vec![0usize; order.len()];
            enumerate_prefix_vectors(history, order, &mut lengths, 0, budget, &mut co.clone())
        }
        SpecModel::Psi => {
            // VIS is any subset of the forward pairs of `order`; check the
            // PSI axioms on each candidate.
            let forward: Vec<(TxId, TxId)> = {
                let mut pairs = Vec::new();
                for (i, &a) in order.iter().enumerate() {
                    for &b in &order[i + 1..] {
                        pairs.push((a, b));
                    }
                }
                pairs
            };
            let m = forward.len();
            assert!(m < 63, "PSI brute force is limited to tiny histories");
            for mask in 0u64..(1u64 << m) {
                if *budget == 0 {
                    return Err(BruteExhausted);
                }
                *budget -= 1;
                let mut vis = Relation::new(n);
                for (bit, &(a, b)) in forward.iter().enumerate() {
                    if mask & (1 << bit) != 0 {
                        vis.insert(a, b);
                    }
                }
                let exec = AbstractExecution::new(history.clone(), vis, co.clone())
                    .expect("VIS ⊆ CO by construction of forward pairs");
                if SpecModel::Psi.check(&exec).is_ok() {
                    return Ok(Some(exec));
                }
            }
            Ok(None)
        }
    }
}

/// Recursively chooses a snapshot-prefix length for each position and
/// checks the SI axioms on each complete assignment.
fn enumerate_prefix_vectors(
    history: &History,
    order: &[TxId],
    lengths: &mut [usize],
    at: usize,
    budget: &mut u64,
    co: &mut Relation,
) -> Result<Option<AbstractExecution>, BruteExhausted> {
    if at == order.len() {
        if *budget == 0 {
            return Err(BruteExhausted);
        }
        *budget -= 1;
        let n = history.tx_count();
        let mut vis = Relation::new(n);
        for (i, &t) in order.iter().enumerate() {
            for &s in &order[..lengths[i]] {
                vis.insert(s, t);
            }
        }
        let exec = AbstractExecution::new(history.clone(), vis, co.clone())
            .expect("prefix-shaped VIS is contained in the total CO");
        if SpecModel::Si.check(&exec).is_ok() {
            return Ok(Some(exec));
        }
        return Ok(None);
    }
    for k in 0..=at {
        lengths[at] = k;
        if let Some(exec) = enumerate_prefix_vectors(history, order, lengths, at + 1, budget, co)? {
            return Ok(Some(exec));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_model::{HistoryBuilder, Op};

    fn cfg() -> BruteConfig {
        BruteConfig::default()
    }

    /// Figure 2(d): write skew. In HistSI and HistPSI, not HistSER.
    fn write_skew() -> History {
        let mut b = HistoryBuilder::new();
        let a1 = b.object("acct1");
        let a2 = b.object("acct2");
        let s1 = b.session();
        let s2 = b.session();
        b.push_tx(s1, [Op::read(a1, 70), Op::read(a2, 80), Op::write(a1, 0)]);
        b.push_tx(s2, [Op::read(a1, 70), Op::read(a2, 80), Op::write(a2, 0)]);
        b.build_with_initial_values([(a1, 70), (a2, 80)])
    }

    /// Figure 2(b): lost update. In none of the three sets.
    fn lost_update() -> History {
        let mut b = HistoryBuilder::new();
        let acct = b.object("acct");
        let s1 = b.session();
        let s2 = b.session();
        b.push_tx(s1, [Op::read(acct, 0), Op::write(acct, 50)]);
        b.push_tx(s2, [Op::read(acct, 0), Op::write(acct, 25)]);
        b.build()
    }

    /// Figure 2(c): long fork. In HistPSI only.
    fn long_fork() -> History {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let (s1, s2, s3, s4) = (b.session(), b.session(), b.session(), b.session());
        b.push_tx(s1, [Op::write(x, 1)]);
        b.push_tx(s2, [Op::write(y, 1)]);
        b.push_tx(s3, [Op::read(x, 1), Op::read(y, 0)]);
        b.push_tx(s4, [Op::read(x, 0), Op::read(y, 1)]);
        b.build()
    }

    #[test]
    fn write_skew_memberships() {
        let h = write_skew();
        assert!(is_allowed(SpecModel::Si, &h, &cfg()).unwrap());
        assert!(is_allowed(SpecModel::Psi, &h, &cfg()).unwrap());
        assert!(!is_allowed(SpecModel::Ser, &h, &cfg()).unwrap());
    }

    #[test]
    fn lost_update_memberships() {
        let h = lost_update();
        assert!(!is_allowed(SpecModel::Si, &h, &cfg()).unwrap());
        assert!(!is_allowed(SpecModel::Psi, &h, &cfg()).unwrap());
        assert!(!is_allowed(SpecModel::Ser, &h, &cfg()).unwrap());
    }

    #[test]
    fn long_fork_memberships() {
        let h = long_fork();
        assert!(!is_allowed(SpecModel::Si, &h, &cfg()).unwrap());
        assert!(is_allowed(SpecModel::Psi, &h, &cfg()).unwrap());
        assert!(!is_allowed(SpecModel::Ser, &h, &cfg()).unwrap());
    }

    #[test]
    fn witness_execution_actually_satisfies_model() {
        let h = write_skew();
        let exec = find_execution(SpecModel::Si, &h, &cfg()).unwrap().unwrap();
        assert!(SpecModel::Si.check(&exec).is_ok());
        assert!(exec.is_co_total());
    }

    #[test]
    fn serializable_history_found_quickly() {
        let mut b = HistoryBuilder::new();
        let x = b.object("x");
        let s = b.session();
        b.push_tx(s, [Op::write(x, 1)]);
        b.push_tx(s, [Op::read(x, 1), Op::write(x, 2)]);
        let h = b.build();
        for model in SpecModel::ALL {
            assert!(is_allowed(model, &h, &cfg()).unwrap(), "{model} rejected serial history");
        }
    }

    #[test]
    fn budget_exhaustion_is_an_error() {
        let h = long_fork();
        let tiny = BruteConfig { step_budget: 3 };
        assert_eq!(is_allowed(SpecModel::Si, &h, &tiny), Err(BruteExhausted));
    }

    #[test]
    fn session_guarantees_figure_2a() {
        // Figure 2(a): T1 writes x:=1, then T2 in the same session reads x.
        // Under all three models T2 must read 1, never 0.
        let mk = |read_val: u64| {
            let mut b = HistoryBuilder::new();
            let x = b.object("x");
            let s = b.session();
            b.push_tx(s, [Op::write(x, 1)]);
            b.push_tx(s, [Op::read(x, read_val)]);
            b.build()
        };
        for model in SpecModel::ALL {
            assert!(is_allowed(model, &mk(1), &cfg()).unwrap());
            assert!(
                !is_allowed(model, &mk(0), &cfg()).unwrap(),
                "{model} allowed a stale session read"
            );
        }
    }
}
