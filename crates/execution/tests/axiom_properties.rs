//! Property tests for the consistency axioms: serial executions satisfy
//! every model; targeted perturbations break exactly the right axioms.

use proptest::prelude::*;
use si_execution::{
    check_ext, check_no_conflict, check_prefix, check_session, check_total_vis, check_trans_vis,
    AbstractExecution, SpecModel,
};
use si_model::{History, HistoryBuilder, Obj, Op};
use si_relations::{Relation, TxId};

const OBJECTS: usize = 3;

/// A serial schedule: a sequence of transactions, each a list of
/// `(object, is_rmw)` accesses, executed one after another against an
/// in-memory store. Produces a history whose reads are exactly what
/// sequential execution yields, plus the serial VIS = CO.
fn serial_execution(accesses: Vec<Vec<(usize, bool)>>, sessions: usize) -> AbstractExecution {
    let mut b = HistoryBuilder::new();
    let objs: Vec<Obj> = (0..OBJECTS).map(|i| b.object(&format!("x{i}"))).collect();
    let session_ids: Vec<_> = (0..sessions.max(1)).map(|_| b.session()).collect();
    let mut store = [0u64; OBJECTS];
    let mut counter = 0u64;
    for (i, tx) in accesses.iter().enumerate() {
        let mut ops = Vec::new();
        for &(x, is_rmw) in tx {
            let x = x % OBJECTS;
            ops.push(Op::read(objs[x], store[x]));
            if is_rmw {
                counter += 1;
                store[x] = 1000 + counter;
                ops.push(Op::write(objs[x], store[x]));
            }
        }
        if ops.is_empty() {
            ops.push(Op::read(objs[0], store[0]));
        }
        b.push_tx(session_ids[i % session_ids.len()], ops);
    }
    let h = b.build();
    let n = h.tx_count();
    let mut total = Relation::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            total.insert(TxId::from_index(i), TxId::from_index(j));
        }
    }
    AbstractExecution::new(h, total.clone(), total).unwrap()
}

fn arb_accesses() -> impl Strategy<Value = Vec<Vec<(usize, bool)>>> {
    proptest::collection::vec(proptest::collection::vec((0..OBJECTS, any::<bool>()), 0..4), 1..6)
}

proptest! {
    /// Sequential execution satisfies every model's axioms: the semantics
    /// of Definition 4's remark that INT+EXT+TOTALVIS gives the usual
    /// sequential semantics.
    #[test]
    fn serial_executions_satisfy_all_models(
        accesses in arb_accesses(),
        sessions in 1..4usize,
    ) {
        let exec = serial_execution(accesses, sessions);
        for model in SpecModel::ALL {
            prop_assert!(
                model.check(&exec).is_ok(),
                "serial execution rejected by {}: {:?}",
                model,
                model.check(&exec)
            );
        }
    }

    /// Removing a non-redundant VIS edge from a serial execution breaks
    /// one of TOTALVIS / EXT / SESSION — never nothing, because every
    /// edge of a serial chain is load-bearing for TOTALVIS.
    #[test]
    fn dropping_vis_edges_breaks_totalvis(
        accesses in arb_accesses(),
        edge_seed in any::<u64>(),
    ) {
        let exec = serial_execution(accesses, 1);
        let pairs: Vec<_> = exec.vis().iter_pairs().collect();
        prop_assume!(!pairs.is_empty());
        let (a, b) = pairs[(edge_seed % pairs.len() as u64) as usize];
        let mut vis = exec.vis().clone();
        vis.remove(a, b);
        let mutated = AbstractExecution::new(
            exec.history().clone(),
            vis,
            exec.co().clone(),
        ).unwrap();
        prop_assert!(check_total_vis(&mutated).is_err());
    }

    /// The empty-VIS execution over a serial history violates SESSION
    /// (when sessions chain) or EXT (reads see nobody) unless every read
    /// reads initial values and sessions are singletons.
    #[test]
    fn axioms_catch_empty_vis(accesses in arb_accesses()) {
        let exec = serial_execution(accesses, 1);
        let h: History = exec.history().clone();
        let n = h.tx_count();
        let empty = Relation::new(n);
        let mutated = AbstractExecution::new(h.clone(), empty, exec.co().clone()).unwrap();
        let session_broken = check_session(&mutated).is_err();
        let ext_broken = check_ext(&mutated).is_err();
        let any_so = !h.session_order().is_empty();
        if any_so {
            prop_assert!(session_broken);
        }
        // Reads of non-initial values must break EXT.
        let reads_fresh = h.transactions().any(|(_, t)| {
            t.external_read_set().iter().any(|&x| {
                t.external_read(x).map(u64::from).unwrap_or(0) != 0
            })
        });
        if reads_fresh {
            prop_assert!(ext_broken);
        }
    }

    /// PREFIX and TRANSVIS hold vacuously on serial executions; removing
    /// interior edges can break them but never "fixes" anything.
    #[test]
    fn prefix_and_transvis_on_serial(accesses in arb_accesses()) {
        let exec = serial_execution(accesses, 2);
        prop_assert!(check_prefix(&exec).is_ok());
        prop_assert!(check_trans_vis(&exec).is_ok());
        prop_assert!(check_no_conflict(&exec).is_ok());
    }
}

#[test]
fn axiom_violation_displays_are_informative() {
    // One concrete exercise of each Display arm used in diagnostics.
    let mut b = HistoryBuilder::new();
    let x = b.object("x");
    let (s1, s2) = (b.session(), b.session());
    b.push_tx(s1, [Op::read(x, 0), Op::write(x, 1)]);
    b.push_tx(s2, [Op::read(x, 0), Op::write(x, 2)]);
    let h = b.build();
    let vis = Relation::from_pairs(3, [(TxId(0), TxId(1)), (TxId(0), TxId(2))]);
    let mut co = vis.clone();
    co.insert(TxId(1), TxId(2));
    let exec = AbstractExecution::new(h, vis, co).unwrap();
    let err = check_no_conflict(&exec).unwrap_err();
    let rendered = err.to_string();
    assert!(rendered.contains("NOCONFLICT"), "got: {rendered}");
}
