//! The engine interface shared by the SI, SER and PSI implementations.

use core::fmt;

use si_model::{Obj, Value};
use si_telemetry::{AbortCause, Telemetry};

use crate::probe::EngineProbe;

/// Handle to an in-flight transaction. Obtained from [`Engine::begin`] and
/// consumed by [`Engine::commit`] / [`Engine::abort`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxToken(pub(crate) usize);

impl TxToken {
    /// Creates a token from a raw slot index. Engines outside this crate
    /// (e.g. the sanitizer's seeded mutants) need this to implement
    /// [`Engine::begin`]; clients should treat tokens as opaque.
    pub fn from_raw(slot: usize) -> Self {
        TxToken(slot)
    }

    /// The raw slot index this token wraps.
    pub fn raw(self) -> usize {
        self.0
    }
}

/// Why a commit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// First-committer-wins: another transaction committed a write to an
    /// object this transaction also wrote (SI and PSI write-conflict
    /// detection, and the write half of OCC validation).
    WriteConflict(Obj),
    /// OCC read validation: another transaction committed a write to an
    /// object this transaction read (SER engine only).
    ReadConflict(Obj),
}

impl AbortReason {
    /// The telemetry classification of this abort.
    pub fn cause(&self) -> AbortCause {
        match self {
            AbortReason::WriteConflict(_) => AbortCause::WwConflict,
            AbortReason::ReadConflict(_) => AbortCause::RwConflict,
        }
    }

    /// The conflicting object conflict detection named.
    pub fn obj(&self) -> Obj {
        match self {
            AbortReason::WriteConflict(x) | AbortReason::ReadConflict(x) => *x,
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::WriteConflict(x) => write!(f, "write-write conflict on {x}"),
            AbortReason::ReadConflict(x) => write!(f, "read-write conflict on {x}"),
        }
    }
}

impl std::error::Error for AbortReason {}

/// Ground truth reported on a successful commit, consumed by the
/// [`Recorder`](crate::Recorder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitInfo {
    /// This transaction's commit sequence number (1-based; 0 is the
    /// implicit initialisation transaction).
    pub seq: u64,
    /// Commit sequence numbers of the transactions whose effects were
    /// included in this transaction's snapshot (excluding sequence 0,
    /// which is always visible). For prefix-snapshot engines this is
    /// `1..=snapshot`; for the PSI engine an arbitrary causally-closed
    /// set.
    pub visible: Vec<u64>,
}

/// A deterministic, single-threaded transactional engine.
///
/// The scheduler calls `begin`/`read`/`write`/`commit` in an arbitrary
/// interleaving across in-flight transactions; engines must tolerate any
/// such interleaving. Reads never fail in these multi-version engines
/// (there is always a visible version); conflicts surface at commit, per
/// the paper's idealised algorithm.
pub trait Engine {
    /// Number of objects in the store.
    fn object_count(&self) -> usize;

    /// Overrides an object's initial value. Must be called before any
    /// transaction begins.
    fn set_initial(&mut self, obj: Obj, value: Value);

    /// The initial value of an object (what the implicit init transaction
    /// wrote).
    fn initial(&self, obj: Obj) -> Value;

    /// Starts a transaction on behalf of `session`.
    fn begin(&mut self, session: usize) -> TxToken;

    /// Reads `obj` within the transaction (own writes first, then the
    /// snapshot).
    fn read(&mut self, tx: TxToken, obj: Obj) -> Value;

    /// Buffers a write of `value` to `obj`.
    fn write(&mut self, tx: TxToken, obj: Obj, value: Value);

    /// Attempts to commit.
    ///
    /// # Errors
    ///
    /// Returns the [`AbortReason`] if conflict detection refuses the
    /// commit; the transaction is then rolled back and the token invalid.
    fn commit(&mut self, tx: TxToken) -> Result<CommitInfo, AbortReason>;

    /// Abandons the transaction.
    fn abort(&mut self, tx: TxToken);

    /// A short engine name for reports ("SI", "SER", "PSI").
    fn name(&self) -> &'static str;

    /// Attaches a telemetry handle. Instrumented engines then emit
    /// [`TxBegin`](si_telemetry::Event::TxBegin) /
    /// [`TxCommit`](si_telemetry::Event::TxCommit) /
    /// [`TxAbort`](si_telemetry::Event::TxAbort) events for every
    /// transaction; the default implementation ignores the handle.
    fn set_telemetry(&mut self, telemetry: Telemetry) {
        let _ = telemetry;
    }

    /// Attaches a shared-state access probe. Instrumented engines then
    /// report snapshot acquisition, observed and installed versions, and
    /// commit/discard fences through it (see [`crate::probe`]); the
    /// default implementation ignores the handle, and the disabled
    /// default probe costs one branch per access.
    fn set_probe(&mut self, probe: EngineProbe) {
        let _ = probe;
    }

    /// Performs one step of background work (e.g. replicating one commit
    /// between PSI replicas); returns `true` if anything happened. The
    /// scheduler invokes this with configurable probability, so the
    /// *absence* of background steps models replication lag.
    fn background_step(&mut self) -> bool {
        false
    }

    /// Whether [`Engine::background_step`] currently has work to do.
    /// Systematic explorers use this to schedule background steps as
    /// first-class actors without probing blindly; the default (no
    /// background machinery) is `false`.
    fn background_pending(&self) -> bool {
        false
    }
}
