//! Shared-state access probes: the engines' yield-point hooks.
//!
//! The sanitizer's vector-clock race detector needs to see *inside* the
//! engines — which snapshot a transaction acquired, which committed
//! version each read observed, which versions a commit installed — not
//! just the client-visible history. Every engine therefore carries an
//! [`EngineProbe`] handle and reports these internal shared-state
//! accesses through it. Like [`Telemetry`](si_telemetry::Telemetry), the
//! default handle is disabled and costs one branch per access: the event
//! is neither constructed nor delivered unless a sink is attached, so
//! production runs pay nothing.
//!
//! Event semantics (all sequence numbers are engine commit sequence
//! numbers, 0 being the initial versions):
//!
//! * [`ProbeEvent::SnapshotPrefix`] / [`ProbeEvent::SnapshotSet`] — a
//!   transaction *acquired* its snapshot at `begin`: the happens-before
//!   acquire edge from every listed commit.
//! * [`ProbeEvent::VersionObserved`] — an external (non-own-write)
//!   read returned the version installed at `seq`.
//! * [`ProbeEvent::VersionInstalled`] — commit installed a version: a
//!   *write* access to the object's version chain.
//! * [`ProbeEvent::Committed`] — the commit completed at `seq`: the
//!   happens-before release fence covering the attempt's accesses.
//! * [`ProbeEvent::AttemptDiscarded`] — the in-flight attempt aborted
//!   (explicitly or by conflict detection): its speculative accesses were
//!   rolled back and must not participate in race detection.

use core::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use si_model::Obj;

/// One internal shared-state access or synchronisation fence, reported by
/// an engine through its [`EngineProbe`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ProbeEvent {
    /// `begin` acquired a prefix snapshot: all commits `1..=upto` are
    /// visible (SI/SER/SSI engines).
    SnapshotPrefix {
        /// The acquiring session.
        session: usize,
        /// Highest commit sequence number included in the snapshot.
        upto: u64,
    },
    /// `begin` acquired an explicit, not-necessarily-prefix snapshot (the
    /// PSI engine's causally-closed replica state).
    SnapshotSet {
        /// The acquiring session.
        session: usize,
        /// The commit sequence numbers included in the snapshot.
        visible: Vec<u64>,
    },
    /// An external read observed the version of `obj` installed at `seq`.
    VersionObserved {
        /// The reading session.
        session: usize,
        /// The object read.
        obj: Obj,
        /// Commit sequence of the observed version (0 = initial).
        seq: u64,
    },
    /// Commit installed a new version of `obj` at `seq`.
    VersionInstalled {
        /// The writing session.
        session: usize,
        /// The object written.
        obj: Obj,
        /// Commit sequence of the installed version.
        seq: u64,
    },
    /// The in-flight attempt of `session` committed at `seq` (release
    /// fence: its accesses become permanent).
    Committed {
        /// The committing session.
        session: usize,
        /// The commit sequence number.
        seq: u64,
    },
    /// The in-flight attempt of `session` was rolled back; its
    /// speculative accesses must be discarded.
    AttemptDiscarded {
        /// The aborting session.
        session: usize,
    },
    /// Commit acquired the write locks of the listed shards (sharded
    /// store only). Deadlock freedom rests on every committer acquiring
    /// in ascending shard order; the sanitizer's race detector flags any
    /// trace where the reported order is not strictly ascending.
    ShardLocksAcquired {
        /// The committing session.
        session: usize,
        /// Shard indices in acquisition order.
        shards: Vec<usize>,
    },
    /// Epoch GC pruned versions from one shard: every version strictly
    /// older than the newest version at or below `floor` was dropped.
    /// `floor` is a lower bound on every live snapshot, so no reachable
    /// read could have returned a pruned version.
    VersionsPruned {
        /// The shard that was pruned.
        shard: usize,
        /// The GC floor (oldest live snapshot at scan time).
        floor: u64,
        /// Number of versions dropped.
        pruned: u64,
    },
}

/// A consumer of probe events. Implementations must be cheap and must
/// never panic — probes are wired through the engines' hottest paths.
pub trait ProbeSink: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: ProbeEvent);
}

/// The handle engines hold. [`EngineProbe::disabled`] (also `Default`)
/// carries no sink, so [`EngineProbe::emit`] skips even *constructing*
/// the event — disabled hooks cost one branch.
#[derive(Clone, Default)]
pub struct EngineProbe {
    sink: Option<Arc<dyn ProbeSink>>,
}

impl EngineProbe {
    /// A handle that forwards to `sink`.
    pub fn new(sink: Arc<dyn ProbeSink>) -> Self {
        EngineProbe { sink: Some(sink) }
    }

    /// The no-op handle: events are neither constructed nor recorded.
    pub fn disabled() -> Self {
        EngineProbe { sink: None }
    }

    /// Whether a sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records the event produced by `make` — which is only invoked when
    /// a sink is attached.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> ProbeEvent) {
        if let Some(sink) = &self.sink {
            sink.record(make());
        }
    }
}

impl fmt::Debug for EngineProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineProbe").field("enabled", &self.is_enabled()).finish()
    }
}

/// Records every event in arrival order; the sanitizer drains the trace
/// after a run and feeds it to the race detector. The interior mutex
/// makes one probe shareable across the threads of the concurrent stress
/// harness — the lock order then linearises the trace.
#[derive(Debug, Default)]
pub struct VecProbe {
    events: Mutex<Vec<ProbeEvent>>,
}

impl VecProbe {
    /// An empty recording probe.
    pub fn new() -> Self {
        VecProbe::default()
    }

    /// Removes and returns everything recorded so far.
    pub fn drain(&self) -> Vec<ProbeEvent> {
        std::mem::take(&mut self.events.lock())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl ProbeSink for VecProbe {
    fn record(&self, event: ProbeEvent) {
        self.events.lock().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_constructs_events() {
        let p = EngineProbe::disabled();
        let mut constructed = false;
        p.emit(|| {
            constructed = true;
            ProbeEvent::Committed { session: 0, seq: 1 }
        });
        assert!(!constructed);
        assert!(!p.is_enabled());
    }

    #[test]
    fn vec_probe_records_in_order() {
        let sink = Arc::new(VecProbe::new());
        let p = EngineProbe::new(sink.clone());
        p.emit(|| ProbeEvent::SnapshotPrefix { session: 1, upto: 0 });
        p.emit(|| ProbeEvent::VersionInstalled { session: 1, obj: Obj(0), seq: 1 });
        p.emit(|| ProbeEvent::Committed { session: 1, seq: 1 });
        let events = sink.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[2], ProbeEvent::Committed { session: 1, seq: 1 });
        assert!(sink.is_empty());
    }

    #[test]
    fn events_serialize() {
        for e in [
            ProbeEvent::SnapshotSet { session: 2, visible: vec![1, 3] },
            ProbeEvent::ShardLocksAcquired { session: 1, shards: vec![0, 2, 5] },
            ProbeEvent::VersionsPruned { shard: 3, floor: 7, pruned: 2 },
        ] {
            let json = serde_json::to_string(&e).unwrap();
            let back: ProbeEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e);
        }
    }
}
