//! Multi-version concurrency-control engines: the operational side of
//! *Analysing Snapshot Isolation* (Cerone & Gotsman, PODC 2016).
//!
//! The paper *defines* SI by an idealised algorithm (§1): a transaction
//! reads from a snapshot taken at start and commits only if no concurrent
//! committed transaction wrote an object it also wrote (first-committer
//! wins). This crate implements that algorithm — and the serializable and
//! parallel-SI comparison points — as deterministic, single-threaded
//! engines driven by a seeded [`Scheduler`], so that the declarative
//! theory of the other crates can be validated against running code:
//!
//! * [`SiEngine`] — snapshot reads + write-conflict detection (strong
//!   session SI: a session's next snapshot always includes its previous
//!   commits);
//! * [`SerEngine`] — optimistic concurrency control validating *both*
//!   read and write sets, a serializable baseline;
//! * [`PsiEngine`] — parallel SI in the style of Walter \[31\]: per-replica
//!   causally-closed snapshots with explicit, scheduler-controlled
//!   replication, so long forks are actually reachable;
//! * [`SsiEngine`] — serializable SI (Cahill et al.): the SI protocol plus
//!   runtime prevention of the Theorem 19 dangerous structure (a pivot
//!   with adjacent inbound and outbound anti-dependencies), so every
//!   committed run is serializable while retaining SI's reads;
//! * [`ShardedSiEngine`] — the same SI protocol over the lock-striped
//!   [`ShardedStore`] (per-shard `RwLock`s, ascending-order multi-shard
//!   commit locking, watermark publication, epoch GC). Driven by the
//!   scheduler it is deterministic and byte-identical to [`SiEngine`];
//!   the [`stress`] harness runs the same store genuinely parallel and
//!   validates the run post hoc.
//!
//! Every engine reports ground truth on commit: its commit sequence
//! number and the set of transactions visible to its snapshot. The
//! [`Recorder`] turns a finished run into a [`History`] and an
//! [`AbstractExecution`](si_execution::AbstractExecution), which tests
//! check against the paper's axioms and dependency-graph
//! characterisations (e.g. *every* SI-engine run must land in `GraphSI`).
//!
//! Transactions are expressed in a small deterministic script language
//! ([`Script`]) sufficient for the paper's workloads — bank transfers,
//! balance checks, counters, long forks — with conditional early commit
//! for write-skew-style guards. Aborted transactions are retried, per the
//! paper's §5 assumption that clients resubmit aborted pieces.
//!
//! # Example: write skew happens under SI, not under OCC serializability
//!
//! ```
//! use si_mvcc::{Scheduler, SchedulerConfig, Script, SiEngine, SerEngine, Workload};
//! use si_model::Obj;
//!
//! let (x, y) = (Obj(0), Obj(1));
//! // Two "withdraw if the combined balance allows it" transactions.
//! let w1 = Script::new().read(x).read(y).write_const(x, 0);
//! let w2 = Script::new().read(x).read(y).write_const(y, 0);
//! let workload = Workload::new(2)
//!     .initial(x, 60)
//!     .initial(y, 60)
//!     .session([w1])
//!     .session([w2]);
//!
//! let mut scheduler = Scheduler::new(SchedulerConfig { seed: 7, ..Default::default() });
//! let si_run = scheduler.run(&mut SiEngine::new(2), &workload);
//! // Under SI both may commit (write skew is allowed); under OCC
//! // serializability at least one observes the other or aborts-and-retries.
//! assert_eq!(si_run.stats.committed, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod concurrent;
mod engine;
pub mod probe;
mod psi_engine;
mod recorder;
mod scheduler;
mod script;
mod ser_engine;
pub mod shard;
mod sharded_engine;
mod si_engine;
mod ssi_engine;
mod store;

pub use concurrent::{
    stress, stress_probed, stress_si_engine, stress_si_engine_probed, StressConfig, StressEngine,
    StressOutcome,
};
pub use engine::{AbortReason, CommitInfo, Engine, TxToken};
pub use probe::{EngineProbe, ProbeEvent, ProbeSink, VecProbe};
pub use psi_engine::PsiEngine;
pub use recorder::{CommittedTx, Recorder, RunResult, RunStats};
pub use scheduler::{Scheduler, SchedulerConfig, Workload};
pub use script::{Script, ScriptOp};
pub use ser_engine::SerEngine;
pub use shard::{GcStats, ShardedStore, ShardedStoreConfig, SnapshotRegistry};
pub use sharded_engine::ShardedSiEngine;
pub use si_engine::SiEngine;
pub use ssi_engine::SsiEngine;
pub use store::{MultiVersionStore, Version};

pub use si_model::{History, Obj, Value};
pub use si_telemetry::{
    AbortCause, CountingSink, Event, JsonlSink, MetricsRegistry, MetricsReport, NullSink,
    Telemetry, TelemetrySink,
};
