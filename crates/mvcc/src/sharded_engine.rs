//! The SI engine over the lock-striped store: same observable protocol
//! as [`SiEngine`](crate::SiEngine), different synchronisation substrate.

use std::collections::BTreeMap;

use si_model::{Obj, Value};
use si_telemetry::{AbortCause, Event, Telemetry};

use crate::engine::{AbortReason, CommitInfo, Engine, TxToken};
use crate::probe::{EngineProbe, ProbeEvent};
use crate::shard::{GcStats, ShardedStore, ShardedStoreConfig};

#[derive(Debug)]
struct ActiveTx {
    session: usize,
    snapshot: u64,
    writes: BTreeMap<Obj, Value>,
    finished: bool,
}

/// Strong session snapshot isolation over the [`ShardedStore`]: snapshot
/// reads, first-committer-wins and prefix visibility exactly as in
/// [`SiEngine`](crate::SiEngine), but with per-shard locking, watermark
/// publication and epoch GC underneath.
///
/// Driven single-threaded (by the [`Scheduler`](crate::Scheduler) or the
/// sanitizer's explorer) the engine is fully deterministic: commits are
/// serial, sequence allocation is contiguous, the watermark never has a
/// hole, and the recorded run is *byte-identical* to the unsharded
/// engine's — the differential tests assert exactly that. The same store
/// code then runs multi-threaded in the stress harness
/// ([`stress`](crate::stress)), where only the interleaving (not the
/// protocol) changes.
#[derive(Debug)]
pub struct ShardedSiEngine {
    store: ShardedStore,
    active: Vec<ActiveTx>,
    session_high_water: Vec<u64>,
    telemetry: Telemetry,
    probe: EngineProbe,
}

impl ShardedSiEngine {
    /// Creates an engine over `object_count` objects with the default
    /// striping/GC configuration.
    pub fn new(object_count: usize) -> Self {
        ShardedSiEngine::with_config(object_count, ShardedStoreConfig::default())
    }

    /// Creates an engine with explicit striping and GC configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` or `config.sessions` is zero.
    pub fn with_config(object_count: usize, config: ShardedStoreConfig) -> Self {
        ShardedSiEngine {
            store: ShardedStore::new(object_count, config),
            active: Vec::new(),
            session_high_water: Vec::new(),
            telemetry: Telemetry::disabled(),
            probe: EngineProbe::disabled(),
        }
    }

    /// Read-only access to the underlying sharded store.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// GC counters accumulated so far.
    pub fn gc_stats(&self) -> GcStats {
        self.store.gc_stats()
    }

    fn tx(&mut self, token: TxToken) -> &mut ActiveTx {
        let tx = &mut self.active[token.raw()];
        assert!(!tx.finished, "transaction already committed or aborted");
        tx
    }
}

impl Engine for ShardedSiEngine {
    fn object_count(&self) -> usize {
        self.store.object_count()
    }

    fn set_initial(&mut self, obj: Obj, value: Value) {
        self.store.set_initial(obj, value);
    }

    fn initial(&self, obj: Obj) -> Value {
        self.store.initial(obj)
    }

    fn begin(&mut self, session: usize) -> TxToken {
        if session >= self.session_high_water.len() {
            self.session_high_water.resize(session + 1, 0);
        }
        let snapshot = self.store.begin_snapshot(session);
        // Strong session SI: the monotone watermark covers everything
        // this session previously committed.
        debug_assert!(snapshot >= self.session_high_water[session]);
        self.telemetry.emit(|| Event::TxBegin { session });
        self.probe.emit(|| ProbeEvent::SnapshotPrefix { session, upto: snapshot });
        self.active.push(ActiveTx { session, snapshot, writes: BTreeMap::new(), finished: false });
        TxToken::from_raw(self.active.len() - 1)
    }

    fn read(&mut self, tx: TxToken, obj: Obj) -> Value {
        let (session, snapshot) = {
            let t = self.tx(tx);
            if let Some(&v) = t.writes.get(&obj) {
                return v;
            }
            (t.session, t.snapshot)
        };
        let version = self.store.read_at(obj, snapshot);
        self.probe.emit(|| ProbeEvent::VersionObserved { session, obj, seq: version.commit_seq });
        version.value
    }

    fn write(&mut self, tx: TxToken, obj: Obj, value: Value) {
        self.tx(tx).writes.insert(obj, value);
    }

    fn commit(&mut self, tx: TxToken) -> Result<CommitInfo, AbortReason> {
        let token = tx;
        let (session, snapshot, writes) = {
            let t = self.tx(token);
            (t.session, t.snapshot, t.writes.clone())
        };
        self.active[token.raw()].finished = true;
        let gc_before =
            if self.telemetry.is_enabled() { self.store.gc_stats() } else { GcStats::default() };
        match self.store.commit(session, snapshot, &writes, &self.probe) {
            Err(obj) => {
                self.telemetry.emit(|| Event::TxAbort {
                    session,
                    cause: AbortCause::WwConflict,
                    obj: Some(obj.0),
                });
                self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
                Err(AbortReason::WriteConflict(obj))
            }
            Ok(seq) => {
                self.session_high_water[session] = self.session_high_water[session].max(seq);
                if self.telemetry.is_enabled() {
                    let gc = self.store.gc_stats();
                    if gc.passes > gc_before.passes {
                        self.telemetry.emit(|| Event::GcPass {
                            session,
                            passes: gc.passes - gc_before.passes,
                            pruned: gc.pruned - gc_before.pruned,
                        });
                    }
                }
                self.telemetry.emit(|| Event::TxCommit { session, seq, ops: writes.len() });
                self.probe.emit(|| ProbeEvent::Committed { session, seq });
                Ok(CommitInfo { seq, visible: (1..=snapshot).collect() })
            }
        }
    }

    fn abort(&mut self, tx: TxToken) {
        let t = self.tx(tx);
        t.finished = true;
        let session = t.session;
        self.store.end_snapshot(session);
        self.telemetry.emit(|| Event::TxAbort { session, cause: AbortCause::Explicit, obj: None });
        self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
    }

    fn name(&self) -> &'static str {
        "SI-sharded"
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn set_probe(&mut self, probe: EngineProbe) {
        self.probe = probe;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(shards: usize, gc_interval: u64) -> ShardedSiEngine {
        ShardedSiEngine::with_config(2, ShardedStoreConfig { shards, gc_interval, sessions: 8 })
    }

    #[test]
    fn snapshot_reads_ignore_later_commits() {
        let mut e = engine(2, 0);
        let x = Obj(0);
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        e.write(t1, x, Value(5));
        e.commit(t1).unwrap();
        assert_eq!(e.read(t2, x), Value::INITIAL);
    }

    #[test]
    fn first_committer_wins() {
        let mut e = engine(2, 0);
        let x = Obj(0);
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        e.write(t1, x, Value(1));
        e.write(t2, x, Value(2));
        assert!(e.commit(t1).is_ok());
        assert_eq!(e.commit(t2), Err(AbortReason::WriteConflict(x)));
    }

    #[test]
    fn write_skew_commits() {
        let mut e = engine(2, 0);
        let (x, y) = (Obj(0), Obj(1));
        e.set_initial(x, Value(60));
        e.set_initial(y, Value(60));
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        assert_eq!(e.read(t1, x), Value(60));
        assert_eq!(e.read(t2, y), Value(60));
        e.write(t1, x, Value(0));
        e.write(t2, y, Value(0));
        assert!(e.commit(t1).is_ok());
        assert!(e.commit(t2).is_ok());
    }

    #[test]
    fn session_snapshots_advance() {
        let mut e = engine(2, 0);
        let x = Obj(0);
        let t1 = e.begin(0);
        e.write(t1, x, Value(1));
        e.commit(t1).unwrap();
        let t2 = e.begin(0);
        assert_eq!(e.read(t2, x), Value(1));
    }

    #[test]
    fn gc_runs_under_the_scheduler_protocol() {
        let mut e = engine(1, 1);
        let x = Obj(0);
        for i in 1..=10 {
            let t = e.begin(0);
            e.write(t, x, Value(i));
            e.commit(t).unwrap();
        }
        let stats = e.gc_stats();
        assert!(stats.passes > 0 && stats.pruned > 0, "GC never fired: {stats:?}");
        let t = e.begin(0);
        assert_eq!(e.read(t, x), Value(10));
    }

    #[test]
    fn gc_passes_surface_in_telemetry() {
        let sink = std::sync::Arc::new(si_telemetry::CountingSink::new());
        let mut e = engine(1, 1);
        e.set_telemetry(Telemetry::new(sink.clone()));
        let x = Obj(0);
        for i in 1..=10 {
            let t = e.begin(0);
            e.write(t, x, Value(i));
            e.commit(t).unwrap();
        }
        assert!(sink.gc_passes() > 0, "no GcPass events reached the sink");
        assert_eq!(sink.gc_pruned(), e.gc_stats().pruned);
    }

    #[test]
    fn aborted_tx_releases_its_snapshot_slot() {
        let mut e = engine(2, 0);
        let t1 = e.begin(0);
        e.abort(t1);
        // A second begin on the same session must not trip the registry.
        let t2 = e.begin(0);
        e.write(t2, Obj(0), Value(1));
        assert!(e.commit(t2).is_ok());
    }
}
