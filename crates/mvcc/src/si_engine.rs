//! The snapshot-isolation engine: the paper's §1 idealised algorithm.

use std::collections::BTreeMap;

use si_model::{Obj, Value};
use si_telemetry::{AbortCause, Event, Telemetry};

use crate::engine::{AbortReason, CommitInfo, Engine, TxToken};
use crate::probe::{EngineProbe, ProbeEvent};
use crate::store::MultiVersionStore;

#[derive(Debug)]
struct ActiveTx {
    session: usize,
    snapshot: u64,
    writes: BTreeMap<Obj, Value>,
    finished: bool,
}

/// Strong session snapshot isolation, exactly as sketched in §1 of the
/// paper:
///
/// * `begin` takes a snapshot — all versions committed so far. (Because
///   the snapshot is "latest as of begin", it automatically includes the
///   session's own previous commits, giving the *strong session*
///   guarantee; the engine still tracks per-session high-water marks and
///   asserts this invariant.)
/// * `read` returns the transaction's own last write to the object, or
///   the newest version within the snapshot.
/// * `commit` performs write-conflict detection: if any object in the
///   write set has a committed version newer than the snapshot, the
///   transaction aborts (first committer wins). Otherwise all writes are
///   installed atomically at the next commit sequence number.
#[derive(Debug)]
pub struct SiEngine {
    store: MultiVersionStore,
    commit_counter: u64,
    active: Vec<ActiveTx>,
    session_high_water: Vec<u64>,
    telemetry: Telemetry,
    probe: EngineProbe,
}

impl SiEngine {
    /// Creates an engine over `object_count` objects initialised to 0.
    pub fn new(object_count: usize) -> Self {
        SiEngine {
            store: MultiVersionStore::new(object_count),
            commit_counter: 0,
            active: Vec::new(),
            session_high_water: Vec::new(),
            telemetry: Telemetry::disabled(),
            probe: EngineProbe::disabled(),
        }
    }

    /// Read-only access to the underlying store (for assertions and
    /// examples).
    pub fn store(&self) -> &MultiVersionStore {
        &self.store
    }

    fn tx(&mut self, token: TxToken) -> &mut ActiveTx {
        let tx = &mut self.active[token.0];
        assert!(!tx.finished, "transaction already committed or aborted");
        tx
    }
}

impl Engine for SiEngine {
    fn object_count(&self) -> usize {
        self.store.object_count()
    }

    fn set_initial(&mut self, obj: Obj, value: Value) {
        self.store.set_initial(obj, value);
    }

    fn initial(&self, obj: Obj) -> Value {
        self.store.initial(obj)
    }

    fn begin(&mut self, session: usize) -> TxToken {
        if session >= self.session_high_water.len() {
            self.session_high_water.resize(session + 1, 0);
        }
        let snapshot = self.commit_counter;
        // Strong session SI: the snapshot must include everything this
        // session previously committed. A monotone global counter makes
        // this automatic.
        debug_assert!(snapshot >= self.session_high_water[session]);
        self.telemetry.emit(|| Event::TxBegin { session });
        self.probe.emit(|| ProbeEvent::SnapshotPrefix { session, upto: snapshot });
        self.active.push(ActiveTx { session, snapshot, writes: BTreeMap::new(), finished: false });
        TxToken(self.active.len() - 1)
    }

    fn read(&mut self, tx: TxToken, obj: Obj) -> Value {
        let (session, snapshot) = {
            let t = self.tx(tx);
            if let Some(&v) = t.writes.get(&obj) {
                return v;
            }
            (t.session, t.snapshot)
        };
        let version = self.store.read_at(obj, snapshot);
        self.probe.emit(|| ProbeEvent::VersionObserved { session, obj, seq: version.commit_seq });
        version.value
    }

    fn write(&mut self, tx: TxToken, obj: Obj, value: Value) {
        self.tx(tx).writes.insert(obj, value);
    }

    fn commit(&mut self, tx: TxToken) -> Result<CommitInfo, AbortReason> {
        let token = tx;
        let (session, snapshot, writes) = {
            let t = self.tx(token);
            (t.session, t.snapshot, t.writes.clone())
        };
        // First-committer-wins write-conflict detection.
        for &obj in writes.keys() {
            if self.store.latest_seq(obj) > snapshot {
                self.active[token.0].finished = true;
                self.telemetry.emit(|| Event::TxAbort {
                    session,
                    cause: AbortCause::WwConflict,
                    obj: Some(obj.0),
                });
                self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
                return Err(AbortReason::WriteConflict(obj));
            }
        }
        self.commit_counter += 1;
        let seq = self.commit_counter;
        for (&obj, &value) in &writes {
            self.store.install(obj, value, seq);
            self.probe.emit(|| ProbeEvent::VersionInstalled { session, obj, seq });
        }
        self.active[token.0].finished = true;
        self.telemetry.emit(|| Event::TxCommit { session, seq, ops: writes.len() });
        self.probe.emit(|| ProbeEvent::Committed { session, seq });
        Ok(CommitInfo { seq, visible: (1..=snapshot).collect() })
    }

    fn abort(&mut self, tx: TxToken) {
        let t = self.tx(tx);
        t.finished = true;
        let session = t.session;
        self.telemetry.emit(|| Event::TxAbort { session, cause: AbortCause::Explicit, obj: None });
        self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
    }

    fn name(&self) -> &'static str {
        "SI"
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn set_probe(&mut self, probe: EngineProbe) {
        self.probe = probe;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_ignore_later_commits() {
        let mut e = SiEngine::new(1);
        let x = Obj(0);
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        e.write(t1, x, Value(5));
        e.commit(t1).unwrap();
        // t2's snapshot predates t1's commit.
        assert_eq!(e.read(t2, x), Value::INITIAL);
    }

    #[test]
    fn own_writes_visible() {
        let mut e = SiEngine::new(1);
        let x = Obj(0);
        let t = e.begin(0);
        e.write(t, x, Value(9));
        assert_eq!(e.read(t, x), Value(9));
    }

    #[test]
    fn first_committer_wins() {
        let mut e = SiEngine::new(1);
        let x = Obj(0);
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        e.write(t1, x, Value(1));
        e.write(t2, x, Value(2));
        assert!(e.commit(t1).is_ok());
        assert_eq!(e.commit(t2), Err(AbortReason::WriteConflict(x)));
    }

    #[test]
    fn write_skew_commits() {
        // The defining SI anomaly: disjoint write sets pass conflict
        // detection even though both read stale data.
        let mut e = SiEngine::new(2);
        let (x, y) = (Obj(0), Obj(1));
        e.set_initial(x, Value(60));
        e.set_initial(y, Value(60));
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        assert_eq!(e.read(t1, x), Value(60));
        assert_eq!(e.read(t1, y), Value(60));
        assert_eq!(e.read(t2, x), Value(60));
        assert_eq!(e.read(t2, y), Value(60));
        e.write(t1, x, Value(0));
        e.write(t2, y, Value(0));
        assert!(e.commit(t1).is_ok());
        assert!(e.commit(t2).is_ok()); // disjoint writes: no conflict
    }

    #[test]
    fn lost_update_prevented() {
        let mut e = SiEngine::new(1);
        let x = Obj(0);
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        let v1 = e.read(t1, x);
        let v2 = e.read(t2, x);
        e.write(t1, x, Value(v1.0 + 50));
        e.write(t2, x, Value(v2.0 + 25));
        assert!(e.commit(t1).is_ok());
        assert!(e.commit(t2).is_err()); // the increment cannot be lost
    }

    #[test]
    fn session_snapshots_advance() {
        let mut e = SiEngine::new(1);
        let x = Obj(0);
        let t1 = e.begin(0);
        e.write(t1, x, Value(1));
        e.commit(t1).unwrap();
        let t2 = e.begin(0); // same session
        assert_eq!(e.read(t2, x), Value(1));
    }

    #[test]
    fn commit_info_reports_snapshot() {
        let mut e = SiEngine::new(1);
        let x = Obj(0);
        let t1 = e.begin(0);
        e.write(t1, x, Value(1));
        let info1 = e.commit(t1).unwrap();
        assert_eq!(info1.seq, 1);
        assert!(info1.visible.is_empty());
        let t2 = e.begin(0);
        e.write(t2, x, Value(2));
        let info2 = e.commit(t2).unwrap();
        assert_eq!(info2.seq, 2);
        assert_eq!(info2.visible, vec![1]);
    }

    #[test]
    fn aborted_tx_leaves_no_trace() {
        let mut e = SiEngine::new(1);
        let x = Obj(0);
        let t1 = e.begin(0);
        e.write(t1, x, Value(9));
        e.abort(t1);
        let t2 = e.begin(0);
        assert_eq!(e.read(t2, x), Value::INITIAL);
    }

    #[test]
    #[should_panic(expected = "already committed")]
    fn using_finished_token_panics() {
        let mut e = SiEngine::new(1);
        let t = e.begin(0);
        e.commit(t).unwrap();
        e.read(t, Obj(0));
    }
}
