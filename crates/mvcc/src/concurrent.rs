//! Concurrent stress harness: many OS threads hammering one SI protocol
//! instance through *per-component* locks.
//!
//! The deterministic [`Scheduler`](crate::Scheduler) is the primary
//! validation tool; this module complements it with a *real-concurrency*
//! smoke test — threads interleave nondeterministically and the run is
//! validated after the fact exactly like a scheduled run. Earlier
//! revisions wrapped a whole [`SiEngine`](crate::SiEngine) in one coarse
//! `parking_lot::Mutex`, which serialised every operation and hid exactly
//! the interleavings the harness exists to exercise. The protocol is now
//! decomposed into independently synchronised components:
//!
//! * the multi-version **store** behind a [`RwLock`] — snapshot reads
//!   take the shared lock and run concurrently; only commit-time
//!   validation + install takes the exclusive lock;
//! * the **commit counter** as an [`AtomicU64`] — `begin` snapshots it
//!   with a single acquire load, no lock at all. The counter is published
//!   (release store) only *after* every write of the commit has been
//!   installed under the store's write lock, so a snapshot `s` always
//!   refers to fully installed versions `1..=s`;
//! * the per-transaction **in-flight state** (snapshot, write buffer) is
//!   owned by the executing thread — it is private by construction, not
//!   by locking;
//! * the **recorder** behind its own `Mutex`, touched only at commit
//!   boundaries.
//!
//! First-committer-wins stays atomic because validation and install
//! happen under one exclusive store lock; everything else genuinely
//! overlaps. The same decomposition is what the `si-sanitizer` crate
//! explores deterministically — probe events emitted here carry enough
//! content (session, sequence numbers) for its vector-clock race
//! detector to audit a real-concurrency run after the fact.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use si_model::{Obj, Op, Value};

use crate::probe::{EngineProbe, ProbeEvent};
use crate::recorder::{CommittedTx, Recorder, RunResult};
use crate::store::MultiVersionStore;

/// The lock-partitioned shared state of the concurrent SI protocol.
#[derive(Debug)]
struct SharedSi {
    store: RwLock<MultiVersionStore>,
    /// Highest fully installed commit sequence number. Published with
    /// release ordering after the installs it covers; `begin` reads it
    /// with acquire ordering.
    commit_counter: AtomicU64,
    probe: EngineProbe,
}

/// A thread-owned in-flight transaction: no synchronisation needed until
/// it reaches for shared state.
#[derive(Debug)]
struct InFlight {
    session: usize,
    snapshot: u64,
    writes: BTreeMap<Obj, Value>,
}

impl SharedSi {
    fn new(object_count: usize, probe: EngineProbe) -> Self {
        SharedSi {
            store: RwLock::new(MultiVersionStore::new(object_count)),
            commit_counter: AtomicU64::new(0),
            probe,
        }
    }

    /// Takes a snapshot: a single atomic load, no lock.
    fn begin(&self, session: usize) -> InFlight {
        let snapshot = self.commit_counter.load(Ordering::Acquire);
        self.probe.emit(|| ProbeEvent::SnapshotPrefix { session, upto: snapshot });
        InFlight { session, snapshot, writes: BTreeMap::new() }
    }

    /// Snapshot read under the *shared* store lock; concurrent readers
    /// never block each other.
    fn read(&self, tx: &InFlight, obj: Obj) -> Value {
        if let Some(&v) = tx.writes.get(&obj) {
            return v;
        }
        let version = self.store.read().read_at(obj, tx.snapshot);
        let session = tx.session;
        self.probe.emit(|| ProbeEvent::VersionObserved { session, obj, seq: version.commit_seq });
        version.value
    }

    /// First-committer-wins validation and install, atomic under the
    /// exclusive store lock. Returns the commit sequence number, or the
    /// first conflicting object.
    fn commit(&self, tx: InFlight) -> Result<u64, Obj> {
        let session = tx.session;
        let mut store = self.store.write();
        for &obj in tx.writes.keys() {
            if store.latest_seq(obj) > tx.snapshot {
                self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
                return Err(obj);
            }
        }
        let seq = self.commit_counter.load(Ordering::Relaxed) + 1;
        for (&obj, &value) in &tx.writes {
            store.install(obj, value, seq);
            self.probe.emit(|| ProbeEvent::VersionInstalled { session, obj, seq });
        }
        // Publish only after every install, still under the write lock:
        // a lock-free `begin` that observes `seq` must find all of its
        // versions in place.
        self.commit_counter.store(seq, Ordering::Release);
        self.probe.emit(|| ProbeEvent::Committed { session, seq });
        Ok(seq)
    }

    /// Abandons an in-flight transaction; its buffered writes simply
    /// drop.
    fn abort(&self, tx: InFlight) {
        let session = tx.session;
        self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
    }
}

/// Runs `threads` OS threads against shared SI protocol state, each
/// performing `txs_per_thread` read-modify-write transactions on random
/// objects (each thread is one session). A fraction of transactions is
/// deliberately abandoned mid-flight (failure injection); aborted commits
/// are retried indefinitely.
///
/// Returns the recorded run, validated by the caller (tests assert the
/// result is a legal SI execution).
///
/// # Panics
///
/// Panics if `object_count` is zero or a thread panics.
pub fn stress_si_engine(
    object_count: usize,
    threads: usize,
    txs_per_thread: usize,
    seed: u64,
) -> RunResult {
    stress_si_engine_probed(object_count, threads, txs_per_thread, seed, EngineProbe::disabled())
}

/// [`stress_si_engine`] with a probe attached: every snapshot, version
/// observation, install, commit, and discarded attempt is reported to the
/// sink, linearised by the component lock under which it happened. The
/// `si-sanitizer` race detector consumes this to audit real-concurrency
/// runs.
pub fn stress_si_engine_probed(
    object_count: usize,
    threads: usize,
    txs_per_thread: usize,
    seed: u64,
    probe: EngineProbe,
) -> RunResult {
    assert!(object_count > 0, "need at least one object");
    let shared = SharedSi::new(object_count, probe);
    let recorder = Mutex::new(Recorder::new());

    crossbeam::scope(|scope| {
        for thread_id in 0..threads {
            let shared = &shared;
            let recorder = &recorder;
            scope.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(seed ^ (thread_id as u64).wrapping_mul(0x9e37));
                let mut done = 0;
                while done < txs_per_thread {
                    let obj = Obj::from_index(rng.gen_range(0..object_count));
                    let inject_abort = rng.gen_ratio(1, 10);

                    let mut tx = shared.begin(thread_id);
                    let read = shared.read(&tx, obj);
                    let written = Value(read.0 + 1);
                    tx.writes.insert(obj, written);
                    if inject_abort {
                        shared.abort(tx);
                        continue; // does not count towards `done`
                    }
                    let snapshot = tx.snapshot;
                    match shared.commit(tx) {
                        Ok(seq) => {
                            let mut rec = recorder.lock();
                            rec.stats.committed += 1;
                            rec.stats.ops_executed += 2;
                            rec.record(CommittedTx {
                                session: thread_id,
                                ops: vec![Op::Read(obj, read), Op::Write(obj, written)],
                                seq,
                                visible: (1..=snapshot).collect(),
                            });
                            done += 1;
                        }
                        Err(_) => {
                            recorder.lock().stats.aborted += 1;
                        }
                    }
                }
            });
        }
    })
    .expect("stress thread panicked");

    let initial_values = vec![Value::INITIAL; object_count];
    recorder.into_inner().finish(&initial_values, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::VecProbe;
    use si_execution::SpecModel;
    use std::sync::Arc;

    #[test]
    fn concurrent_run_is_a_legal_si_execution() {
        let result = stress_si_engine(4, 4, 25, 0xC0FFEE);
        assert_eq!(result.stats.committed, 100);
        assert!(SpecModel::Si.check(&result.execution).is_ok());
    }

    #[test]
    fn counters_never_lose_updates() {
        // Every committed increment must be reflected: the sum of final
        // object values equals the number of committed transactions.
        let result = stress_si_engine(2, 3, 20, 7);
        let history = &result.history;
        let n = history.tx_count();
        let mut finals = [Value::INITIAL; 2];
        // Replay the version order: the last committed write per object.
        for i in 1..n {
            let t = history.transaction(si_relations::TxId::from_index(i));
            for op in t.ops() {
                if op.is_write() {
                    finals[op.obj().index()] = op.value();
                }
            }
        }
        let total: u64 = finals.iter().map(|v| v.0).sum();
        assert_eq!(total, result.stats.committed);
    }

    #[test]
    fn probed_run_reports_every_commit() {
        let sink = Arc::new(VecProbe::new());
        let probe = EngineProbe::new(sink.clone());
        let result = stress_si_engine_probed(2, 2, 10, 42, probe);
        let events = sink.drain();
        let commits =
            events.iter().filter(|e| matches!(e, ProbeEvent::Committed { .. })).count() as u64;
        assert_eq!(commits, result.stats.committed);
        // Installs are published before the commit counter: every
        // Committed { seq } is preceded in the log by its installs.
        for (i, e) in events.iter().enumerate() {
            if let ProbeEvent::Committed { seq, .. } = e {
                let installed = events[..i]
                    .iter()
                    .any(|p| matches!(p, ProbeEvent::VersionInstalled { seq: s, .. } if s == seq));
                assert!(installed, "commit {seq} published before its installs");
            }
        }
    }
}
