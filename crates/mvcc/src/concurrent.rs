//! Concurrent stress harness: many OS threads hammering one engine.
//!
//! The deterministic [`Scheduler`](crate::Scheduler) is the primary
//! validation tool; this module complements it with a *real-concurrency*
//! smoke test — threads interleave nondeterministically through a
//! `parking_lot` mutex, and the run is validated after the fact exactly
//! like a scheduled run. It exists to catch engine bugs that only
//! manifest under operation orders a seeded scheduler is unlikely to
//! produce, and failure injection (threads abort transactions at random).

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use si_model::{Obj, Op, Value};

use crate::engine::Engine;
use crate::recorder::{CommittedTx, Recorder, RunResult};
use crate::si_engine::SiEngine;

/// Runs `threads` OS threads against a shared [`SiEngine`], each
/// performing `txs_per_thread` read-modify-write transactions on random
/// objects (each thread is one session). A fraction of transactions is
/// deliberately abandoned mid-flight (failure injection); aborted commits
/// are retried indefinitely.
///
/// Returns the recorded run, validated by the caller (tests assert the
/// result is a legal SI execution).
///
/// # Panics
///
/// Panics if `object_count` is zero or a thread panics.
pub fn stress_si_engine(
    object_count: usize,
    threads: usize,
    txs_per_thread: usize,
    seed: u64,
) -> RunResult {
    assert!(object_count > 0, "need at least one object");
    let engine = Mutex::new(SiEngine::new(object_count));
    let recorder = Mutex::new(Recorder::new());

    crossbeam::scope(|scope| {
        for thread_id in 0..threads {
            let engine = &engine;
            let recorder = &recorder;
            scope.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(seed ^ (thread_id as u64).wrapping_mul(0x9e37));
                let mut done = 0;
                while done < txs_per_thread {
                    let obj = Obj::from_index(rng.gen_range(0..object_count));
                    let inject_abort = rng.gen_ratio(1, 10);

                    // Keep the lock per operation, not per transaction, so
                    // threads genuinely interleave inside transactions.
                    let token = engine.lock().begin(thread_id);
                    let read = engine.lock().read(token, obj);
                    let written = Value(read.0 + 1);
                    engine.lock().write(token, obj, written);
                    if inject_abort {
                        engine.lock().abort(token);
                        continue; // does not count towards `done`
                    }
                    let outcome = engine.lock().commit(token);
                    match outcome {
                        Ok(info) => {
                            let mut rec = recorder.lock();
                            rec.stats.committed += 1;
                            rec.stats.ops_executed += 2;
                            rec.record(CommittedTx {
                                session: thread_id,
                                ops: vec![Op::Read(obj, read), Op::Write(obj, written)],
                                seq: info.seq,
                                visible: info.visible,
                            });
                            done += 1;
                        }
                        Err(_) => {
                            recorder.lock().stats.aborted += 1;
                        }
                    }
                }
            });
        }
    })
    .expect("stress thread panicked");

    let initial_values = vec![Value::INITIAL; object_count];
    recorder.into_inner().finish(&initial_values, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_execution::SpecModel;

    #[test]
    fn concurrent_run_is_a_legal_si_execution() {
        let result = stress_si_engine(4, 4, 25, 0xC0FFEE);
        assert_eq!(result.stats.committed, 100);
        assert!(SpecModel::Si.check(&result.execution).is_ok());
    }

    #[test]
    fn counters_never_lose_updates() {
        // Every committed increment must be reflected: the sum of final
        // object values equals the number of committed transactions.
        let result = stress_si_engine(2, 3, 20, 7);
        let history = &result.history;
        let n = history.tx_count();
        let mut finals = [Value::INITIAL; 2];
        // Replay the version order: the last committed write per object.
        for i in 1..n {
            let t = history.transaction(si_relations::TxId::from_index(i));
            for op in t.ops() {
                if op.is_write() {
                    finals[op.obj().index()] = op.value();
                }
            }
        }
        let total: u64 = finals.iter().map(|v| v.0).sum();
        assert_eq!(total, result.stats.committed);
    }
}
