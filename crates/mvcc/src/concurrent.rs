//! Concurrent stress harness: many OS threads hammering one SI protocol
//! instance, with a measured single-lock baseline and a sharded fast
//! path.
//!
//! The deterministic [`Scheduler`](crate::Scheduler) is the primary
//! validation tool; this module complements it with *real-concurrency*
//! runs — threads interleave nondeterministically and the run is
//! validated after the fact exactly like a scheduled run (the paper's
//! soundness theorems are what license checking post hoc instead of
//! serialising the engine). Two protocol back-ends share one workload
//! driver:
//!
//! * [`StressEngine::SingleLock`] — the retained baseline: the whole
//!   [`MultiVersionStore`] behind one [`RwLock`] (reads shared, commit
//!   exclusive), the commit counter as an acquire/release [`AtomicU64`],
//!   and every commit record appended under one recorder `Mutex`,
//!   including the eager materialisation of the snapshot's visible set.
//!   This is deliberately yesterday's code path, kept so speedups are
//!   *measured against it*, not asserted.
//! * [`StressEngine::Sharded`] — the lock-striped
//!   [`ShardedStore`]: per-shard `RwLock`s, ascending-order multi-shard
//!   commit locking, watermark publication and epoch GC (see
//!   [`crate::shard`]). Commit records go to *thread-local* buffers and
//!   are merged into one [`Recorder`] after the threads join — the
//!   recorder mutex and the `O(snapshot)` visible-set materialisation
//!   leave the commit hot path entirely. Per-session commit-seq
//!   monotonicity is still enforced: the merge replays each thread's
//!   buffer in order through [`Recorder::record`], which panics on any
//!   regression.
//!
//! [`stress`] runs a configurable workload (threads × contention ×
//! read/write mix) against either back-end and reports the validated
//! [`RunResult`] plus wall-clock throughput of the execution phase, so
//! the `engine_throughput` bench can emit honest scaling curves.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use si_model::{Obj, Op, Value};

use crate::probe::{EngineProbe, ProbeEvent};
use crate::recorder::{CommittedTx, Recorder, RunResult};
use crate::shard::{GcStats, ShardedStore, ShardedStoreConfig};
use crate::store::MultiVersionStore;

/// Workload shape for [`stress`]: how many threads, how much work, how
/// skewed the object accesses, how write-heavy the transactions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressConfig {
    /// Objects in the store.
    pub object_count: usize,
    /// OS threads; each thread is one session.
    pub threads: usize,
    /// Transactions each thread must *commit* (aborts are retried).
    pub txs_per_thread: usize,
    /// Read-modify-write steps per transaction.
    pub ops_per_tx: usize,
    /// Probability that a step writes back `value + 1` after reading.
    pub write_ratio: f64,
    /// Probability that a step targets the hot set instead of the whole
    /// object space (0.0 = uniform).
    pub hot_ratio: f64,
    /// Size of the hot set (objects `0..hot_objects`).
    pub hot_objects: usize,
    /// Probability a transaction is abandoned mid-flight (failure
    /// injection; abandoned attempts do not count towards the quota).
    pub abort_ratio: f64,
    /// Workload RNG seed.
    pub seed: u64,
}

impl StressConfig {
    /// Low contention: uniform access over a wide object space, so
    /// first-committer-wins conflicts are rare and parallelism is real.
    pub fn low_contention(threads: usize, txs_per_thread: usize, seed: u64) -> Self {
        StressConfig {
            object_count: 1024,
            threads,
            txs_per_thread,
            ops_per_tx: 4,
            write_ratio: 0.5,
            hot_ratio: 0.0,
            hot_objects: 0,
            abort_ratio: 0.02,
            seed,
        }
    }

    /// High contention: most steps hit a four-object hot set, so commit
    /// validation conflicts (and retries) dominate.
    pub fn high_contention(threads: usize, txs_per_thread: usize, seed: u64) -> Self {
        StressConfig {
            object_count: 64,
            threads,
            txs_per_thread,
            ops_per_tx: 4,
            write_ratio: 0.5,
            hot_ratio: 0.8,
            hot_objects: 4,
            abort_ratio: 0.02,
            seed,
        }
    }
}

/// Which protocol back-end [`stress`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StressEngine {
    /// One global `RwLock<MultiVersionStore>` plus a recorder mutex on
    /// the commit path: the measured baseline.
    SingleLock,
    /// The lock-striped [`ShardedStore`] with thread-local commit
    /// buffers.
    Sharded {
        /// Lock stripes.
        shards: usize,
        /// Installs per shard between GC passes (0 disables GC).
        gc_interval: u64,
    },
}

/// A finished stress run: the validated result plus the measured
/// execution phase.
#[derive(Debug, Clone)]
pub struct StressOutcome {
    /// The recorded run (history, ground-truth execution, counters),
    /// built *after* the timed window.
    pub result: RunResult,
    /// Wall-clock duration of the execution phase (thread spawn to
    /// join); excludes post-run merging and validation.
    pub elapsed: Duration,
    /// Committed transactions per second of the execution phase.
    pub throughput_tps: f64,
    /// Garbage-collection counters (zero for the single-lock baseline,
    /// which never prunes).
    pub gc: GcStats,
}

/// The lock-partitioned shared state of the single-lock baseline.
#[derive(Debug)]
struct SharedSi {
    store: RwLock<MultiVersionStore>,
    /// Highest fully installed commit sequence number. Published with
    /// release ordering after the installs it covers; `begin` reads it
    /// with acquire ordering.
    commit_counter: AtomicU64,
    probe: EngineProbe,
}

/// A thread-owned in-flight transaction: no synchronisation needed until
/// it reaches for shared state.
#[derive(Debug)]
struct InFlight {
    session: usize,
    snapshot: u64,
    writes: BTreeMap<Obj, Value>,
}

/// The protocol surface the workload driver needs; implemented by both
/// back-ends so one `worker` exercises either.
trait StressProtocol: Sync {
    fn begin(&self, session: usize) -> InFlight;
    fn read(&self, tx: &InFlight, obj: Obj) -> Value;
    fn commit(&self, tx: InFlight) -> Result<u64, Obj>;
    fn abort(&self, tx: InFlight);
}

impl SharedSi {
    fn new(object_count: usize, probe: EngineProbe) -> Self {
        SharedSi {
            store: RwLock::new(MultiVersionStore::new(object_count)),
            commit_counter: AtomicU64::new(0),
            probe,
        }
    }
}

impl StressProtocol for SharedSi {
    /// Takes a snapshot: a single atomic load, no lock.
    fn begin(&self, session: usize) -> InFlight {
        let snapshot = self.commit_counter.load(Ordering::Acquire);
        self.probe.emit(|| ProbeEvent::SnapshotPrefix { session, upto: snapshot });
        InFlight { session, snapshot, writes: BTreeMap::new() }
    }

    /// Snapshot read under the *shared* store lock; concurrent readers
    /// never block each other.
    fn read(&self, tx: &InFlight, obj: Obj) -> Value {
        if let Some(&v) = tx.writes.get(&obj) {
            return v;
        }
        let version = self.store.read().read_at(obj, tx.snapshot);
        let session = tx.session;
        self.probe.emit(|| ProbeEvent::VersionObserved { session, obj, seq: version.commit_seq });
        version.value
    }

    /// First-committer-wins validation and install, atomic under the
    /// exclusive store lock. Returns the commit sequence number, or the
    /// first conflicting object.
    fn commit(&self, tx: InFlight) -> Result<u64, Obj> {
        let session = tx.session;
        let mut store = self.store.write();
        for &obj in tx.writes.keys() {
            if store.latest_seq(obj) > tx.snapshot {
                self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
                return Err(obj);
            }
        }
        // The unsynchronised-looking `load + 1 … store` is sound, and
        // deliberately NOT a `fetch_add`:
        //
        // * No lost increments: `commit_counter` is only ever stored
        //   while holding the exclusive store lock (we are inside it),
        //   so commit bodies — load, installs, store — are serialised
        //   and each commit sees the previous one's value. The `Relaxed`
        //   load is ordered by the lock's acquire barrier, which
        //   happens-after the previous holder's release.
        // * `fetch_add` up front would be a real bug, not a cleanup: it
        //   publishes the new sequence number *before* the versions are
        //   installed, so the lock-free `begin` below could take a
        //   snapshot that includes `seq` yet miss its writes entirely.
        let seq = self.commit_counter.load(Ordering::Relaxed) + 1;
        for (&obj, &value) in &tx.writes {
            store.install(obj, value, seq);
            self.probe.emit(|| ProbeEvent::VersionInstalled { session, obj, seq });
        }
        // Publish only after every install, still under the write lock:
        // a lock-free `begin` that observes `seq` must find all of its
        // versions in place.
        self.commit_counter.store(seq, Ordering::Release);
        self.probe.emit(|| ProbeEvent::Committed { session, seq });
        Ok(seq)
    }

    /// Abandons an in-flight transaction; its buffered writes simply
    /// drop.
    fn abort(&self, tx: InFlight) {
        let session = tx.session;
        self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
    }
}

/// The sharded back-end: protocol state is the [`ShardedStore`] itself;
/// commit locking, publication and GC all live in [`crate::shard`].
#[derive(Debug)]
struct ShardedSi {
    store: ShardedStore,
    probe: EngineProbe,
}

impl StressProtocol for ShardedSi {
    fn begin(&self, session: usize) -> InFlight {
        let snapshot = self.store.begin_snapshot(session);
        self.probe.emit(|| ProbeEvent::SnapshotPrefix { session, upto: snapshot });
        InFlight { session, snapshot, writes: BTreeMap::new() }
    }

    fn read(&self, tx: &InFlight, obj: Obj) -> Value {
        if let Some(&v) = tx.writes.get(&obj) {
            return v;
        }
        let version = self.store.read_at(obj, tx.snapshot);
        let session = tx.session;
        self.probe.emit(|| ProbeEvent::VersionObserved { session, obj, seq: version.commit_seq });
        version.value
    }

    fn commit(&self, tx: InFlight) -> Result<u64, Obj> {
        let session = tx.session;
        match self.store.commit(session, tx.snapshot, &tx.writes, &self.probe) {
            Ok(seq) => {
                self.probe.emit(|| ProbeEvent::Committed { session, seq });
                Ok(seq)
            }
            Err(obj) => {
                self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
                Err(obj)
            }
        }
    }

    fn abort(&self, tx: InFlight) {
        self.store.end_snapshot(tx.session);
        let session = tx.session;
        self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
    }
}

/// Where a worker sends its commit records: the baseline locks the
/// global recorder *inside* the hot path (including the eager visible-set
/// materialisation — yesterday's cost model); the sharded path buffers
/// locally.
trait CommitLog {
    fn on_commit(&mut self, session: usize, ops: Vec<Op>, seq: u64, snapshot: u64);
    fn on_abort(&mut self);
}

struct GlobalLog<'a> {
    recorder: &'a Mutex<Recorder>,
}

impl CommitLog for GlobalLog<'_> {
    fn on_commit(&mut self, session: usize, ops: Vec<Op>, seq: u64, snapshot: u64) {
        let mut rec = self.recorder.lock();
        rec.stats.committed += 1;
        rec.stats.ops_executed += ops.len() as u64;
        rec.record(CommittedTx { session, ops, seq, visible: (1..=snapshot).collect() });
    }

    fn on_abort(&mut self) {
        self.recorder.lock().stats.aborted += 1;
    }
}

/// One buffered commit; the visible set is materialised only at merge
/// time, after the run.
struct LocalCommit {
    ops: Vec<Op>,
    seq: u64,
    snapshot: u64,
}

#[derive(Default)]
struct LocalLog {
    commits: Vec<LocalCommit>,
    aborted: u64,
    ops_executed: u64,
}

impl CommitLog for LocalLog {
    fn on_commit(&mut self, _session: usize, ops: Vec<Op>, seq: u64, snapshot: u64) {
        self.ops_executed += ops.len() as u64;
        self.commits.push(LocalCommit { ops, seq, snapshot });
    }

    fn on_abort(&mut self) {
        self.aborted += 1;
    }
}

fn pick_object(rng: &mut StdRng, cfg: &StressConfig) -> Obj {
    let hot = cfg.hot_objects.min(cfg.object_count);
    if hot > 0 && cfg.hot_ratio > 0.0 && rng.gen_bool(cfg.hot_ratio) {
        Obj::from_index(rng.gen_range(0..hot))
    } else {
        Obj::from_index(rng.gen_range(0..cfg.object_count))
    }
}

/// One thread's workload loop: seeded read-modify-write transactions
/// with failure injection; FCW-refused commits are retried until the
/// quota is met.
fn worker<P: StressProtocol, L: CommitLog>(
    shared: &P,
    log: &mut L,
    cfg: &StressConfig,
    thread_id: usize,
) {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (thread_id as u64).wrapping_mul(0x9e37));
    let mut done = 0;
    while done < cfg.txs_per_thread {
        let inject_abort = cfg.abort_ratio > 0.0 && rng.gen_bool(cfg.abort_ratio);
        let mut tx = shared.begin(thread_id);
        let mut ops = Vec::with_capacity(cfg.ops_per_tx * 2);
        for _ in 0..cfg.ops_per_tx {
            let obj = pick_object(&mut rng, cfg);
            let read = shared.read(&tx, obj);
            ops.push(Op::Read(obj, read));
            if cfg.write_ratio > 0.0 && rng.gen_bool(cfg.write_ratio) {
                let written = Value(read.0 + 1);
                tx.writes.insert(obj, written);
                ops.push(Op::Write(obj, written));
            }
        }
        if inject_abort {
            shared.abort(tx);
            continue; // does not count towards `done`
        }
        let snapshot = tx.snapshot;
        match shared.commit(tx) {
            Ok(seq) => {
                log.on_commit(thread_id, ops, seq, snapshot);
                done += 1;
            }
            Err(_) => log.on_abort(),
        }
    }
}

fn outcome(result: RunResult, elapsed: Duration, gc: GcStats) -> StressOutcome {
    let secs = elapsed.as_secs_f64();
    let throughput_tps =
        if secs > 0.0 { result.stats.committed as f64 / secs } else { f64::INFINITY };
    StressOutcome { result, elapsed, throughput_tps, gc }
}

/// Runs the configured workload against the chosen back-end and returns
/// the validated result plus execution-phase timing. See [`StressConfig`]
/// and [`StressEngine`].
///
/// # Panics
///
/// Panics if the config is degenerate (zero objects, threads, quota or
/// steps) or a worker thread panics.
pub fn stress(config: &StressConfig, engine: StressEngine) -> StressOutcome {
    stress_probed(config, engine, EngineProbe::disabled())
}

/// [`stress`] with a probe attached: every snapshot, version
/// observation, shard-lock acquisition, install, GC prune, commit, and
/// discarded attempt is reported to the sink. Events from different
/// threads are linearised by the sink, not by a global protocol lock, so
/// consume them with order-insensitive analyses (counting, per-session
/// projections) — the deterministic sanitizer is the tool for
/// order-sensitive auditing.
pub fn stress_probed(
    config: &StressConfig,
    engine: StressEngine,
    probe: EngineProbe,
) -> StressOutcome {
    assert!(config.object_count > 0, "need at least one object");
    assert!(config.threads > 0, "need at least one thread");
    assert!(config.txs_per_thread > 0, "need a per-thread commit quota");
    assert!(config.ops_per_tx > 0, "transactions need at least one step");
    let initial_values = vec![Value::INITIAL; config.object_count];

    match engine {
        StressEngine::SingleLock => {
            let shared = SharedSi::new(config.object_count, probe);
            let recorder = Mutex::new(Recorder::new());
            let start = Instant::now();
            crossbeam::scope(|scope| {
                for thread_id in 0..config.threads {
                    let shared = &shared;
                    let recorder = &recorder;
                    scope.spawn(move |_| {
                        let mut log = GlobalLog { recorder };
                        worker(shared, &mut log, config, thread_id);
                    });
                }
            })
            .expect("stress thread panicked");
            let elapsed = start.elapsed();
            let result = recorder.into_inner().finish(&initial_values, config.threads);
            outcome(result, elapsed, GcStats::default())
        }
        StressEngine::Sharded { shards, gc_interval } => {
            let store = ShardedStore::new(
                config.object_count,
                ShardedStoreConfig { shards, gc_interval, sessions: config.threads },
            );
            let shared = ShardedSi { store, probe };
            let logs: Mutex<Vec<(usize, LocalLog)>> = Mutex::new(Vec::new());
            let start = Instant::now();
            crossbeam::scope(|scope| {
                for thread_id in 0..config.threads {
                    let shared = &shared;
                    let logs = &logs;
                    scope.spawn(move |_| {
                        let mut log = LocalLog::default();
                        worker(shared, &mut log, config, thread_id);
                        // One push per thread lifetime, not per commit.
                        logs.lock().push((thread_id, log));
                    });
                }
            })
            .expect("stress thread panicked");
            let elapsed = start.elapsed();

            // Post-run merge: visible sets are materialised here, and
            // Recorder::record re-asserts per-session monotonicity while
            // replaying each thread's buffer in order.
            let mut logs = logs.into_inner();
            logs.sort_by_key(|&(thread_id, _)| thread_id);
            let mut recorder = Recorder::new();
            for (thread_id, log) in logs {
                recorder.stats.aborted += log.aborted;
                recorder.stats.ops_executed += log.ops_executed;
                for c in log.commits {
                    recorder.stats.committed += 1;
                    recorder.record(CommittedTx {
                        session: thread_id,
                        ops: c.ops,
                        seq: c.seq,
                        visible: (1..=c.snapshot).collect(),
                    });
                }
            }
            let result = recorder.finish(&initial_values, config.threads);
            outcome(result, elapsed, shared.store.gc_stats())
        }
    }
}

/// Runs `threads` OS threads against the single-lock baseline, each
/// performing `txs_per_thread` read-modify-write transactions on random
/// objects (each thread is one session). A fraction of transactions is
/// deliberately abandoned mid-flight (failure injection); aborted commits
/// are retried indefinitely.
///
/// Returns the recorded run, validated by the caller (tests assert the
/// result is a legal SI execution). For configurable thread counts,
/// contention and back-ends, use [`stress`].
///
/// # Panics
///
/// Panics if `object_count` is zero or a thread panics.
pub fn stress_si_engine(
    object_count: usize,
    threads: usize,
    txs_per_thread: usize,
    seed: u64,
) -> RunResult {
    stress_si_engine_probed(object_count, threads, txs_per_thread, seed, EngineProbe::disabled())
}

/// [`stress_si_engine`] with a probe attached; see [`stress_probed`] for
/// the trace's ordering caveats.
pub fn stress_si_engine_probed(
    object_count: usize,
    threads: usize,
    txs_per_thread: usize,
    seed: u64,
    probe: EngineProbe,
) -> RunResult {
    let config = StressConfig {
        object_count,
        threads,
        txs_per_thread,
        ops_per_tx: 1,
        write_ratio: 1.0,
        hot_ratio: 0.0,
        hot_objects: 0,
        abort_ratio: 0.1,
        seed,
    };
    stress_probed(&config, StressEngine::SingleLock, probe).result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::VecProbe;
    use si_execution::SpecModel;
    use std::sync::Arc;

    #[test]
    fn concurrent_run_is_a_legal_si_execution() {
        let result = stress_si_engine(4, 4, 25, 0xC0FFEE);
        assert_eq!(result.stats.committed, 100);
        assert!(SpecModel::Si.check(&result.execution).is_ok());
    }

    #[test]
    fn counters_never_lose_updates() {
        // Every committed increment must be reflected: the sum of final
        // object values equals the number of committed transactions.
        let result = stress_si_engine(2, 3, 20, 7);
        let history = &result.history;
        let n = history.tx_count();
        let mut finals = [Value::INITIAL; 2];
        // Replay the version order: the last committed write per object.
        for i in 1..n {
            let t = history.transaction(si_relations::TxId::from_index(i));
            for op in t.ops() {
                if op.is_write() {
                    finals[op.obj().index()] = op.value();
                }
            }
        }
        let total: u64 = finals.iter().map(|v| v.0).sum();
        assert_eq!(total, result.stats.committed);
    }

    #[test]
    fn probed_run_reports_every_commit() {
        let sink = Arc::new(VecProbe::new());
        let probe = EngineProbe::new(sink.clone());
        let result = stress_si_engine_probed(2, 2, 10, 42, probe);
        let events = sink.drain();
        let commits =
            events.iter().filter(|e| matches!(e, ProbeEvent::Committed { .. })).count() as u64;
        assert_eq!(commits, result.stats.committed);
        // Installs are published before the commit counter: every
        // Committed { seq } is preceded in the log by its installs.
        for (i, e) in events.iter().enumerate() {
            if let ProbeEvent::Committed { seq, .. } = e {
                let installed = events[..i]
                    .iter()
                    .any(|p| matches!(p, ProbeEvent::VersionInstalled { seq: s, .. } if s == seq));
                assert!(installed, "commit {seq} published before its installs");
            }
        }
    }

    #[test]
    fn commit_sequence_is_dense_and_duplicate_free() {
        // Regression for the commit-counter publication protocol: the
        // `load(Relaxed) + 1 … store(Release)` pair in `SharedSi::commit`
        // relies on the exclusive store lock for mutual exclusion. If
        // that coupling ever broke (an unlocked fast path, or a
        // `fetch_add` moved before the installs), concurrent committers
        // would mint duplicate or gapped sequence numbers, or publish a
        // sequence number whose versions are not yet installed.
        let sink = Arc::new(VecProbe::new());
        let probe = EngineProbe::new(sink.clone());
        let result = stress_si_engine_probed(4, 8, 50, 0x5EC5, probe);
        let events = sink.drain();
        let mut seqs: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                ProbeEvent::Committed { seq, .. } => Some(*seq),
                _ => None,
            })
            .collect();
        seqs.sort_unstable();
        let expected: Vec<u64> = (1..=result.stats.committed).collect();
        assert_eq!(seqs, expected, "commit sequence numbers must be exactly 1..=committed");
        // Every installed version belongs to a committed transaction —
        // no version was minted under a sequence number that never
        // published.
        for e in &events {
            if let ProbeEvent::VersionInstalled { seq, .. } = e {
                assert!(*seq >= 1 && *seq <= result.stats.committed, "orphaned install {seq}");
            }
        }
    }

    #[test]
    fn sharded_stress_run_is_a_legal_si_execution() {
        let config = StressConfig {
            object_count: 8,
            threads: 4,
            txs_per_thread: 25,
            ops_per_tx: 2,
            write_ratio: 0.7,
            hot_ratio: 0.5,
            hot_objects: 2,
            abort_ratio: 0.05,
            seed: 0xBEEF,
        };
        let out = stress(&config, StressEngine::Sharded { shards: 4, gc_interval: 8 });
        assert_eq!(out.result.stats.committed, 100);
        assert!(SpecModel::Si.check(&out.result.execution).is_ok());
    }

    #[test]
    fn sharded_counters_never_lose_updates() {
        // Single-step increment transactions on a sharded store: the sum
        // of final values must equal the committed count, i.e. FCW held
        // across shards and threads.
        let config = StressConfig {
            object_count: 4,
            threads: 4,
            txs_per_thread: 25,
            ops_per_tx: 1,
            write_ratio: 1.0,
            hot_ratio: 0.0,
            hot_objects: 0,
            abort_ratio: 0.1,
            seed: 99,
        };
        let out = stress(&config, StressEngine::Sharded { shards: 2, gc_interval: 16 });
        let history = &out.result.history;
        let mut finals = [Value::INITIAL; 4];
        for i in 1..history.tx_count() {
            let t = history.transaction(si_relations::TxId::from_index(i));
            for op in t.ops() {
                if op.is_write() {
                    finals[op.obj().index()] = op.value();
                }
            }
        }
        let total: u64 = finals.iter().map(|v| v.0).sum();
        assert_eq!(total, out.result.stats.committed);
    }

    #[test]
    fn sharded_stress_exercises_gc() {
        let config = StressConfig {
            object_count: 4,
            threads: 2,
            txs_per_thread: 50,
            ops_per_tx: 1,
            write_ratio: 1.0,
            hot_ratio: 0.0,
            hot_objects: 0,
            abort_ratio: 0.0,
            seed: 1,
        };
        let out = stress(&config, StressEngine::Sharded { shards: 2, gc_interval: 4 });
        assert!(out.gc.passes > 0, "GC never fired under stress");
        assert!(SpecModel::Si.check(&out.result.execution).is_ok());
    }

    #[test]
    fn both_backends_meet_the_same_quota() {
        let config = StressConfig::high_contention(3, 15, 0xD0_0D);
        let single = stress(&config, StressEngine::SingleLock);
        let sharded = stress(&config, StressEngine::Sharded { shards: 4, gc_interval: 32 });
        assert_eq!(single.result.stats.committed, 45);
        assert_eq!(sharded.result.stats.committed, 45);
        assert!(SpecModel::Si.check(&single.result.execution).is_ok());
        assert!(SpecModel::Si.check(&sharded.result.execution).is_ok());
    }
}
