//! A small deterministic transaction-script language for workloads.

use si_model::{Obj, Value};

/// One step of a [`Script`].
///
/// Reads append their result to the script's *register file* in order;
/// later steps refer to registers by index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptOp {
    /// Read an object into the next register.
    Read(Obj),
    /// Write a constant.
    WriteConst(Obj, u64),
    /// Write `sum(registers) + delta` (saturating at zero).
    WriteComputed {
        /// The object to write.
        obj: Obj,
        /// Registers (read results) to sum.
        regs: Vec<usize>,
        /// Signed adjustment.
        delta: i64,
    },
    /// Commit early (skipping the remaining steps) if the sum of the
    /// registers is below the threshold — the guard of write-skew-style
    /// "withdraw only if the combined balance suffices" transactions.
    EndIfSumBelow {
        /// Registers to sum.
        regs: Vec<usize>,
        /// The guard threshold.
        threshold: u64,
    },
}

/// A deterministic transaction script: the code a client session submits
/// as one transaction. Aborted scripts are resubmitted from the start by
/// the scheduler (the paper's §5 client assumption).
///
/// # Example: a guarded withdrawal (the Figure 2(d) program)
///
/// ```
/// use si_mvcc::Script;
/// use si_model::Obj;
///
/// let (acct1, acct2) = (Obj(0), Obj(1));
/// let withdraw = Script::new()
///     .read(acct1)
///     .read(acct2)
///     .end_if_sum_below([0, 1], 100) // both balances checked
///     .write_computed(acct1, [0], -100); // acct1 -= 100
/// assert_eq!(withdraw.ops().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Script {
    ops: Vec<ScriptOp>,
}

impl Script {
    /// An empty script; chain builder methods to populate it.
    pub fn new() -> Self {
        Script::default()
    }

    /// Appends a read.
    #[must_use]
    pub fn read(mut self, obj: Obj) -> Self {
        self.ops.push(ScriptOp::Read(obj));
        self
    }

    /// Appends a constant write.
    #[must_use]
    pub fn write_const(mut self, obj: Obj, value: u64) -> Self {
        self.ops.push(ScriptOp::WriteConst(obj, value));
        self
    }

    /// Appends a computed write: `sum(regs) + delta`, saturating at zero.
    #[must_use]
    pub fn write_computed<R: IntoIterator<Item = usize>>(
        mut self,
        obj: Obj,
        regs: R,
        delta: i64,
    ) -> Self {
        self.ops.push(ScriptOp::WriteComputed { obj, regs: regs.into_iter().collect(), delta });
        self
    }

    /// Appends an early-commit guard.
    #[must_use]
    pub fn end_if_sum_below<R: IntoIterator<Item = usize>>(
        mut self,
        regs: R,
        threshold: u64,
    ) -> Self {
        self.ops.push(ScriptOp::EndIfSumBelow { regs: regs.into_iter().collect(), threshold });
        self
    }

    /// The script's steps.
    pub fn ops(&self) -> &[ScriptOp] {
        &self.ops
    }

    /// Every object the script can read (guards count as reads of the
    /// registers' source objects, which are already in the read set).
    pub fn read_set(&self) -> Vec<Obj> {
        let mut out = Vec::new();
        for op in &self.ops {
            if let ScriptOp::Read(x) = op {
                if !out.contains(x) {
                    out.push(*x);
                }
            }
        }
        out
    }

    /// Every object the script can write.
    pub fn write_set(&self) -> Vec<Obj> {
        let mut out = Vec::new();
        for op in &self.ops {
            let x = match op {
                ScriptOp::WriteConst(x, _) | ScriptOp::WriteComputed { obj: x, .. } => *x,
                _ => continue,
            };
            if !out.contains(&x) {
                out.push(x);
            }
        }
        out
    }

    /// Whether the script has no steps.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Evaluates a computed value against a register file.
    ///
    /// # Panics
    ///
    /// Panics if a register index is out of range.
    pub(crate) fn compute(regs: &[usize], delta: i64, registers: &[Value]) -> Value {
        let sum: u64 = regs.iter().map(|&r| registers[r].0).sum();
        let adjusted = if delta >= 0 {
            sum.saturating_add(delta as u64)
        } else {
            sum.saturating_sub(delta.unsigned_abs())
        };
        Value(adjusted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let x = Obj(0);
        let s = Script::new().read(x).write_computed(x, [0], 5);
        assert_eq!(s.ops().len(), 2);
        assert!(!s.is_empty());
        assert!(matches!(s.ops()[0], ScriptOp::Read(_)));
    }

    #[test]
    fn read_write_sets() {
        let (x, y) = (Obj(0), Obj(1));
        let s = Script::new()
            .read(x)
            .read(y)
            .end_if_sum_below([0, 1], 10)
            .write_computed(x, [0], -5)
            .write_const(y, 0)
            .write_const(y, 1);
        assert_eq!(s.read_set(), vec![x, y]);
        assert_eq!(s.write_set(), vec![x, y]);
        let read_only = Script::new().read(x).read(x);
        assert_eq!(read_only.read_set(), vec![x]);
        assert!(read_only.write_set().is_empty());
    }

    #[test]
    fn compute_saturates() {
        let regs = [Value(10), Value(20)];
        assert_eq!(Script::compute(&[0, 1], 5, &regs), Value(35));
        assert_eq!(Script::compute(&[0], -50, &regs), Value(0));
        assert_eq!(Script::compute(&[], 7, &regs), Value(7));
    }
}
