//! The parallel-SI engine: per-replica causal snapshots with explicit
//! replication (after Walter, reference [31] of the paper).

use std::collections::{BTreeMap, BTreeSet};

use si_model::{Obj, Value};
use si_telemetry::{AbortCause, Event, Telemetry};

use crate::engine::{AbortReason, CommitInfo, Engine, TxToken};
use crate::probe::{EngineProbe, ProbeEvent};
use crate::store::MultiVersionStore;

#[derive(Debug)]
struct ActiveTx {
    session: usize,
    snapshot: BTreeSet<u64>,
    writes: BTreeMap<Obj, Value>,
    finished: bool,
}

#[derive(Debug, Clone)]
struct CommittedMeta {
    visible: BTreeSet<u64>,
    origin: usize,
}

/// Parallel snapshot isolation: the store is logically replicated;
/// sessions are pinned to replicas (round-robin) and take *causally
/// closed* snapshots of whatever their replica has applied, rather than a
/// prefix of the global commit order.
///
/// * `begin` snapshots the session's replica state — an arbitrary
///   causally-closed set of transactions, not necessarily a commit-order
///   prefix. This realises TRANSVIS without PREFIX (Definition 20).
/// * `commit` still enforces global first-committer-wins per object, but
///   stronger: every *existing* committed writer of an object this
///   transaction wrote must be in its snapshot (NOCONFLICT). The commit
///   applies immediately to the origin replica only.
/// * [`Engine::background_step`] replicates one committed transaction to
///   one replica, respecting causal order. **Replication lag is what
///   makes long forks reachable**: two replicas can observe two
///   independent writes in opposite orders until replication catches up.
#[derive(Debug)]
pub struct PsiEngine {
    store: MultiVersionStore,
    commit_counter: u64,
    active: Vec<ActiveTx>,
    replicas: Vec<BTreeSet<u64>>,
    committed: Vec<CommittedMeta>,
    telemetry: Telemetry,
    probe: EngineProbe,
}

impl PsiEngine {
    /// Creates an engine over `object_count` objects with
    /// `replica_count ≥ 1` replicas.
    ///
    /// # Panics
    ///
    /// Panics if `replica_count` is zero.
    pub fn new(object_count: usize, replica_count: usize) -> Self {
        assert!(replica_count >= 1, "need at least one replica");
        PsiEngine {
            store: MultiVersionStore::new(object_count),
            commit_counter: 0,
            active: Vec::new(),
            replicas: vec![BTreeSet::new(); replica_count],
            committed: Vec::new(),
            telemetry: Telemetry::disabled(),
            probe: EngineProbe::disabled(),
        }
    }

    /// The replica a session is pinned to.
    pub fn replica_of(&self, session: usize) -> usize {
        session % self.replicas.len()
    }

    /// Applies every outstanding commit to every replica.
    pub fn replicate_all(&mut self) {
        while self.background_step() {}
    }

    /// Whether every replica has applied every commit.
    pub fn fully_replicated(&self) -> bool {
        self.replicas.iter().all(|r| r.len() as u64 == self.commit_counter)
    }

    /// Read-only access to the underlying store (for assertions and
    /// examples).
    pub fn store(&self) -> &MultiVersionStore {
        &self.store
    }

    fn tx(&mut self, token: TxToken) -> &mut ActiveTx {
        let tx = &mut self.active[token.0];
        assert!(!tx.finished, "transaction already committed or aborted");
        tx
    }
}

impl Engine for PsiEngine {
    fn object_count(&self) -> usize {
        self.store.object_count()
    }

    fn set_initial(&mut self, obj: Obj, value: Value) {
        self.store.set_initial(obj, value);
    }

    fn initial(&self, obj: Obj) -> Value {
        self.store.initial(obj)
    }

    fn begin(&mut self, session: usize) -> TxToken {
        let replica = self.replica_of(session);
        self.telemetry.emit(|| Event::TxBegin { session });
        self.probe.emit(|| ProbeEvent::SnapshotSet {
            session,
            visible: self.replicas[replica].iter().copied().collect(),
        });
        self.active.push(ActiveTx {
            session,
            snapshot: self.replicas[replica].clone(),
            writes: BTreeMap::new(),
            finished: false,
        });
        TxToken(self.active.len() - 1)
    }

    fn read(&mut self, tx: TxToken, obj: Obj) -> Value {
        let t = &self.active[tx.0];
        assert!(!t.finished, "transaction already committed or aborted");
        if let Some(&v) = t.writes.get(&obj) {
            return v;
        }
        let session = t.session;
        let snapshot = &t.snapshot;
        let version = self.store.read_visible(obj, |seq| snapshot.contains(&seq));
        self.probe.emit(|| ProbeEvent::VersionObserved { session, obj, seq: version.commit_seq });
        version.value
    }

    fn write(&mut self, tx: TxToken, obj: Obj, value: Value) {
        self.tx(tx).writes.insert(obj, value);
    }

    fn commit(&mut self, tx: TxToken) -> Result<CommitInfo, AbortReason> {
        let (session, snapshot, writes) = {
            let t = self.tx(tx);
            (t.session, t.snapshot.clone(), t.writes.clone())
        };
        // NOCONFLICT: every committed writer of every object we wrote must
        // already be visible to us.
        for &obj in writes.keys() {
            for version in self.store.versions(obj) {
                if version.commit_seq != 0 && !snapshot.contains(&version.commit_seq) {
                    self.active[tx.0].finished = true;
                    self.telemetry.emit(|| Event::TxAbort {
                        session,
                        cause: AbortCause::WwConflict,
                        obj: Some(obj.0),
                    });
                    self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
                    return Err(AbortReason::WriteConflict(obj));
                }
            }
        }
        self.commit_counter += 1;
        let seq = self.commit_counter;
        for (&obj, &value) in &writes {
            self.store.install(obj, value, seq);
            self.probe.emit(|| ProbeEvent::VersionInstalled { session, obj, seq });
        }
        let origin = self.replica_of(session);
        self.committed.push(CommittedMeta { visible: snapshot.clone(), origin });
        // Apply to the origin replica immediately (sessions read their own
        // writes; SESSION axiom).
        self.replicas[origin].insert(seq);
        self.active[tx.0].finished = true;
        self.telemetry.emit(|| Event::TxCommit { session, seq, ops: writes.len() });
        self.probe.emit(|| ProbeEvent::Committed { session, seq });
        Ok(CommitInfo { seq, visible: snapshot.into_iter().collect() })
    }

    fn abort(&mut self, tx: TxToken) {
        let t = self.tx(tx);
        t.finished = true;
        let session = t.session;
        self.telemetry.emit(|| Event::TxAbort { session, cause: AbortCause::Explicit, obj: None });
        self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
    }

    fn name(&self) -> &'static str {
        "PSI"
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn set_probe(&mut self, probe: EngineProbe) {
        self.probe = probe;
    }

    /// Whether any committed transaction still awaits replication to some
    /// replica (i.e. whether [`Engine::background_step`] would do work).
    fn background_pending(&self) -> bool {
        !self.fully_replicated()
    }

    /// Replicates the oldest applicable commit to the first replica
    /// missing it, respecting causality (a transaction is applied only
    /// after everything visible to it).
    fn background_step(&mut self) -> bool {
        for seq in 1..=self.commit_counter {
            let meta = &self.committed[(seq - 1) as usize];
            for (ri, replica) in self.replicas.iter().enumerate() {
                if ri != meta.origin
                    && !replica.contains(&seq)
                    && meta.visible.iter().all(|v| replica.contains(v))
                {
                    self.replicas[ri].insert(seq);
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_fork_is_reachable() {
        // Sessions 0 and 1 on replica 0 and 1 (2 replicas).
        let mut e = PsiEngine::new(2, 2);
        let (x, y) = (Obj(0), Obj(1));

        // Writers commit independently on their replicas.
        let t1 = e.begin(0); // replica 0
        e.write(t1, x, Value(1));
        e.commit(t1).unwrap();
        let t2 = e.begin(1); // replica 1
        e.write(t2, y, Value(1));
        e.commit(t2).unwrap();

        // No replication yet: reader on replica 0 sees x but not y;
        // reader on replica 1 sees y but not x — the long fork.
        let r1 = e.begin(2); // session 2 -> replica 0
        assert_eq!(e.read(r1, x), Value(1));
        assert_eq!(e.read(r1, y), Value(0));
        e.commit(r1).unwrap();
        let r2 = e.begin(3); // session 3 -> replica 1
        assert_eq!(e.read(r2, x), Value(0));
        assert_eq!(e.read(r2, y), Value(1));
        e.commit(r2).unwrap();
    }

    #[test]
    fn replication_heals_the_fork() {
        let mut e = PsiEngine::new(2, 2);
        let (x, y) = (Obj(0), Obj(1));
        let t1 = e.begin(0);
        e.write(t1, x, Value(1));
        e.commit(t1).unwrap();
        let t2 = e.begin(1);
        e.write(t2, y, Value(1));
        e.commit(t2).unwrap();
        e.replicate_all();
        assert!(e.fully_replicated());
        let r = e.begin(3); // replica 1
        assert_eq!(e.read(r, x), Value(1));
        assert_eq!(e.read(r, y), Value(1));
    }

    #[test]
    fn conflicting_writes_across_replicas_abort() {
        let mut e = PsiEngine::new(1, 2);
        let x = Obj(0);
        let t1 = e.begin(0); // replica 0
        let t2 = e.begin(1); // replica 1
        e.write(t1, x, Value(1));
        e.write(t2, x, Value(2));
        assert!(e.commit(t1).is_ok());
        // t2 does not see t1's write: NOCONFLICT refuses the commit.
        assert_eq!(e.commit(t2), Err(AbortReason::WriteConflict(x)));
    }

    #[test]
    fn causal_order_of_replication() {
        let mut e = PsiEngine::new(2, 2);
        let (x, y) = (Obj(0), Obj(1));
        // Session 0 (replica 0): write x, then (seeing x) write y.
        let t1 = e.begin(0);
        e.write(t1, x, Value(1));
        e.commit(t1).unwrap();
        let t2 = e.begin(0);
        assert_eq!(e.read(t2, x), Value(1));
        e.write(t2, y, Value(2));
        e.commit(t2).unwrap();
        // One replication step must deliver t1 before t2 (causality).
        assert!(e.background_step());
        let r = e.begin(1); // replica 1
        let saw_y = e.read(r, y);
        let saw_x = e.read(r, x);
        assert_eq!(saw_x, Value(1), "t1 replicates first");
        assert_eq!(saw_y, Value(0), "t2 cannot arrive before t1");
    }

    #[test]
    fn session_reads_its_own_commits() {
        let mut e = PsiEngine::new(1, 3);
        let x = Obj(0);
        let t1 = e.begin(5);
        e.write(t1, x, Value(4));
        e.commit(t1).unwrap();
        let t2 = e.begin(5);
        assert_eq!(e.read(t2, x), Value(4));
    }

    #[test]
    fn commit_info_visible_is_snapshot() {
        let mut e = PsiEngine::new(1, 2);
        let x = Obj(0);
        let t1 = e.begin(0);
        e.write(t1, x, Value(1));
        assert_eq!(e.commit(t1).unwrap().visible, Vec::<u64>::new());
        let t2 = e.begin(0);
        e.write(t2, x, Value(2));
        assert_eq!(e.commit(t2).unwrap().visible, vec![1]);
    }

    #[test]
    fn single_replica_degenerates_to_si_like() {
        let mut e = PsiEngine::new(2, 1);
        let (x, y) = (Obj(0), Obj(1));
        let t1 = e.begin(0);
        e.write(t1, x, Value(1));
        e.commit(t1).unwrap();
        let t2 = e.begin(7); // any session, same replica
        assert_eq!(e.read(t2, x), Value(1));
        assert_eq!(e.read(t2, y), Value(0));
    }
}
