//! The serializable baseline: optimistic concurrency control validating
//! read *and* write sets.

use std::collections::{BTreeMap, BTreeSet};

use si_model::{Obj, Value};
use si_telemetry::{AbortCause, Event, Telemetry};

use crate::engine::{AbortReason, CommitInfo, Engine, TxToken};
use crate::probe::{EngineProbe, ProbeEvent};
use crate::store::MultiVersionStore;

#[derive(Debug)]
struct ActiveTx {
    session: usize,
    snapshot: u64,
    reads: BTreeSet<Obj>,
    writes: BTreeMap<Obj, Value>,
    finished: bool,
}

/// A serializable engine: snapshot reads plus backward OCC validation of
/// the full read and write sets at commit.
///
/// A transaction commits only if *no* object it read or wrote has a
/// committed version newer than its snapshot. Every committed transaction
/// therefore logically executes atomically at its commit point, and the
/// commit order is a valid serialisation — the engine realises the
/// paper's `ExecSER` axioms with `VIS = CO =` commit order (tested via the
/// recorder).
#[derive(Debug)]
pub struct SerEngine {
    store: MultiVersionStore,
    commit_counter: u64,
    active: Vec<ActiveTx>,
    telemetry: Telemetry,
    probe: EngineProbe,
}

impl SerEngine {
    /// Creates an engine over `object_count` objects initialised to 0.
    pub fn new(object_count: usize) -> Self {
        SerEngine {
            store: MultiVersionStore::new(object_count),
            commit_counter: 0,
            active: Vec::new(),
            telemetry: Telemetry::disabled(),
            probe: EngineProbe::disabled(),
        }
    }

    /// Read-only access to the underlying store (for assertions and
    /// examples).
    pub fn store(&self) -> &MultiVersionStore {
        &self.store
    }

    fn tx(&mut self, token: TxToken) -> &mut ActiveTx {
        let tx = &mut self.active[token.0];
        assert!(!tx.finished, "transaction already committed or aborted");
        tx
    }
}

impl Engine for SerEngine {
    fn object_count(&self) -> usize {
        self.store.object_count()
    }

    fn set_initial(&mut self, obj: Obj, value: Value) {
        self.store.set_initial(obj, value);
    }

    fn initial(&self, obj: Obj) -> Value {
        self.store.initial(obj)
    }

    fn begin(&mut self, session: usize) -> TxToken {
        self.telemetry.emit(|| Event::TxBegin { session });
        self.probe.emit(|| ProbeEvent::SnapshotPrefix { session, upto: self.commit_counter });
        self.active.push(ActiveTx {
            session,
            snapshot: self.commit_counter,
            reads: BTreeSet::new(),
            writes: BTreeMap::new(),
            finished: false,
        });
        TxToken(self.active.len() - 1)
    }

    fn read(&mut self, tx: TxToken, obj: Obj) -> Value {
        let (session, snapshot) = {
            let t = self.tx(tx);
            if let Some(&v) = t.writes.get(&obj) {
                return v;
            }
            t.reads.insert(obj);
            (t.session, t.snapshot)
        };
        let version = self.store.read_at(obj, snapshot);
        self.probe.emit(|| ProbeEvent::VersionObserved { session, obj, seq: version.commit_seq });
        version.value
    }

    fn write(&mut self, tx: TxToken, obj: Obj, value: Value) {
        self.tx(tx).writes.insert(obj, value);
    }

    fn commit(&mut self, tx: TxToken) -> Result<CommitInfo, AbortReason> {
        let (session, snapshot, reads, writes) = {
            let t = self.tx(tx);
            (t.session, t.snapshot, t.reads.clone(), t.writes.clone())
        };
        for &obj in &reads {
            if self.store.latest_seq(obj) > snapshot {
                self.active[tx.0].finished = true;
                self.telemetry.emit(|| Event::TxAbort {
                    session,
                    cause: AbortCause::RwConflict,
                    obj: Some(obj.0),
                });
                self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
                return Err(AbortReason::ReadConflict(obj));
            }
        }
        for &obj in writes.keys() {
            if self.store.latest_seq(obj) > snapshot {
                self.active[tx.0].finished = true;
                self.telemetry.emit(|| Event::TxAbort {
                    session,
                    cause: AbortCause::WwConflict,
                    obj: Some(obj.0),
                });
                self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
                return Err(AbortReason::WriteConflict(obj));
            }
        }
        self.commit_counter += 1;
        let seq = self.commit_counter;
        for (&obj, &value) in &writes {
            self.store.install(obj, value, seq);
            self.probe.emit(|| ProbeEvent::VersionInstalled { session, obj, seq });
        }
        self.active[tx.0].finished = true;
        self.telemetry.emit(|| Event::TxCommit { session, seq, ops: writes.len() });
        self.probe.emit(|| ProbeEvent::Committed { session, seq });
        // With full validation, everything that committed before us is
        // indistinguishable from having been in our snapshot: report the
        // whole prefix so the recorded execution satisfies TOTALVIS.
        Ok(CommitInfo { seq, visible: (1..seq).collect() })
    }

    fn abort(&mut self, tx: TxToken) {
        let t = self.tx(tx);
        t.finished = true;
        let session = t.session;
        self.telemetry.emit(|| Event::TxAbort { session, cause: AbortCause::Explicit, obj: None });
        self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
    }

    fn name(&self) -> &'static str {
        "SER"
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn set_probe(&mut self, probe: EngineProbe) {
        self.probe = probe;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_skew_is_refused() {
        let mut e = SerEngine::new(2);
        let (x, y) = (Obj(0), Obj(1));
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        e.read(t1, x);
        e.read(t1, y);
        e.read(t2, x);
        e.read(t2, y);
        e.write(t1, x, Value(1));
        e.write(t2, y, Value(1));
        assert!(e.commit(t1).is_ok());
        // t2 read x, which t1 overwrote after t2's snapshot.
        assert_eq!(e.commit(t2), Err(AbortReason::ReadConflict(x)));
    }

    #[test]
    fn non_conflicting_transactions_commit() {
        let mut e = SerEngine::new(2);
        let (x, y) = (Obj(0), Obj(1));
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        e.write(t1, x, Value(1));
        e.write(t2, y, Value(2));
        assert!(e.commit(t1).is_ok());
        assert!(e.commit(t2).is_ok()); // blind disjoint writes serialize fine
    }

    #[test]
    fn write_conflicts_still_detected() {
        let mut e = SerEngine::new(1);
        let x = Obj(0);
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        e.write(t1, x, Value(1));
        e.write(t2, x, Value(2));
        assert!(e.commit(t1).is_ok());
        assert_eq!(e.commit(t2), Err(AbortReason::WriteConflict(x)));
    }

    #[test]
    fn visible_is_full_prefix() {
        let mut e = SerEngine::new(1);
        let t1 = e.begin(0);
        e.write(t1, Obj(0), Value(1));
        e.commit(t1).unwrap();
        let t2 = e.begin(1);
        e.write(t2, Obj(0), Value(2));
        let info = e.commit(t2).unwrap();
        assert_eq!(info.visible, vec![1]);
    }

    #[test]
    fn own_write_then_read_does_not_taint_read_set() {
        let mut e = SerEngine::new(1);
        let x = Obj(0);
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        e.write(t2, x, Value(7));
        assert_eq!(e.read(t2, x), Value(7)); // own write, not a snapshot read
        e.write(t1, x, Value(1));
        e.commit(t1).unwrap();
        // t2 still write-conflicts, but not via the read set.
        assert_eq!(e.commit(t2), Err(AbortReason::WriteConflict(x)));
    }
}
