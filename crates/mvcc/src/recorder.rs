//! Turning engine runs into histories and abstract executions.

use serde::Serialize;
use si_execution::AbstractExecution;
use si_model::{History, Obj, Op, Transaction, Value};
use si_relations::{Relation, TxId};
use si_telemetry::MetricsReport;

/// A committed transaction as observed by the scheduler: the operations
/// it performed (with the values actually read) plus the engine's ground
/// truth.
#[derive(Debug, Clone)]
pub struct CommittedTx {
    /// The client session that ran it.
    pub session: usize,
    /// The operations in program order, with read results filled in.
    pub ops: Vec<Op>,
    /// Commit sequence number (1-based).
    pub seq: u64,
    /// Commit sequence numbers visible to its snapshot.
    pub visible: Vec<u64>,
}

/// Aggregate counters of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RunStats {
    /// Transactions that committed.
    pub committed: u64,
    /// Commit attempts refused by conflict detection (each followed by a
    /// retry, up to the scheduler's limit).
    pub aborted: u64,
    /// The subset of `aborted` refused by write-write conflict detection
    /// (first-committer-wins / NOCONFLICT).
    pub aborted_ww: u64,
    /// The subset of `aborted` refused by read validation or SSI
    /// dangerous-structure prevention.
    pub aborted_rw: u64,
    /// Scripts abandoned after exhausting their retries.
    pub gave_up: u64,
    /// Total operations executed (including those of aborted attempts).
    pub ops_executed: u64,
    /// In-flight transactions lost to injected system failures (each
    /// restarted, per §5's client assumptions).
    pub crashes: u64,
}

/// The outcome of a scheduler run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The client-visible history (init transaction first).
    pub history: History,
    /// The same history extended with the engine's ground-truth VIS/CO.
    pub execution: AbstractExecution,
    /// Aggregate counters.
    pub stats: RunStats,
    /// Snapshot of the run's metrics registry (commit/abort counters and
    /// latency histograms); empty when the scheduler ran unmetered.
    pub metrics: MetricsReport,
}

/// Accumulates committed transactions and finishes into a
/// [`RunResult`].
#[derive(Debug, Default)]
pub struct Recorder {
    committed: Vec<CommittedTx>,
    /// Highest commit seq recorded per session: sessions are sequential
    /// clients, so their commits must arrive in increasing seq order even
    /// when *different* sessions' records interleave arbitrarily.
    session_high_water: Vec<u64>,
    pub(crate) stats: RunStats,
    pub(crate) metrics: MetricsReport,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Records a committed transaction.
    ///
    /// Records from *different* sessions may arrive in any global order
    /// ([`Recorder::finish`] sorts by commit seq), but within one session
    /// they must be monotonically increasing — a session is a sequential
    /// client, and an out-of-order record would silently corrupt the SO
    /// relation of the reconstructed history.
    ///
    /// # Panics
    ///
    /// Panics on `tx.ops` being empty, a commit seq of 0, or a seq not
    /// strictly above the session's previous record.
    pub fn record(&mut self, tx: CommittedTx) {
        assert!(!tx.ops.is_empty(), "committed transactions must have operations");
        assert!(tx.seq >= 1, "commit sequence numbers are 1-based");
        if tx.session >= self.session_high_water.len() {
            self.session_high_water.resize(tx.session + 1, 0);
        }
        let last = &mut self.session_high_water[tx.session];
        assert!(
            tx.seq > *last,
            "session {} recorded commit seq {} after already recording seq {}: \
             per-session records must be monotonic",
            tx.session,
            tx.seq,
            last,
        );
        *last = tx.seq;
        self.committed.push(tx);
    }

    /// Number of recorded transactions.
    pub fn len(&self) -> usize {
        self.committed.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }

    /// Builds the history and ground-truth execution.
    ///
    /// `initial_values[i]` is the init transaction's write to `Obj(i)`;
    /// `session_count` fixes the number of sessions (sessions that
    /// committed nothing become empty… and are therefore dropped, since
    /// histories have no use for them).
    ///
    /// # Panics
    ///
    /// Panics if commit sequence numbers are not `1..=n` without gaps
    /// (engines allocate them contiguously), or if a `visible` entry
    /// references an unknown sequence number.
    pub fn finish(mut self, initial_values: &[Value], session_count: usize) -> RunResult {
        self.committed.sort_by_key(|t| t.seq);
        for (i, t) in self.committed.iter().enumerate() {
            assert_eq!(t.seq, (i + 1) as u64, "commit sequences must be contiguous");
        }
        let n = self.committed.len() + 1; // + init

        // Transactions: init first, then commit order.
        let mut transactions = Vec::with_capacity(n);
        transactions.push(Transaction::new(
            initial_values
                .iter()
                .enumerate()
                .map(|(i, &v)| Op::Write(Obj::from_index(i), v))
                .collect(),
        ));
        for t in &self.committed {
            transactions.push(Transaction::new(t.ops.clone()));
        }

        // Sessions: preserve client session identity, ordered by seq.
        let mut sessions: Vec<Vec<TxId>> = vec![Vec::new(); session_count];
        for (i, t) in self.committed.iter().enumerate() {
            sessions[t.session].push(TxId::from_index(i + 1));
        }
        sessions.retain(|s| !s.is_empty());

        let object_names = (0..initial_values.len()).map(|i| format!("x{i}")).collect();
        let history = History::from_parts(transactions, sessions, Some(TxId(0)), object_names)
            .expect("recorder output is structurally valid");

        // Ground-truth VIS and CO.
        let mut vis = Relation::new(n);
        let mut co = Relation::new(n);
        for i in 1..n {
            vis.insert(TxId(0), TxId::from_index(i)); // init visible to all
            co.insert(TxId(0), TxId::from_index(i));
        }
        for (i, t) in self.committed.iter().enumerate() {
            let me = TxId::from_index(i + 1);
            for &v in &t.visible {
                assert!(v >= 1 && v <= self.committed.len() as u64, "dangling visible seq");
                vis.insert(TxId::from_index(v as usize), me);
            }
            for j in (i + 1)..self.committed.len() {
                co.insert(me, TxId::from_index(j + 1));
            }
        }
        let execution = AbstractExecution::new(history.clone(), vis, co)
            .expect("engine ground truth is structurally valid");

        RunResult { history, execution, stats: self.stats, metrics: self.metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_execution::SpecModel;

    #[test]
    fn finish_builds_valid_execution() {
        let mut r = Recorder::new();
        r.record(CommittedTx {
            session: 0,
            ops: vec![Op::write(Obj(0), 1)],
            seq: 1,
            visible: vec![],
        });
        r.record(CommittedTx {
            session: 1,
            ops: vec![Op::read(Obj(0), 1)],
            seq: 2,
            visible: vec![1],
        });
        r.stats.committed = 2;
        let result = r.finish(&[Value(0)], 2);
        assert_eq!(result.history.tx_count(), 3);
        assert_eq!(result.history.session_count(), 2);
        assert!(result.execution.is_co_total());
        assert!(SpecModel::Si.check(&result.execution).is_ok());
        assert_eq!(result.stats.committed, 2);
    }

    #[test]
    fn empty_sessions_are_dropped() {
        let mut r = Recorder::new();
        r.record(CommittedTx {
            session: 3,
            ops: vec![Op::write(Obj(0), 1)],
            seq: 1,
            visible: vec![],
        });
        let result = r.finish(&[Value(0)], 5);
        assert_eq!(result.history.session_count(), 1);
    }

    #[test]
    fn interleaved_sessions_round_trip_through_check_si() {
        // Global arrival order is jumbled across sessions — only the
        // per-session order is monotonic, as with concurrent threads
        // racing to the recorder lock. The rebuilt execution must still
        // be a legal SI execution with correct session order.
        let mut r = Recorder::new();
        // Session 1 commits second but reaches the recorder first.
        r.record(CommittedTx {
            session: 1,
            ops: vec![Op::read(Obj(0), 1), Op::write(Obj(1), 2)],
            seq: 2,
            visible: vec![1],
        });
        r.record(CommittedTx {
            session: 0,
            ops: vec![Op::write(Obj(0), 1)],
            seq: 1,
            visible: vec![],
        });
        r.record(CommittedTx {
            session: 0,
            ops: vec![Op::read(Obj(1), 2), Op::write(Obj(0), 3)],
            seq: 3,
            visible: vec![1, 2],
        });
        let result = r.finish(&[Value(0), Value(0)], 2);
        assert_eq!(result.history.tx_count(), 4);
        assert_eq!(result.history.session_count(), 2);
        assert!(SpecModel::Si.check(&result.execution).is_ok());
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn out_of_order_session_records_panic() {
        let mut r = Recorder::new();
        r.record(CommittedTx {
            session: 0,
            ops: vec![Op::write(Obj(0), 1)],
            seq: 2,
            visible: vec![],
        });
        // Same session delivering an older commit afterwards: timestamp
        // regression, must be refused loudly.
        r.record(CommittedTx {
            session: 0,
            ops: vec![Op::write(Obj(0), 2)],
            seq: 1,
            visible: vec![],
        });
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn gap_in_sequences_panics() {
        let mut r = Recorder::new();
        r.record(CommittedTx {
            session: 0,
            ops: vec![Op::write(Obj(0), 1)],
            seq: 2,
            visible: vec![],
        });
        let _ = r.finish(&[Value(0)], 1);
    }
}
