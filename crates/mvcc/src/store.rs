//! The multi-version object store shared by all engines.

use si_model::{Obj, Value};

/// A committed version of an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Version {
    /// The value written.
    pub value: Value,
    /// Commit sequence number of the writing transaction (0 is the
    /// initial version).
    pub commit_seq: u64,
}

/// A multi-version store: per object, the full committed version history
/// in commit order. Sequence number 0 holds the initial values (the
/// paper's initialisation transaction).
#[derive(Debug, Clone)]
pub struct MultiVersionStore {
    versions: Vec<Vec<Version>>,
}

impl MultiVersionStore {
    /// Creates a store over `object_count` objects, all initialised to 0
    /// at sequence 0.
    pub fn new(object_count: usize) -> Self {
        MultiVersionStore {
            versions: (0..object_count)
                .map(|_| vec![Version { value: Value::INITIAL, commit_seq: 0 }])
                .collect(),
        }
    }

    /// Overrides an object's initial value (sequence 0).
    ///
    /// # Panics
    ///
    /// Panics if versions beyond the initial one already exist or `obj`
    /// is out of range.
    pub fn set_initial(&mut self, obj: Obj, value: Value) {
        let versions = &mut self.versions[obj.index()];
        assert_eq!(versions.len(), 1, "cannot reset initial value after commits");
        versions[0].value = value;
    }

    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.versions.len()
    }

    /// The initial value of an object.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range.
    pub fn initial(&self, obj: Obj) -> Value {
        self.versions[obj.index()][0].value
    }

    /// The latest version whose `commit_seq` is `≤ snapshot` — the
    /// snapshot read of the SI algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range. (A version always exists: sequence
    /// 0 holds the initial value.)
    pub fn read_at(&self, obj: Obj, snapshot: u64) -> Version {
        let versions = &self.versions[obj.index()];
        // Versions are appended in increasing commit_seq, so scan from the
        // end.
        *versions
            .iter()
            .rev()
            .find(|v| v.commit_seq <= snapshot)
            .expect("sequence 0 always satisfies the bound")
    }

    /// The latest version visible within an explicit set of commit
    /// sequence numbers (used by the PSI engine, whose snapshots are not
    /// prefixes). `visible(seq)` decides membership; sequence 0 is always
    /// visible.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range.
    pub fn read_visible(&self, obj: Obj, mut visible: impl FnMut(u64) -> bool) -> Version {
        let versions = &self.versions[obj.index()];
        *versions
            .iter()
            .rev()
            .find(|v| v.commit_seq == 0 || visible(v.commit_seq))
            .expect("sequence 0 is always visible")
    }

    /// The commit sequence of the newest committed version of `obj`.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range.
    pub fn latest_seq(&self, obj: Obj) -> u64 {
        self.versions[obj.index()].last().expect("version 0 always present").commit_seq
    }

    /// Installs a new committed version.
    ///
    /// # Panics
    ///
    /// Panics if `commit_seq` does not exceed the newest version's
    /// sequence (engines commit in sequence order) or `obj` is out of
    /// range.
    pub fn install(&mut self, obj: Obj, value: Value, commit_seq: u64) {
        let latest = self.latest_seq(obj);
        assert!(commit_seq > latest, "versions must be installed in commit order");
        self.versions[obj.index()].push(Version { value, commit_seq });
    }

    /// All committed versions of an object, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range.
    pub fn versions(&self, obj: Obj) -> &[Version] {
        &self.versions[obj.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads() {
        let mut s = MultiVersionStore::new(1);
        let x = Obj(0);
        s.install(x, Value(10), 1);
        s.install(x, Value(20), 3);
        assert_eq!(s.read_at(x, 0).value, Value::INITIAL);
        assert_eq!(s.read_at(x, 1).value, Value(10));
        assert_eq!(s.read_at(x, 2).value, Value(10));
        assert_eq!(s.read_at(x, 3).value, Value(20));
        assert_eq!(s.read_at(x, 99).value, Value(20));
        assert_eq!(s.latest_seq(x), 3);
    }

    #[test]
    fn visible_set_reads() {
        let mut s = MultiVersionStore::new(1);
        let x = Obj(0);
        s.install(x, Value(10), 1);
        s.install(x, Value(20), 2);
        // Sees seq 1 but not 2: reads 10.
        assert_eq!(s.read_visible(x, |seq| seq == 1).value, Value(10));
        // Sees nothing: falls back to the initial version.
        assert_eq!(s.read_visible(x, |_| false).value, Value::INITIAL);
    }

    #[test]
    fn initial_values() {
        let mut s = MultiVersionStore::new(2);
        s.set_initial(Obj(1), Value(77));
        assert_eq!(s.initial(Obj(0)), Value(0));
        assert_eq!(s.initial(Obj(1)), Value(77));
        assert_eq!(s.read_at(Obj(1), 0).value, Value(77));
    }

    #[test]
    #[should_panic(expected = "commit order")]
    fn out_of_order_install_panics() {
        let mut s = MultiVersionStore::new(1);
        s.install(Obj(0), Value(1), 5);
        s.install(Obj(0), Value(2), 3);
    }

    #[test]
    #[should_panic(expected = "after commits")]
    fn set_initial_after_commit_panics() {
        let mut s = MultiVersionStore::new(1);
        s.install(Obj(0), Value(1), 1);
        s.set_initial(Obj(0), Value(9));
    }
}
