//! Lock-striped multi-version store with epoch-based garbage collection.
//!
//! [`MultiVersionStore`](crate::MultiVersionStore) behind one exclusive
//! lock serialises every commit; the paper's soundness results (Theorems
//! 9/10) say that is unnecessary — any run can be validated *after the
//! fact*, so the engine only has to keep first-committer-wins atomic per
//! object, not globally. [`ShardedStore`] therefore partitions the
//! object space into hash shards (object index modulo shard count), each
//! behind its own [`RwLock`], and decomposes the protocol as:
//!
//! * **begin** — one SeqCst load of the `published` watermark, no lock.
//!   The session's snapshot is additionally registered in the
//!   [`SnapshotRegistry`] so GC can compute the oldest live snapshot.
//! * **read** — shared lock of the *one* shard holding the object;
//!   readers of different shards (and of the same shard) never block
//!   each other.
//! * **commit** — write locks of exactly the shards the transaction
//!   wrote, always acquired in ascending shard order (total order ⇒ no
//!   deadlock). First-committer-wins is validated and the new versions
//!   installed under those locks only; disjoint transactions commit in
//!   genuine parallel.
//! * **publication** — commit sequences come from a global atomic
//!   allocator, but a snapshot may only observe *fully installed*
//!   prefixes. Because two committers may finish installation out of
//!   sequence order, completed sequences enter a pending set and the
//!   `published` watermark advances to the longest contiguous prefix —
//!   exactly the largest `s` for which "all of `1..=s` is in place"
//!   holds. A committer does not *return* until the watermark covers
//!   its own sequence: otherwise the session's next begin could take a
//!   snapshot below its own commit and miss its own writes (a
//!   read-your-writes violation `si-solve` caught in stress
//!   recordings — the watermark lags whenever an earlier-allocated
//!   sequence is still installing).
//! * **epoch GC** — every `gc_interval` installs into a shard, the shard
//!   prunes versions no live snapshot can reach. The floor is
//!   `min(published, oldest registered snapshot)`; for each object the
//!   newest version at or below the floor plus everything newer is kept,
//!   so `read_at(obj, s)` for any live `s ≥ floor` is unaffected.
//!
//! The registration protocol makes the floor race-free: `begin` first
//! stores a *conservative guess* (the watermark before the snapshot
//! load) into its registry slot and only then takes the real snapshot.
//! GC reads the watermark *before* scanning slots. Either the scan sees
//! the slot (floor ≤ guess ≤ snapshot), or the slot was stored after the
//! scan's watermark read — and then the snapshot, taken even later, is
//! at least that watermark, which bounds the floor. Both ways, floor ≤
//! snapshot for every live transaction. `published` is monotone, which
//! is what the argument leans on.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, RwLock};
use si_model::{Obj, Value};

use crate::probe::{EngineProbe, ProbeEvent};
use crate::store::Version;

/// Registry slot value meaning "no transaction in flight".
const IDLE: u64 = u64::MAX;

/// Configuration of a [`ShardedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedStoreConfig {
    /// Number of lock stripes. Objects map to shards by index modulo
    /// this count.
    pub shards: usize,
    /// Installs into one shard between GC passes over it; `0` disables
    /// garbage collection.
    pub gc_interval: u64,
    /// Capacity of the snapshot registry: the highest session index that
    /// may run transactions, plus one.
    pub sessions: usize,
}

impl Default for ShardedStoreConfig {
    fn default() -> Self {
        ShardedStoreConfig { shards: 8, gc_interval: 128, sessions: 64 }
    }
}

/// Counters of the garbage collector, snapshotted by
/// [`ShardedStore::gc_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct GcStats {
    /// Prune passes that ran (one per shard per trigger).
    pub passes: u64,
    /// Versions dropped across all passes.
    pub pruned: u64,
}

/// Tracks the snapshot of every in-flight transaction so GC can bound
/// the oldest live snapshot. One fixed slot per session: sessions are
/// sequential clients, so each has at most one transaction in flight.
#[derive(Debug)]
pub struct SnapshotRegistry {
    slots: Vec<AtomicU64>,
}

impl SnapshotRegistry {
    fn new(sessions: usize) -> Self {
        SnapshotRegistry { slots: (0..sessions).map(|_| AtomicU64::new(IDLE)).collect() }
    }

    /// Marks `session` live with a conservative snapshot bound. Must be
    /// stored *before* the real snapshot is taken (see the module docs
    /// for why that ordering closes the race with a concurrent GC scan).
    fn register(&self, session: usize, guess: u64) {
        let prev = self.slots[session].swap(guess, Ordering::SeqCst);
        assert_eq!(prev, IDLE, "session {session} already has a transaction in flight");
    }

    /// Clears the session's slot once its transaction commits or aborts.
    fn release(&self, session: usize) {
        self.slots[session].store(IDLE, Ordering::SeqCst);
    }

    /// The minimum registered snapshot bound, or `None` when no
    /// transaction is live.
    fn oldest(&self) -> Option<u64> {
        self.slots.iter().map(|s| s.load(Ordering::SeqCst)).filter(|&s| s != IDLE).min()
    }
}

/// One lock stripe: the version chains of the objects it owns, plus GC
/// bookkeeping. Object `i` lives in shard `i % shards` at local index
/// `i / shards`.
#[derive(Debug)]
struct Shard {
    chains: Vec<Vec<Version>>,
    installs_since_gc: u64,
}

impl Shard {
    /// Drops every version strictly older than the newest version at or
    /// below `floor`; returns how many were dropped. Any snapshot `s ≥
    /// floor` reads either a kept version above the floor or exactly the
    /// kept floor version, so live reads are unaffected.
    fn prune(&mut self, floor: u64) -> u64 {
        let mut pruned = 0;
        for chain in &mut self.chains {
            let keep_from = chain
                .iter()
                .rposition(|v| v.commit_seq <= floor)
                .expect("sequence 0 always satisfies the floor");
            if keep_from > 0 {
                chain.drain(..keep_from);
                pruned += keep_from as u64;
            }
        }
        pruned
    }
}

/// The lock-striped multi-version store (see the module docs for the
/// protocol). All methods take `&self`; the store is shared across
/// threads by reference.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<RwLock<Shard>>,
    object_count: usize,
    initials: Vec<Value>,
    /// Commit sequence allocator: the next sequence is `alloc + 1`.
    alloc: AtomicU64,
    /// Highest sequence `s` such that every commit in `1..=s` is fully
    /// installed. Monotone; snapshots read it, GC floors on it.
    published: AtomicU64,
    /// Allocated-and-installed sequences above the watermark, waiting
    /// for the contiguous prefix to close.
    pending: Mutex<BTreeSet<u64>>,
    registry: SnapshotRegistry,
    gc_interval: u64,
    gc_passes: AtomicU64,
    gc_pruned: AtomicU64,
}

impl ShardedStore {
    /// Creates a store over `object_count` objects (all initialised to
    /// 0 at sequence 0) with the given striping and GC configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` or `config.sessions` is zero.
    pub fn new(object_count: usize, config: ShardedStoreConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.sessions > 0, "need at least one session slot");
        let shards = (0..config.shards)
            .map(|s| {
                let owned =
                    if object_count > s { (object_count - s).div_ceil(config.shards) } else { 0 };
                RwLock::new(Shard {
                    chains: (0..owned)
                        .map(|_| vec![Version { value: Value::INITIAL, commit_seq: 0 }])
                        .collect(),
                    installs_since_gc: 0,
                })
            })
            .collect();
        ShardedStore {
            shards,
            object_count,
            initials: vec![Value::INITIAL; object_count],
            alloc: AtomicU64::new(0),
            published: AtomicU64::new(0),
            pending: Mutex::new(BTreeSet::new()),
            registry: SnapshotRegistry::new(config.sessions),
            gc_interval: config.gc_interval,
            gc_passes: AtomicU64::new(0),
            gc_pruned: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, obj: Obj) -> usize {
        obj.index() % self.shards.len()
    }

    fn local(&self, obj: Obj) -> usize {
        obj.index() / self.shards.len()
    }

    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.object_count
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Overrides an object's initial value (sequence 0).
    ///
    /// # Panics
    ///
    /// Panics if any commit already happened or `obj` is out of range.
    pub fn set_initial(&mut self, obj: Obj, value: Value) {
        assert_eq!(
            self.alloc.load(Ordering::SeqCst),
            0,
            "cannot reset initial value after commits"
        );
        let shard = self.shard_of(obj);
        let local = self.local(obj);
        self.shards[shard].write().chains[local][0].value = value;
        self.initials[obj.index()] = value;
    }

    /// The initial value of an object.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range.
    pub fn initial(&self, obj: Obj) -> Value {
        self.initials[obj.index()]
    }

    /// Takes a snapshot for `session` and registers it as live. Returns
    /// the snapshot sequence; every commit in `1..=snapshot` is fully
    /// installed and safe from GC until [`ShardedStore::end_snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the session already has a registered transaction or is
    /// out of registry range.
    pub fn begin_snapshot(&self, session: usize) -> u64 {
        // Conservative guess first, snapshot second: `published` is
        // monotone, so guess ≤ snapshot, and a GC scan either sees the
        // guess or floors on a watermark the snapshot dominates.
        let guess = self.published.load(Ordering::SeqCst);
        self.registry.register(session, guess);
        self.published.load(Ordering::SeqCst)
    }

    /// Unregisters the session's live snapshot (commit path does this
    /// internally; abort paths call it directly).
    pub fn end_snapshot(&self, session: usize) {
        self.registry.release(session);
    }

    /// Snapshot read under the object's shard lock (shared).
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range.
    pub fn read_at(&self, obj: Obj, snapshot: u64) -> Version {
        let shard = self.shards[self.shard_of(obj)].read();
        *shard.chains[self.local(obj)]
            .iter()
            .rev()
            .find(|v| v.commit_seq <= snapshot)
            .expect("GC keeps the newest version at or below every live snapshot")
    }

    /// The commit sequence of the newest committed version of `obj`,
    /// read under the shard lock (shared).
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range.
    pub fn latest_seq(&self, obj: Obj) -> u64 {
        let shard = self.shards[self.shard_of(obj)].read();
        shard.chains[self.local(obj)].last().expect("version 0 always present").commit_seq
    }

    /// First-committer-wins validation, installation and publication,
    /// under the write locks of exactly the shards in the write set
    /// (ascending order). Unregisters the session's snapshot either way.
    /// Returns the commit sequence, or the first conflicting object.
    ///
    /// Shard-lock acquisition, installs and GC prunes are reported
    /// through `probe`; the caller owns the `Committed` /
    /// `AttemptDiscarded` fence events.
    pub fn commit(
        &self,
        session: usize,
        snapshot: u64,
        writes: &BTreeMap<Obj, Value>,
        probe: &EngineProbe,
    ) -> Result<u64, Obj> {
        let result = self.commit_locked(session, snapshot, writes, probe);
        self.registry.release(session);
        result
    }

    fn commit_locked(
        &self,
        session: usize,
        snapshot: u64,
        writes: &BTreeMap<Obj, Value>,
        probe: &EngineProbe,
    ) -> Result<u64, Obj> {
        // Deterministic ascending acquisition order: any two committers
        // take their common shards in the same order, so the wait-for
        // graph is acyclic.
        let shard_ids: Vec<usize> = writes
            .keys()
            .map(|&obj| self.shard_of(obj))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut guards: Vec<_> = shard_ids.iter().map(|&s| self.shards[s].write()).collect();
        if !shard_ids.is_empty() {
            probe.emit(|| ProbeEvent::ShardLocksAcquired { session, shards: shard_ids.clone() });
        }

        let chain_of = |obj: Obj| {
            let slot = shard_ids
                .binary_search(&self.shard_of(obj))
                .expect("every written object's shard is locked");
            (slot, self.local(obj))
        };

        // First-committer-wins: atomic per object because the object's
        // entire version chain is under the shard lock we hold.
        for &obj in writes.keys() {
            let (slot, local) = chain_of(obj);
            let latest = guards[slot].chains[local].last().expect("version 0 present").commit_seq;
            if latest > snapshot {
                return Err(obj);
            }
        }

        // Allocate only after validation passes: refused attempts leave
        // no hole in the sequence space.
        let seq = self.alloc.fetch_add(1, Ordering::Relaxed) + 1;
        for (&obj, &value) in writes {
            let (slot, local) = chain_of(obj);
            guards[slot].chains[local].push(Version { value, commit_seq: seq });
            probe.emit(|| ProbeEvent::VersionInstalled { session, obj, seq });
        }

        if self.gc_interval > 0 {
            for (slot, &shard_id) in shard_ids.iter().enumerate() {
                let installs =
                    writes.keys().filter(|&&obj| self.shard_of(obj) == shard_id).count() as u64;
                let guard = &mut guards[slot];
                guard.installs_since_gc += installs;
                if guard.installs_since_gc >= self.gc_interval {
                    guard.installs_since_gc = 0;
                    let floor = self.gc_floor();
                    let pruned = guard.prune(floor);
                    self.gc_passes.fetch_add(1, Ordering::Relaxed);
                    self.gc_pruned.fetch_add(pruned, Ordering::Relaxed);
                    if pruned > 0 {
                        probe.emit(|| ProbeEvent::VersionsPruned {
                            shard: shard_id,
                            floor,
                            pruned,
                        });
                    }
                }
            }
        }

        drop(guards);
        self.publish(seq);
        // Session visibility: don't report the commit until the
        // watermark covers it, so the session's next `begin` (a single
        // watermark load) observes this transaction's writes. Only
        // committers holding *smaller* sequences can delay publication,
        // and they never wait on larger ones, so the wait is bounded
        // and deadlock-free.
        while self.published.load(Ordering::SeqCst) < seq {
            std::thread::yield_now();
        }
        Ok(seq)
    }

    /// A lower bound on every snapshot any live or future transaction
    /// can hold. Reads the watermark *before* scanning registry slots —
    /// the ordering the registration protocol's race argument needs.
    fn gc_floor(&self) -> u64 {
        let watermark = self.published.load(Ordering::SeqCst);
        match self.registry.oldest() {
            Some(oldest) => watermark.min(oldest),
            None => watermark,
        }
    }

    /// Enters `seq` into the pending set and advances the `published`
    /// watermark over the now-contiguous prefix. The tiny mutex
    /// serialises watermark updates; installs themselves happened under
    /// shard locks, so a snapshot load ordered after this store finds
    /// every covered version in place.
    fn publish(&self, seq: u64) {
        let mut pending = self.pending.lock();
        pending.insert(seq);
        let mut watermark = self.published.load(Ordering::SeqCst);
        while pending.remove(&(watermark + 1)) {
            watermark += 1;
        }
        self.published.store(watermark, Ordering::SeqCst);
    }

    /// The current `published` watermark (what the next snapshot would
    /// observe).
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::SeqCst)
    }

    /// GC counters so far.
    pub fn gc_stats(&self) -> GcStats {
        GcStats {
            passes: self.gc_passes.load(Ordering::Relaxed),
            pruned: self.gc_pruned.load(Ordering::Relaxed),
        }
    }

    /// Total versions currently resident across all shards (including
    /// the per-object floor versions).
    pub fn resident_versions(&self) -> usize {
        self.shards.iter().map(|s| s.read().chains.iter().map(Vec::len).sum::<usize>()).sum()
    }

    /// All resident versions of an object, oldest first (for tests and
    /// assertions; clones because the chain lives under the shard lock).
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range.
    pub fn versions(&self, obj: Obj) -> Vec<Version> {
        self.shards[self.shard_of(obj)].read().chains[self.local(obj)].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(shards: usize, gc_interval: u64) -> ShardedStoreConfig {
        ShardedStoreConfig { shards, gc_interval, sessions: 8 }
    }

    fn commit_one(store: &ShardedStore, session: usize, obj: Obj, value: Value) -> u64 {
        let snapshot = store.begin_snapshot(session);
        let writes = BTreeMap::from([(obj, value)]);
        store.commit(session, snapshot, &writes, &EngineProbe::disabled()).unwrap()
    }

    #[test]
    fn snapshot_reads_match_unsharded_semantics() {
        let store = ShardedStore::new(5, config(2, 0));
        let x = Obj(3);
        commit_one(&store, 0, x, Value(10));
        commit_one(&store, 0, x, Value(20));
        assert_eq!(store.read_at(x, 0).value, Value::INITIAL);
        assert_eq!(store.read_at(x, 1).value, Value(10));
        assert_eq!(store.read_at(x, 2).value, Value(20));
        assert_eq!(store.latest_seq(x), 2);
        assert_eq!(store.published(), 2);
    }

    #[test]
    fn first_committer_wins_across_shards() {
        let store = ShardedStore::new(4, config(2, 0));
        let (x, y) = (Obj(0), Obj(1)); // different shards
        let s0 = store.begin_snapshot(0);
        let s1 = store.begin_snapshot(1);
        let w0 = BTreeMap::from([(x, Value(1)), (y, Value(1))]);
        let w1 = BTreeMap::from([(y, Value(2))]);
        assert!(store.commit(0, s0, &w0, &EngineProbe::disabled()).is_ok());
        // Session 1's snapshot predates the commit to y: refused.
        assert_eq!(store.commit(1, s1, &w1, &EngineProbe::disabled()), Err(y));
        // Refused attempts leave no sequence hole.
        assert_eq!(store.published(), 1);
    }

    #[test]
    fn gc_prunes_dead_versions_but_keeps_the_floor() {
        let store = ShardedStore::new(1, config(1, 4));
        let x = Obj(0);
        for i in 1..=12 {
            commit_one(&store, 0, x, Value(i));
        }
        let stats = store.gc_stats();
        assert!(stats.passes >= 2, "expected repeated GC passes, got {stats:?}");
        assert!(stats.pruned > 0);
        // The newest version is always reachable.
        assert_eq!(store.read_at(x, 12).value, Value(12));
        // Pruned chains are strictly shorter than the full history.
        assert!(store.resident_versions() < 13, "nothing was pruned");
    }

    #[test]
    fn gc_respects_live_snapshots() {
        let store = ShardedStore::new(1, config(1, 1));
        let x = Obj(0);
        commit_one(&store, 0, x, Value(1));
        // Session 1 holds snapshot 1 across many later commits.
        let pinned = store.begin_snapshot(1);
        assert_eq!(pinned, 1);
        for i in 2..=10 {
            commit_one(&store, 0, x, Value(i));
        }
        // The pinned snapshot must still read its version.
        assert_eq!(store.read_at(x, pinned).value, Value(1));
        store.end_snapshot(1);
        // Once released, a later pass may collect it.
        commit_one(&store, 0, x, Value(11));
        assert!(store.versions(x).first().unwrap().commit_seq >= 1);
    }

    #[test]
    fn set_initial_round_trips() {
        let mut store = ShardedStore::new(3, config(2, 0));
        store.set_initial(Obj(2), Value(77));
        assert_eq!(store.initial(Obj(2)), Value(77));
        assert_eq!(store.read_at(Obj(2), 0).value, Value(77));
        assert_eq!(store.initial(Obj(0)), Value::INITIAL);
    }

    #[test]
    #[should_panic(expected = "already has a transaction in flight")]
    fn double_begin_per_session_panics() {
        let store = ShardedStore::new(1, config(1, 0));
        store.begin_snapshot(0);
        store.begin_snapshot(0);
    }

    #[test]
    fn probe_reports_ascending_shard_locks() {
        let sink = std::sync::Arc::new(crate::probe::VecProbe::new());
        let probe = EngineProbe::new(sink.clone());
        let store = ShardedStore::new(6, config(3, 0));
        let snapshot = store.begin_snapshot(0);
        // Objects 5, 1, 4 → shards {2, 1}: reported as [1, 2].
        let writes = BTreeMap::from([(Obj(5), Value(1)), (Obj(1), Value(2)), (Obj(4), Value(3))]);
        store.commit(0, snapshot, &writes, &probe).unwrap();
        let events = sink.drain();
        assert!(events.iter().any(
            |e| matches!(e, ProbeEvent::ShardLocksAcquired { shards, .. } if shards == &[1, 2])
        ));
    }
}
