//! Serializable snapshot isolation (SSI): SI plus runtime prevention of
//! the Theorem 19 dangerous structure.
//!
//! Theorem 19 says every SI-but-not-serializable execution has a cycle
//! with two *adjacent* anti-dependency edges — some transaction (the
//! "pivot") with both an inbound and an outbound anti-dependency. SSI
//! (Cahill et al., adopted by PostgreSQL's SERIALIZABLE level) runs the
//! plain SI protocol but tracks anti-dependencies between concurrent
//! transactions and aborts a transaction before it can become a pivot.
//! The approximation is conservative — some serializable executions abort
//! — but every committed execution is serializable, which the tests
//! verify through the paper's own machinery: every run of this engine
//! must land in `GraphSER`.

use std::collections::{BTreeMap, BTreeSet};

use si_model::{Obj, Value};
use si_telemetry::{AbortCause, Event, Telemetry};

use crate::engine::{AbortReason, CommitInfo, Engine, TxToken};
use crate::probe::{EngineProbe, ProbeEvent};
use crate::store::MultiVersionStore;

#[derive(Debug)]
struct ActiveTx {
    session: usize,
    snapshot: u64,
    reads: BTreeSet<Obj>,
    writes: BTreeMap<Obj, Value>,
    finished: bool,
    /// Has an inbound anti-dependency from a concurrent transaction
    /// (someone read a version this transaction overwrote / will
    /// overwrite).
    in_conflict: bool,
    /// Has an outbound anti-dependency to a concurrent transaction (this
    /// transaction read a version someone else overwrote).
    out_conflict: bool,
}

#[derive(Debug, Clone)]
struct CommittedInfo {
    seq: u64,
    reads: BTreeSet<Obj>,
    writes: BTreeSet<Obj>,
    in_conflict: bool,
    out_conflict: bool,
}

/// The SSI engine: snapshot isolation with dangerous-structure
/// prevention.
///
/// In addition to first-committer-wins, commit fails with
/// [`AbortReason::ReadConflict`] when committing would complete a pivot —
/// a transaction with both `in_conflict` and `out_conflict` set against
/// concurrent transactions. Conflict flags are maintained at commit time
/// by comparing the committer's read/write sets against concurrent
/// transactions (active, and committed-concurrent ones).
#[derive(Debug)]
pub struct SsiEngine {
    store: MultiVersionStore,
    commit_counter: u64,
    active: Vec<ActiveTx>,
    /// Committed transactions, kept for overlap checks against still
    /// active ones.
    committed: Vec<CommittedInfo>,
    telemetry: Telemetry,
    probe: EngineProbe,
}

impl SsiEngine {
    /// Creates an engine over `object_count` objects initialised to 0.
    pub fn new(object_count: usize) -> Self {
        SsiEngine {
            store: MultiVersionStore::new(object_count),
            commit_counter: 0,
            active: Vec::new(),
            committed: Vec::new(),
            telemetry: Telemetry::disabled(),
            probe: EngineProbe::disabled(),
        }
    }

    /// Read-only access to the underlying store.
    pub fn store(&self) -> &MultiVersionStore {
        &self.store
    }

    fn tx(&mut self, token: TxToken) -> &mut ActiveTx {
        let tx = &mut self.active[token.0];
        assert!(!tx.finished, "transaction already committed or aborted");
        tx
    }
}

impl Engine for SsiEngine {
    fn object_count(&self) -> usize {
        self.store.object_count()
    }

    fn set_initial(&mut self, obj: Obj, value: Value) {
        self.store.set_initial(obj, value);
    }

    fn initial(&self, obj: Obj) -> Value {
        self.store.initial(obj)
    }

    fn begin(&mut self, session: usize) -> TxToken {
        self.telemetry.emit(|| Event::TxBegin { session });
        self.probe.emit(|| ProbeEvent::SnapshotPrefix { session, upto: self.commit_counter });
        self.active.push(ActiveTx {
            session,
            snapshot: self.commit_counter,
            reads: BTreeSet::new(),
            writes: BTreeMap::new(),
            finished: false,
            in_conflict: false,
            out_conflict: false,
        });
        TxToken(self.active.len() - 1)
    }

    fn read(&mut self, tx: TxToken, obj: Obj) -> Value {
        let (session, snapshot) = {
            let t = self.tx(tx);
            if let Some(&v) = t.writes.get(&obj) {
                return v;
            }
            t.reads.insert(obj);
            (t.session, t.snapshot)
        };
        // Reading an object that a concurrent *committed* transaction
        // overwrote gives this transaction an outbound anti-dependency and
        // that (already committed) transaction an inbound one — if the
        // committed side was already out-conflicted, it was a pivot we can
        // no longer abort, so abort must fall on the reader at commit;
        // flag it now.
        if self.store.latest_seq(obj) > snapshot {
            self.active[tx.0].out_conflict = true;
            // The committed overwriter gains in_conflict; if it also had
            // out_conflict it committed as a potential pivot — mark the
            // reader to be aborted at commit by also setting in-flag
            // pessimistically. (Classic SSI aborts on the reader side.)
        }
        let version = self.store.read_at(obj, snapshot);
        self.probe.emit(|| ProbeEvent::VersionObserved { session, obj, seq: version.commit_seq });
        version.value
    }

    fn write(&mut self, tx: TxToken, obj: Obj, value: Value) {
        self.tx(tx).writes.insert(obj, value);
    }

    fn commit(&mut self, tx: TxToken) -> Result<CommitInfo, AbortReason> {
        let token = tx;
        let (session, snapshot, reads, writes) = {
            let t = self.tx(token);
            (
                t.session,
                t.snapshot,
                t.reads.clone(),
                t.writes.keys().copied().collect::<BTreeSet<_>>(),
            )
        };

        // Plain SI first-committer-wins.
        for &obj in &writes {
            if self.store.latest_seq(obj) > snapshot {
                self.active[token.0].finished = true;
                self.telemetry.emit(|| Event::TxAbort {
                    session,
                    cause: AbortCause::WwConflict,
                    obj: Some(obj.0),
                });
                self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
                return Err(AbortReason::WriteConflict(obj));
            }
        }

        let mut in_conflict = self.active[token.0].in_conflict;
        let mut out_conflict = self.active[token.0].out_conflict;

        // Anti-dependencies against committed-concurrent transactions:
        // C committed after our snapshot; C read something we write
        // (C -RW→ us: our in-conflict, C's out) or C wrote something we
        // read (we -RW→ C: our out-conflict, C's in).
        let mut committed_updates: Vec<(usize, bool, bool)> = Vec::new();
        for (ci, c) in self.committed.iter().enumerate() {
            if c.seq <= snapshot {
                continue; // not concurrent: C is in our snapshot
            }
            let c_reads_our_writes = c.reads.iter().any(|o| writes.contains(o));
            let c_writes_our_reads = c.writes.iter().any(|o| reads.contains(o));
            let mut c_in = false;
            let mut c_out = false;
            if c_reads_our_writes {
                in_conflict = true;
                c_out = true;
            }
            if c_writes_our_reads {
                out_conflict = true;
                c_in = true;
            }
            if c_in || c_out {
                committed_updates.push((ci, c_in, c_out));
            }
            // Dangerous structure with a committed pivot: C has both
            // flags after this update — too late to abort C, so abort us.
            let c_total_in = c.in_conflict || c_in;
            let c_total_out = c.out_conflict || c_out;
            if c_total_in && c_total_out {
                self.active[token.0].finished = true;
                let witness = *c.writes.iter().next().unwrap_or(&Obj(0));
                self.telemetry.emit(|| Event::TxAbort {
                    session,
                    cause: AbortCause::RwConflict,
                    obj: Some(witness.0),
                });
                self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
                return Err(AbortReason::ReadConflict(witness));
            }
        }

        // Anti-dependencies against still-active transactions: A read
        // something we write (A -RW→ us) or A wrote something we read
        // (we -RW→ A, using its write buffer).
        let mut active_updates: Vec<(usize, bool, bool)> = Vec::new();
        for (ai, a) in self.active.iter().enumerate() {
            if ai == token.0 || a.finished {
                continue;
            }
            let a_reads_our_writes = a.reads.iter().any(|o| writes.contains(o));
            let a_writes_our_reads = a.writes.keys().any(|o| reads.contains(o));
            let mut a_in = false;
            let mut a_out = false;
            if a_reads_our_writes {
                in_conflict = true;
                a_out = true;
            }
            if a_writes_our_reads {
                out_conflict = true;
                a_in = true;
            }
            if a_in || a_out {
                active_updates.push((ai, a_in, a_out));
            }
        }

        // Would we commit as a pivot? Abort instead (conservatively).
        if in_conflict && out_conflict {
            self.active[token.0].finished = true;
            let witness = reads.iter().next().copied().unwrap_or(Obj(0));
            self.telemetry.emit(|| Event::TxAbort {
                session,
                cause: AbortCause::RwConflict,
                obj: Some(witness.0),
            });
            self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
            return Err(AbortReason::ReadConflict(witness));
        }

        // Commit: install writes, persist flags, propagate to neighbours.
        self.commit_counter += 1;
        let seq = self.commit_counter;
        for (&obj, &value) in &self.active[token.0].writes.clone() {
            self.store.install(obj, value, seq);
            self.probe.emit(|| ProbeEvent::VersionInstalled { session, obj, seq });
        }
        for (ci, c_in, c_out) in committed_updates {
            self.committed[ci].in_conflict |= c_in;
            self.committed[ci].out_conflict |= c_out;
        }
        for (ai, a_in, a_out) in active_updates {
            self.active[ai].in_conflict |= a_in;
            self.active[ai].out_conflict |= a_out;
        }
        let write_count = writes.len();
        self.committed.push(CommittedInfo { seq, reads, writes, in_conflict, out_conflict });
        self.active[token.0].finished = true;
        self.telemetry.emit(|| Event::TxCommit { session, seq, ops: write_count });
        self.probe.emit(|| ProbeEvent::Committed { session, seq });
        Ok(CommitInfo { seq, visible: (1..=snapshot).collect() })
    }

    fn abort(&mut self, tx: TxToken) {
        let t = self.tx(tx);
        t.finished = true;
        let session = t.session;
        self.telemetry.emit(|| Event::TxAbort { session, cause: AbortCause::Explicit, obj: None });
        self.probe.emit(|| ProbeEvent::AttemptDiscarded { session });
    }

    fn name(&self) -> &'static str {
        "SSI"
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn set_probe(&mut self, probe: EngineProbe) {
        self.probe = probe;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_skew_is_prevented() {
        let mut e = SsiEngine::new(2);
        let (x, y) = (Obj(0), Obj(1));
        e.set_initial(x, Value(60));
        e.set_initial(y, Value(60));
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        e.read(t1, x);
        e.read(t1, y);
        e.read(t2, x);
        e.read(t2, y);
        e.write(t1, x, Value(0));
        e.write(t2, y, Value(0));
        let r1 = e.commit(t1);
        let r2 = e.commit(t2);
        assert!(r1.is_err() || r2.is_err(), "SSI must abort at least one write-skew participant");
    }

    #[test]
    fn read_only_and_disjoint_commit_freely() {
        let mut e = SsiEngine::new(3);
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        e.write(t1, Obj(0), Value(1));
        e.write(t2, Obj(1), Value(2));
        assert!(e.commit(t1).is_ok());
        assert!(e.commit(t2).is_ok());
        let t3 = e.begin(2);
        e.read(t3, Obj(0));
        e.read(t3, Obj(1));
        assert!(e.commit(t3).is_ok());
    }

    #[test]
    fn first_committer_wins_still_applies() {
        let mut e = SsiEngine::new(1);
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        e.write(t1, Obj(0), Value(1));
        e.write(t2, Obj(0), Value(2));
        assert!(e.commit(t1).is_ok());
        assert_eq!(e.commit(t2), Err(AbortReason::WriteConflict(Obj(0))));
    }

    #[test]
    fn cross_rw_pair_cannot_both_commit() {
        // T1 reads x / writes y; T2 reads y / writes x: if both committed,
        // the graph would have the two-RW cycle T1 -RW→ T2 -RW→ T1 — not
        // serializable. SSI must abort at least one (here T1, which at its
        // commit already sees both an inbound and outbound conflict with
        // the in-flight T2).
        let mut e = SsiEngine::new(2);
        let (x, y) = (Obj(0), Obj(1));
        let t1 = e.begin(0);
        let t2 = e.begin(1);
        e.read(t1, x);
        e.write(t1, y, Value(1));
        e.read(t2, y);
        e.write(t2, x, Value(1));
        let r1 = e.commit(t1);
        let r2 = e.commit(t2);
        assert!(!(r1.is_ok() && r2.is_ok()), "both write-skew siblings committed");
        assert!(r1.is_ok() || r2.is_ok(), "SSI needlessly aborted both");
    }

    #[test]
    fn serial_use_never_aborts() {
        let mut e = SsiEngine::new(2);
        for i in 0..10u64 {
            let t = e.begin(0);
            e.read(t, Obj((i % 2) as u32));
            e.write(t, Obj((i % 2) as u32), Value(i));
            assert!(e.commit(t).is_ok(), "serial transaction {i} aborted");
        }
    }
}
