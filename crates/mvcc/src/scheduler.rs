//! Deterministic interleaved execution of client sessions against an
//! engine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use si_model::{Obj, Op, Value};
use si_telemetry::{MetricsRegistry, SpanTimer, LATENCY_BOUNDS_NANOS};

use crate::engine::{AbortReason, Engine, TxToken};
use crate::recorder::{CommittedTx, Recorder, RunResult};
use crate::script::{Script, ScriptOp};

/// Scheduler parameters.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// RNG seed; runs with the same seed, workload and engine are
    /// bit-identical.
    pub seed: u64,
    /// How many times an aborted script is resubmitted before giving up
    /// (the paper assumes unbounded resubmission; the bound guards
    /// livelock in adversarial workloads).
    pub max_retries: u32,
    /// Probability, per scheduling step, of running one engine
    /// background step (e.g. PSI replication) instead of a client step.
    pub background_probability: f64,
    /// Probability, per client step, that the in-flight transaction is
    /// lost to a simulated system failure and restarted from scratch —
    /// §5's assumption that "if a piece is aborted due to system failure,
    /// it will be restarted". Crashes do not count against `max_retries`.
    pub crash_probability: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            seed: 0,
            max_retries: 1000,
            background_probability: 0.0,
            crash_probability: 0.0,
        }
    }
}

/// A workload: object universe, initial values and per-session script
/// queues.
#[derive(Debug, Clone)]
pub struct Workload {
    object_count: usize,
    initials: Vec<(Obj, u64)>,
    sessions: Vec<Vec<Script>>,
}

impl Workload {
    /// A workload over `object_count` objects and no sessions yet.
    pub fn new(object_count: usize) -> Self {
        Workload { object_count, initials: Vec::new(), sessions: Vec::new() }
    }

    /// Sets an object's initial value (default 0).
    #[must_use]
    pub fn initial(mut self, obj: Obj, value: u64) -> Self {
        self.initials.push((obj, value));
        self
    }

    /// Appends a session executing the given scripts in order.
    #[must_use]
    pub fn session<I: IntoIterator<Item = Script>>(mut self, scripts: I) -> Self {
        self.sessions.push(scripts.into_iter().filter(|s| !s.is_empty()).collect());
        self
    }

    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.object_count
    }

    /// Number of sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Total scripts across sessions.
    pub fn script_count(&self) -> usize {
        self.sessions.iter().map(Vec::len).sum()
    }

    /// The scripts of each session, in session order (for coverage checks
    /// against static program models).
    pub fn session_scripts(&self) -> impl Iterator<Item = &[Script]> + '_ {
        self.sessions.iter().map(Vec::as_slice)
    }

    /// The declared initial values.
    pub fn initial_values(&self) -> &[(Obj, u64)] {
        &self.initials
    }
}

#[derive(Debug)]
struct SessionState {
    scripts: Vec<Script>,
    next_script: usize,
    tx: Option<InFlight>,
    retries: u32,
}

#[derive(Debug)]
struct InFlight {
    token: TxToken,
    pc: usize,
    registers: Vec<Value>,
    ops: Vec<Op>,
    started: SpanTimer,
}

/// Runs workloads against engines with a seeded random interleaving of
/// one-operation steps.
#[derive(Debug)]
pub struct Scheduler {
    config: SchedulerConfig,
    rng: StdRng,
    metrics: MetricsRegistry,
}

impl Scheduler {
    /// Creates a scheduler.
    pub fn new(config: SchedulerConfig) -> Self {
        Scheduler {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Replaces the metrics registry (by default each scheduler has its
    /// own). Sharing one registry across schedulers aggregates several
    /// runs into a single report.
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = metrics;
    }

    /// Executes the whole workload to completion and returns the recorded
    /// history, ground-truth execution and statistics.
    ///
    /// # Panics
    ///
    /// Panics if the workload references objects outside the engine's
    /// universe.
    pub fn run(&mut self, engine: &mut dyn Engine, workload: &Workload) -> RunResult {
        assert!(
            workload.object_count() <= engine.object_count(),
            "workload uses more objects than the engine holds"
        );
        for &(obj, v) in &workload.initials {
            engine.set_initial(obj, Value(v));
        }
        let initial_values: Vec<Value> =
            (0..engine.object_count()).map(|i| engine.initial(Obj::from_index(i))).collect();

        let mut recorder = Recorder::new();
        let mut sessions: Vec<SessionState> = workload
            .sessions
            .iter()
            .map(|scripts| SessionState {
                scripts: scripts.clone(),
                next_script: 0,
                tx: None,
                retries: 0,
            })
            .collect();

        loop {
            let runnable: Vec<usize> = sessions
                .iter()
                .enumerate()
                .filter(|(_, s)| s.next_script < s.scripts.len())
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                break;
            }
            if self.config.background_probability > 0.0
                && self.rng.gen_bool(self.config.background_probability)
            {
                if engine.background_step() {
                    self.metrics.counter("scheduler.background_steps").inc();
                }
                continue;
            }
            let si = runnable[self.rng.gen_range(0..runnable.len())];
            // Simulated system failure: the in-flight transaction vanishes
            // and the client restarts the piece (§5).
            if self.config.crash_probability > 0.0
                && sessions[si].tx.is_some()
                && self.rng.gen_bool(self.config.crash_probability)
            {
                if let Some(tx) = sessions[si].tx.take() {
                    engine.abort(tx.token);
                    recorder.stats.crashes += 1;
                    self.metrics.counter("scheduler.crashes").inc();
                }
                continue;
            }
            self.step_session(si, &mut sessions[si], engine, &mut recorder);
        }
        recorder.metrics = self.metrics.snapshot();
        recorder.finish(&initial_values, workload.session_count())
    }

    /// Advances one session by one operation (or begin/commit).
    fn step_session(
        &mut self,
        session_index: usize,
        state: &mut SessionState,
        engine: &mut dyn Engine,
        recorder: &mut Recorder,
    ) {
        let script = state.scripts[state.next_script].clone();
        let tx = match &mut state.tx {
            Some(tx) => tx,
            None => {
                let token = engine.begin(session_index);
                state.tx = Some(InFlight {
                    token,
                    pc: 0,
                    registers: Vec::new(),
                    ops: Vec::new(),
                    started: SpanTimer::start(),
                });
                return;
            }
        };

        if tx.pc < script.ops().len() {
            recorder.stats.ops_executed += 1;
            match &script.ops()[tx.pc] {
                ScriptOp::Read(obj) => {
                    let v = engine.read(tx.token, *obj);
                    tx.registers.push(v);
                    tx.ops.push(Op::Read(*obj, v));
                    tx.pc += 1;
                }
                ScriptOp::WriteConst(obj, value) => {
                    engine.write(tx.token, *obj, Value(*value));
                    tx.ops.push(Op::Write(*obj, Value(*value)));
                    tx.pc += 1;
                }
                ScriptOp::WriteComputed { obj, regs, delta } => {
                    let v = Script::compute(regs, *delta, &tx.registers);
                    engine.write(tx.token, *obj, v);
                    tx.ops.push(Op::Write(*obj, v));
                    tx.pc += 1;
                }
                ScriptOp::EndIfSumBelow { regs, threshold } => {
                    let sum: u64 = regs.iter().map(|&r| tx.registers[r].0).sum();
                    if sum < *threshold {
                        tx.pc = script.ops().len(); // guard fails: commit early
                    } else {
                        tx.pc += 1;
                    }
                }
            }
            return;
        }

        // Script finished: attempt commit.
        let InFlight { token, ops, started, .. } =
            state.tx.take().expect("in-flight checked above");
        if ops.is_empty() {
            // Degenerate script (e.g. only a guard): nothing to record.
            engine.abort(token);
            state.next_script += 1;
            state.retries = 0;
            return;
        }
        match engine.commit(token) {
            Ok(info) => {
                recorder.stats.committed += 1;
                self.metrics.counter("txn.committed").inc();
                // Latency of the successful attempt, begin to commit.
                self.metrics
                    .histogram("txn.commit_latency_nanos", LATENCY_BOUNDS_NANOS)
                    .record(started.elapsed_nanos());
                recorder.record(CommittedTx {
                    session: session_index,
                    ops,
                    seq: info.seq,
                    visible: info.visible,
                });
                state.next_script += 1;
                state.retries = 0;
            }
            Err(reason) => {
                recorder.stats.aborted += 1;
                match reason {
                    AbortReason::WriteConflict(_) => {
                        recorder.stats.aborted_ww += 1;
                        self.metrics.counter("txn.aborted.ww_conflict").inc();
                    }
                    AbortReason::ReadConflict(_) => {
                        recorder.stats.aborted_rw += 1;
                        self.metrics.counter("txn.aborted.rw_conflict").inc();
                    }
                }
                state.retries += 1;
                if state.retries > self.config.max_retries {
                    recorder.stats.gave_up += 1;
                    self.metrics.counter("txn.gave_up").inc();
                    state.next_script += 1;
                    state.retries = 0;
                } else {
                    self.metrics.counter("txn.retries").inc();
                }
                // Otherwise the same script will be resubmitted from
                // scratch on the session's next turn.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PsiEngine, SerEngine, SiEngine};
    use si_execution::SpecModel;

    fn transfer_workload() -> Workload {
        let (x, y) = (Obj(0), Obj(1));
        let deposit = Script::new().read(x).write_computed(x, [0], 50);
        let transfer =
            Script::new().read(x).read(y).write_computed(x, [0], -10).write_computed(y, [1], 10);
        Workload::new(2)
            .initial(x, 100)
            .session([deposit.clone(), transfer.clone()])
            .session([deposit, transfer])
    }

    #[test]
    fn deterministic_runs() {
        let w = transfer_workload();
        let run = |seed| {
            let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
            s.run(&mut SiEngine::new(2), &w)
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.history, b.history);
        assert_eq!(a.stats, b.stats);
        let c = run(43);
        // A different seed may interleave differently (not asserted
        // unequal — just must still be valid).
        assert!(c.stats.committed == 4);
    }

    #[test]
    fn si_runs_satisfy_exec_si() {
        let w = transfer_workload();
        for seed in 0..20 {
            let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
            let result = s.run(&mut SiEngine::new(2), &w);
            assert_eq!(result.stats.committed, 4);
            assert!(
                SpecModel::Si.check(&result.execution).is_ok(),
                "seed {seed} produced an invalid SI execution"
            );
        }
    }

    #[test]
    fn ser_runs_satisfy_exec_ser() {
        let w = transfer_workload();
        for seed in 0..20 {
            let mut s = Scheduler::new(SchedulerConfig { seed, ..Default::default() });
            let result = s.run(&mut SerEngine::new(2), &w);
            assert!(
                SpecModel::Ser.check(&result.execution).is_ok(),
                "seed {seed} produced an invalid SER execution"
            );
        }
    }

    #[test]
    fn psi_runs_satisfy_exec_psi() {
        let w = transfer_workload();
        for seed in 0..20 {
            let mut s = Scheduler::new(SchedulerConfig {
                seed,
                background_probability: 0.3,
                ..Default::default()
            });
            let result = s.run(&mut PsiEngine::new(2, 2), &w);
            assert!(
                SpecModel::Psi.check(&result.execution).is_ok(),
                "seed {seed} produced an invalid PSI execution"
            );
        }
    }

    #[test]
    fn guards_commit_early() {
        let x = Obj(0);
        // Withdraw only if balance >= 100; balance is 40, so the write is
        // skipped and the transaction is read-only.
        let guarded = Script::new().read(x).end_if_sum_below([0], 100).write_computed(x, [0], -100);
        let w = Workload::new(1).initial(x, 40).session([guarded]);
        let mut s = Scheduler::new(SchedulerConfig::default());
        let result = s.run(&mut SiEngine::new(1), &w);
        assert_eq!(result.stats.committed, 1);
        let tx = result.history.transaction(si_relations::TxId(1));
        assert_eq!(tx.len(), 1); // just the read
    }

    #[test]
    fn crashes_restart_pieces_without_losing_work() {
        // With heavy failure injection, every script still eventually
        // commits exactly once, and the run remains a valid SI execution.
        let x = Obj(0);
        let inc = Script::new().read(x).write_computed(x, [0], 1);
        let mut w = Workload::new(1);
        for _ in 0..4 {
            w = w.session(vec![inc.clone(); 3]);
        }
        let mut s = Scheduler::new(SchedulerConfig {
            seed: 13,
            crash_probability: 0.25,
            ..Default::default()
        });
        let mut engine = SiEngine::new(1);
        let run = s.run(&mut engine, &w);
        assert_eq!(run.stats.committed, 12);
        assert!(run.stats.crashes > 0, "no crash was injected");
        assert_eq!(engine.store().read_at(x, u64::MAX).value, Value(12));
        assert!(SpecModel::Si.check(&run.execution).is_ok());
    }

    #[test]
    fn conflicting_increments_all_apply() {
        // Ten sessions each increment a counter once; SI's
        // first-committer-wins plus retries must serialise them all.
        let x = Obj(0);
        let inc = Script::new().read(x).write_computed(x, [0], 1);
        let mut w = Workload::new(1);
        for _ in 0..10 {
            w = w.session([inc.clone()]);
        }
        let mut s = Scheduler::new(SchedulerConfig { seed: 7, ..Default::default() });
        let mut engine = SiEngine::new(1);
        let result = s.run(&mut engine, &w);
        assert_eq!(result.stats.committed, 10);
        assert_eq!(engine.store().read_at(x, u64::MAX).value, Value(10));
    }
}
