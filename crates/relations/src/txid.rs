//! Transaction identifiers.

use core::fmt;

/// A dense transaction identifier.
///
/// Histories, executions and dependency graphs index their transactions with
/// consecutive `TxId`s starting from `TxId(0)`. Using a dense index (rather
/// than, say, an interned name) lets [`Relation`](crate::Relation) store
/// edges as bitset matrices and keeps every fixed-point computation in the
/// paper allocation-free on the hot path.
///
/// By convention established in `si-model`, when a history carries an
/// initialisation transaction (the paper's elided transaction that writes
/// the initial version of every object) it is `TxId(0)`.
///
/// # Example
///
/// ```
/// use si_relations::TxId;
///
/// let t = TxId(3);
/// assert_eq!(t.index(), 3);
/// assert_eq!(format!("{t}"), "T3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct TxId(pub u32);

impl TxId {
    /// Returns the identifier as a `usize` index, suitable for indexing
    /// relation rows and per-transaction tables.
    ///
    /// ```
    /// # use si_relations::TxId;
    /// assert_eq!(TxId(7).index(), 7_usize);
    /// ```
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `TxId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`; histories in this crate family
    /// are bounded far below that.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        TxId(u32::try_from(index).expect("transaction index exceeds u32::MAX"))
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Debug for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u32> for TxId {
    fn from(raw: u32) -> Self {
        TxId(raw)
    }
}

impl From<TxId> for u32 {
    fn from(id: TxId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for raw in [0_u32, 1, 17, 4096] {
            let id = TxId(raw);
            assert_eq!(TxId::from_index(id.index()), id);
        }
    }

    #[test]
    fn display_is_t_prefixed() {
        assert_eq!(TxId(0).to_string(), "T0");
        assert_eq!(TxId(42).to_string(), "T42");
        assert_eq!(format!("{:?}", TxId(42)), "T42");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(TxId(1) < TxId(2));
        assert_eq!(TxId::default(), TxId(0));
    }

    #[test]
    fn conversions() {
        let id: TxId = 9_u32.into();
        assert_eq!(u32::from(id), 9);
    }
}
