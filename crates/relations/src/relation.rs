//! Dense binary relations over transaction identifiers.

use core::fmt;

use crate::{TxId, TxSet};

/// A binary relation `R ⊆ {T0,…,T(n-1)} × {T0,…,T(n-1)}`, stored as a dense
/// bitset matrix (one [`TxSet`] row per source transaction).
///
/// `Relation` implements the relational algebra the paper computes with:
/// union, intersection, composition `R ; S`, the optional composition
/// `R ; S? = R ∪ (R ; S)` (the paper's `S? = S ∪ id` under composition),
/// transitive closure `R⁺`, inverses and restrictions, plus order-theoretic
/// queries (acyclicity with witness extraction, strict-total-order checks,
/// topological sorting).
///
/// # Example: Lemma 15's closed form
///
/// The smallest solution of the inequalities in Figure 3 of the paper is
/// `CO = ((D ; RW?) ∪ R)⁺` with `D = SO ∪ WR ∪ WW`:
///
/// ```
/// use si_relations::{Relation, TxId};
///
/// let n = 3;
/// let mut d = Relation::new(n);
/// d.insert(TxId(0), TxId(1));
/// let mut rw = Relation::new(n);
/// rw.insert(TxId(1), TxId(2));
/// let r = Relation::new(n); // enforced edges, empty at step 0
///
/// let co = d.compose_opt(&rw).union(&r).transitive_closure();
/// assert!(co.contains(TxId(0), TxId(2)));
/// assert!(co.is_acyclic());
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Relation {
    n: usize,
    rows: Vec<TxSet>,
}

impl Relation {
    /// Creates the empty relation over `{T0,…,T(n-1)}`.
    pub fn new(n: usize) -> Self {
        Relation { n, rows: (0..n).map(|_| TxSet::new(n)).collect() }
    }

    /// Builds a relation from `(source, target)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is outside the universe.
    pub fn from_pairs<I: IntoIterator<Item = (TxId, TxId)>>(n: usize, pairs: I) -> Self {
        let mut rel = Relation::new(n);
        for (a, b) in pairs {
            rel.insert(a, b);
        }
        rel
    }

    /// The identity relation `{(T,T) | T}` over `{T0,…,T(n-1)}`.
    pub fn identity(n: usize) -> Self {
        let mut rel = Relation::new(n);
        for i in 0..n {
            rel.insert(TxId::from_index(i), TxId::from_index(i));
        }
        rel
    }

    /// Size of the universe (number of transactions), not the edge count.
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of pairs in the relation.
    pub fn edge_count(&self) -> usize {
        self.rows.iter().map(TxSet::len).sum()
    }

    /// Whether the relation contains no pairs.
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(TxSet::is_empty)
    }

    /// Whether `(a, b) ∈ R`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the universe.
    #[inline]
    pub fn contains(&self, a: TxId, b: TxId) -> bool {
        self.rows[a.index()].contains(b)
    }

    /// Inserts `(a, b)`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the universe.
    #[inline]
    pub fn insert(&mut self, a: TxId, b: TxId) -> bool {
        assert!(b.index() < self.n, "{b} outside universe of size {}", self.n);
        self.rows[a.index()].insert(b)
    }

    /// Removes `(a, b)`, returning `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the universe.
    #[inline]
    pub fn remove(&mut self, a: TxId, b: TxId) -> bool {
        self.rows[a.index()].remove(b)
    }

    /// The successor set `R(a) = {b | (a,b) ∈ R}` as a borrowed row.
    ///
    /// # Panics
    ///
    /// Panics if `a` is outside the universe.
    #[inline]
    pub fn successors(&self, a: TxId) -> &TxSet {
        &self.rows[a.index()]
    }

    /// The predecessor set `R⁻¹(b) = {a | (a,b) ∈ R}`, computed by scanning
    /// the column. The paper writes this `R⁻¹(T)` (e.g. `VIS⁻¹(T)`, the
    /// snapshot of `T`).
    pub fn predecessors(&self, b: TxId) -> TxSet {
        let mut preds = TxSet::new(self.n);
        for (i, row) in self.rows.iter().enumerate() {
            if row.contains(b) {
                preds.insert(TxId::from_index(i));
            }
        }
        preds
    }

    /// In-place union; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &Relation) -> bool {
        assert_eq!(self.n, other.n, "universe mismatch");
        let mut changed = false;
        for (row, orow) in self.rows.iter_mut().zip(&other.rows) {
            changed |= row.union_with(orow);
        }
        changed
    }

    /// Returns `self ∪ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union(&self, other: &Relation) -> Relation {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns `self ∩ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersection(&self, other: &Relation) -> Relation {
        assert_eq!(self.n, other.n, "universe mismatch");
        let mut out = self.clone();
        for (row, orow) in out.rows.iter_mut().zip(&other.rows) {
            row.intersect_with(orow);
        }
        out
    }

    /// Returns `self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn difference(&self, other: &Relation) -> Relation {
        assert_eq!(self.n, other.n, "universe mismatch");
        let mut out = self.clone();
        for (row, orow) in out.rows.iter_mut().zip(&other.rows) {
            row.difference_with(orow);
        }
        out
    }

    /// Whether every pair of `self` is in `other` (`self ⊆ other`).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn is_subset(&self, other: &Relation) -> bool {
        assert_eq!(self.n, other.n, "universe mismatch");
        self.rows.iter().zip(&other.rows).all(|(r, o)| r.is_subset(o))
    }

    /// Sequential composition `self ; other = {(a,c) | ∃b. (a,b) ∈ self ∧
    /// (b,c) ∈ other}`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn compose(&self, other: &Relation) -> Relation {
        assert_eq!(self.n, other.n, "universe mismatch");
        let mut out = Relation::new(self.n);
        for (i, row) in self.rows.iter().enumerate() {
            let out_row = &mut out.rows[i];
            for b in row.iter() {
                out_row.union_with(&other.rows[b.index()]);
            }
        }
        out
    }

    /// Optional composition `self ; other? = self ∪ (self ; other)`, the
    /// paper's `R ; S?` (where `S? = S ∪ {(T,T)}`).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn compose_opt(&self, other: &Relation) -> Relation {
        let mut out = self.compose(other);
        out.union_with(self);
        out
    }

    /// The inverse relation `R⁻¹ = {(b,a) | (a,b) ∈ R}`.
    pub fn inverse(&self) -> Relation {
        let mut out = Relation::new(self.n);
        for (a, b) in self.iter_pairs() {
            out.insert(b, a);
        }
        out
    }

    /// Transitive closure `R⁺`, via word-parallel Warshall.
    pub fn transitive_closure(&self) -> Relation {
        let mut out = self.clone();
        for k in 0..self.n {
            let k_id = TxId::from_index(k);
            // Split borrow: take row k out, OR it into every row that can
            // reach k, put it back. For i == k the union would be a no-op
            // (row_k ∪ row_k), so skipping it is sound.
            let row_k = std::mem::take(&mut out.rows[k]);
            for i in 0..self.n {
                if i != k && out.rows[i].contains(k_id) {
                    out.rows[i].union_with(&row_k);
                }
            }
            out.rows[k] = row_k;
        }
        out
    }

    /// Reflexive-transitive closure `R* = R⁺ ∪ id`.
    pub fn reflexive_transitive_closure(&self) -> Relation {
        let mut out = self.transitive_closure();
        for i in 0..self.n {
            out.insert(TxId::from_index(i), TxId::from_index(i));
        }
        out
    }

    /// Whether the relation is irreflexive (`(a,a) ∉ R` for all `a`).
    pub fn is_irreflexive(&self) -> bool {
        (0..self.n).all(|i| !self.contains(TxId::from_index(i), TxId::from_index(i)))
    }

    /// Whether the relation is transitive.
    pub fn is_transitive(&self) -> bool {
        self.compose(self).is_subset(self)
    }

    /// Whether the relation's digraph is acyclic. Equivalent to the
    /// transitive closure being irreflexive, but computed in `O(V+E)` with a
    /// DFS.
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// Finds a cycle if one exists, returned as a vertex sequence
    /// `v0 → v1 → … → v0` with the closing edge implicit (the last vertex
    /// has an edge back to the first; the first vertex is not repeated).
    pub fn find_cycle(&self) -> Option<Vec<TxId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; self.n];
        let mut parent: Vec<Option<usize>> = vec![None; self.n];
        // Iterative DFS keeping an explicit stack of (node, successor iter pos).
        for start in 0..self.n {
            if marks[start] != Mark::White {
                continue;
            }
            let mut stack: Vec<(usize, TxSetIterOwned)> = Vec::new();
            marks[start] = Mark::Grey;
            stack.push((start, TxSetIterOwned::new(&self.rows[start])));
            while let Some((node, iter)) = stack.last_mut() {
                let node = *node;
                match iter.next() {
                    Some(next) => {
                        let ni = next.index();
                        match marks[ni] {
                            Mark::White => {
                                parent[ni] = Some(node);
                                marks[ni] = Mark::Grey;
                                let it = TxSetIterOwned::new(&self.rows[ni]);
                                stack.push((ni, it));
                            }
                            Mark::Grey => {
                                // Found a back edge node -> ni; reconstruct.
                                let mut cycle = vec![TxId::from_index(node)];
                                let mut cur = node;
                                while cur != ni {
                                    cur = parent[cur]
                                        .expect("grey node must have a parent on the stack");
                                    cycle.push(TxId::from_index(cur));
                                }
                                cycle.reverse();
                                return Some(cycle);
                            }
                            Mark::Black => {}
                        }
                    }
                    None => {
                        marks[node] = Mark::Black;
                        stack.pop();
                    }
                }
            }
        }
        None
    }

    /// Topologically sorts the universe consistently with the relation.
    ///
    /// # Errors
    ///
    /// Returns the witness cycle if the relation is cyclic.
    pub fn topo_sort(&self) -> Result<Vec<TxId>, Vec<TxId>> {
        if let Some(cycle) = self.find_cycle() {
            return Err(cycle);
        }
        let mut indegree = vec![0_usize; self.n];
        for (_, b) in self.iter_pairs() {
            indegree[b.index()] += 1;
        }
        let mut queue: Vec<usize> = (0..self.n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(i) = queue.pop() {
            order.push(TxId::from_index(i));
            for b in self.rows[i].iter() {
                let d = &mut indegree[b.index()];
                *d -= 1;
                if *d == 0 {
                    queue.push(b.index());
                }
            }
        }
        debug_assert_eq!(order.len(), self.n);
        Ok(order)
    }

    /// Whether the relation is a strict total order on the whole universe:
    /// irreflexive, transitive, and any two distinct elements are related
    /// one way or the other.
    pub fn is_strict_total_order(&self) -> bool {
        self.is_strict_total_order_on(&TxSet::full(self.n))
    }

    /// Whether the relation restricted to `set` is a strict total order on
    /// `set` (the paper requires `WW(x)` to be a total order on
    /// `WriteTx_x`, and `CO` to be total on all transactions).
    ///
    /// # Panics
    ///
    /// Panics if `set` ranges over a different universe.
    pub fn is_strict_total_order_on(&self, set: &TxSet) -> bool {
        assert_eq!(set.universe(), self.n, "universe mismatch");
        let members: Vec<TxId> = set.iter().collect();
        for &a in &members {
            if self.contains(a, a) {
                return false;
            }
            for &b in &members {
                if a == b {
                    continue;
                }
                let ab = self.contains(a, b);
                let ba = self.contains(b, a);
                if ab == ba {
                    // Either unrelated or related both ways.
                    return false;
                }
            }
        }
        // Transitivity restricted to `set`.
        for &a in &members {
            for &b in &members {
                if a != b && self.contains(a, b) {
                    for &c in &members {
                        if c != b && c != a && self.contains(b, c) && !self.contains(a, c) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Checks that the relation is a strict total order on `set` and
    /// returns the witness failure otherwise.
    ///
    /// # Errors
    ///
    /// Returns a [`TotalOrderError`] naming the offending pair.
    ///
    /// # Panics
    ///
    /// Panics if `set` ranges over a different universe.
    pub fn check_strict_total_order_on(&self, set: &TxSet) -> Result<(), TotalOrderError> {
        assert_eq!(set.universe(), self.n, "universe mismatch");
        let members: Vec<TxId> = set.iter().collect();
        for &a in &members {
            if self.contains(a, a) {
                return Err(TotalOrderError::Reflexive(a));
            }
        }
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                let ab = self.contains(a, b);
                let ba = self.contains(b, a);
                match (ab, ba) {
                    (false, false) => return Err(TotalOrderError::Unrelated(a, b)),
                    (true, true) => return Err(TotalOrderError::Symmetric(a, b)),
                    _ => {}
                }
            }
        }
        for &a in &members {
            for &b in &members {
                if a != b && self.contains(a, b) {
                    for &c in &members {
                        if c != b && c != a && self.contains(b, c) && !self.contains(a, c) {
                            return Err(TotalOrderError::NotTransitive(a, b, c));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The maximal element of `set` under this relation, assuming the
    /// relation is a strict total order on `set` — the paper's
    /// `max_R(A)` (§2). Returns `None` if `set` is empty.
    ///
    /// With a strict total order, the maximum is the unique member with no
    /// successor inside `set`.
    pub fn max_element(&self, set: &TxSet) -> Option<TxId> {
        let mut best: Option<TxId> = None;
        for t in set.iter() {
            match best {
                None => best = Some(t),
                Some(b) => {
                    if self.contains(b, t) {
                        best = Some(t);
                    }
                }
            }
        }
        best
    }

    /// The minimal element of `set` under this relation — the paper's
    /// `min_R(A)`. Returns `None` if `set` is empty.
    pub fn min_element(&self, set: &TxSet) -> Option<TxId> {
        let mut best: Option<TxId> = None;
        for t in set.iter() {
            match best {
                None => best = Some(t),
                Some(b) => {
                    if self.contains(t, b) {
                        best = Some(t);
                    }
                }
            }
        }
        best
    }

    /// Returns the lexicographically first pair of distinct transactions
    /// unrelated by the relation in either direction, or `None` if every
    /// pair is related (i.e. the relation is total). Used by the
    /// Theorem 10(i) construction, which repeatedly "pick\[s\] an arbitrary
    /// pair of transactions unrelated by CO" — we pick deterministically so
    /// constructions are reproducible.
    pub fn first_unrelated_pair(&self) -> Option<(TxId, TxId)> {
        for i in 0..self.n {
            let a = TxId::from_index(i);
            for j in (i + 1)..self.n {
                let b = TxId::from_index(j);
                if !self.contains(a, b) && !self.contains(b, a) {
                    return Some((a, b));
                }
            }
        }
        None
    }

    /// Restricts the relation to pairs with both endpoints in `set`.
    ///
    /// # Panics
    ///
    /// Panics if `set` ranges over a different universe.
    pub fn restrict(&self, set: &TxSet) -> Relation {
        assert_eq!(set.universe(), self.n, "universe mismatch");
        let mut out = Relation::new(self.n);
        for (i, row) in self.rows.iter().enumerate() {
            if set.contains(TxId::from_index(i)) {
                let out_row = &mut out.rows[i];
                out_row.union_with(row);
                out_row.intersect_with(set);
            }
        }
        out
    }

    /// Iterates over all pairs `(a, b) ∈ R` in row-major order.
    pub fn iter_pairs(&self) -> PairIter<'_> {
        PairIter {
            relation: self,
            row: 0,
            inner: self.rows.first().map(|r| r.iter().collect::<Vec<_>>().into_iter()),
        }
    }

    /// Iterates over non-empty rows as `(source, successor-set)`.
    pub fn iter_rows(&self) -> RowIter<'_> {
        RowIter { relation: self, row: 0 }
    }

    /// Grows the universe to `new_n`, keeping existing pairs. Useful when a
    /// history is extended (e.g. splicing produces fewer transactions and a
    /// fresh relation is remapped).
    ///
    /// # Panics
    ///
    /// Panics if `new_n < self.universe()`.
    pub fn grown(&self, new_n: usize) -> Relation {
        assert!(new_n >= self.n, "cannot shrink a relation with grown()");
        let mut out = Relation::new(new_n);
        for (a, b) in self.iter_pairs() {
            out.insert(a, b);
        }
        out
    }
}

/// Owned row iterator used by the internal DFS (avoids borrowing `self`
/// mutably and immutably at once).
#[derive(Debug)]
struct TxSetIterOwned {
    words: Vec<u64>,
    word_index: usize,
    current: u64,
}

impl TxSetIterOwned {
    fn new(set: &TxSet) -> Self {
        let words: Vec<u64> = set.words().to_vec();
        let current = words.first().copied().unwrap_or(0);
        TxSetIterOwned { words, word_index: 0, current }
    }
}

impl Iterator for TxSetIterOwned {
    type Item = TxId;

    fn next(&mut self) -> Option<TxId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(TxId::from_index(self.word_index * 64 + bit));
            }
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_index];
        }
    }
}

/// Why a relation failed a strict-total-order check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TotalOrderError {
    /// `(T, T)` is in the relation.
    Reflexive(TxId),
    /// Two distinct members are unrelated in both directions.
    Unrelated(TxId, TxId),
    /// Two distinct members are related in both directions.
    Symmetric(TxId, TxId),
    /// `(a,b)` and `(b,c)` are present but `(a,c)` is not.
    NotTransitive(TxId, TxId, TxId),
}

impl fmt::Display for TotalOrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TotalOrderError::Reflexive(t) => write!(f, "relation is reflexive at {t}"),
            TotalOrderError::Unrelated(a, b) => write!(f, "{a} and {b} are unrelated"),
            TotalOrderError::Symmetric(a, b) => write!(f, "{a} and {b} are related both ways"),
            TotalOrderError::NotTransitive(a, b, c) => {
                write!(f, "missing transitive edge {a} -> {c} (via {b})")
            }
        }
    }
}

impl std::error::Error for TotalOrderError {}

/// Iterator over all pairs of a [`Relation`].
#[derive(Debug)]
pub struct PairIter<'a> {
    relation: &'a Relation,
    row: usize,
    inner: Option<std::vec::IntoIter<TxId>>,
}

impl Iterator for PairIter<'_> {
    type Item = (TxId, TxId);

    fn next(&mut self) -> Option<(TxId, TxId)> {
        loop {
            if let Some(inner) = &mut self.inner {
                if let Some(b) = inner.next() {
                    return Some((TxId::from_index(self.row), b));
                }
            }
            self.row += 1;
            if self.row >= self.relation.n {
                return None;
            }
            self.inner = Some(self.relation.rows[self.row].iter().collect::<Vec<_>>().into_iter());
        }
    }
}

/// Iterator over the rows of a [`Relation`].
#[derive(Debug)]
pub struct RowIter<'a> {
    relation: &'a Relation,
    row: usize,
}

impl<'a> Iterator for RowIter<'a> {
    type Item = (TxId, &'a TxSet);

    fn next(&mut self) -> Option<Self::Item> {
        while self.row < self.relation.n {
            let row = self.row;
            self.row += 1;
            if !self.relation.rows[row].is_empty() {
                return Some((TxId::from_index(row), &self.relation.rows[row]));
            }
        }
        None
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation({} nodes) {{", self.n)?;
        let mut first = true;
        for (a, b) in self.iter_pairs() {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            write!(f, " {a}->{b}")?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(n: usize, pairs: &[(u32, u32)]) -> Relation {
        Relation::from_pairs(n, pairs.iter().map(|&(a, b)| (TxId(a), TxId(b))))
    }

    #[test]
    fn insert_and_contains() {
        let mut r = Relation::new(3);
        assert!(r.insert(TxId(0), TxId(2)));
        assert!(!r.insert(TxId(0), TxId(2)));
        assert!(r.contains(TxId(0), TxId(2)));
        assert!(!r.contains(TxId(2), TxId(0)));
        assert_eq!(r.edge_count(), 1);
        assert!(r.remove(TxId(0), TxId(2)));
        assert!(r.is_empty());
    }

    #[test]
    fn compose_basic() {
        let r = rel(4, &[(0, 1), (1, 2)]);
        let s = rel(4, &[(1, 3), (2, 0)]);
        let c = r.compose(&s);
        assert!(c.contains(TxId(0), TxId(3)));
        assert!(c.contains(TxId(1), TxId(0)));
        assert_eq!(c.edge_count(), 2);
    }

    #[test]
    fn compose_opt_includes_original() {
        let r = rel(3, &[(0, 1)]);
        let s = rel(3, &[(1, 2)]);
        let c = r.compose_opt(&s);
        assert!(c.contains(TxId(0), TxId(1)));
        assert!(c.contains(TxId(0), TxId(2)));
        assert_eq!(c.edge_count(), 2);
    }

    #[test]
    fn transitive_closure_chain() {
        let r = rel(4, &[(0, 1), (1, 2), (2, 3)]);
        let tc = r.transitive_closure();
        assert!(tc.contains(TxId(0), TxId(3)));
        assert!(tc.contains(TxId(1), TxId(3)));
        assert!(!tc.contains(TxId(3), TxId(0)));
        assert_eq!(tc.edge_count(), 6);
        assert!(tc.is_transitive());
    }

    #[test]
    fn transitive_closure_cycle_has_self_loops() {
        let r = rel(3, &[(0, 1), (1, 0)]);
        let tc = r.transitive_closure();
        assert!(tc.contains(TxId(0), TxId(0)));
        assert!(tc.contains(TxId(1), TxId(1)));
        assert!(!tc.contains(TxId(2), TxId(2)));
        assert!(!tc.is_irreflexive());
    }

    #[test]
    fn reflexive_transitive_closure() {
        let r = rel(3, &[(0, 1)]);
        let rtc = r.reflexive_transitive_closure();
        assert!(rtc.contains(TxId(2), TxId(2)));
        assert!(rtc.contains(TxId(0), TxId(1)));
    }

    #[test]
    fn acyclicity_and_cycle_witness() {
        assert!(rel(3, &[(0, 1), (1, 2)]).is_acyclic());
        let cyclic = rel(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        assert!(!cyclic.is_acyclic());
        let cycle = cyclic.find_cycle().unwrap();
        // The witness must be a genuine cycle: consecutive edges exist and
        // the last node loops back to the first.
        for w in cycle.windows(2) {
            assert!(cyclic.contains(w[0], w[1]));
        }
        assert!(cyclic.contains(*cycle.last().unwrap(), cycle[0]));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let r = rel(2, &[(1, 1)]);
        assert!(!r.is_acyclic());
        assert_eq!(r.find_cycle().unwrap(), vec![TxId(1)]);
    }

    #[test]
    fn topo_sort_respects_edges() {
        let r = rel(5, &[(0, 1), (0, 2), (2, 3), (1, 3), (3, 4)]);
        let order = r.topo_sort().unwrap();
        let pos: Vec<usize> =
            (0..5).map(|i| order.iter().position(|t| t.index() == i).unwrap()).collect();
        for (a, b) in r.iter_pairs() {
            assert!(pos[a.index()] < pos[b.index()]);
        }
    }

    #[test]
    fn topo_sort_reports_cycle() {
        let r = rel(2, &[(0, 1), (1, 0)]);
        assert!(r.topo_sort().is_err());
    }

    #[test]
    fn strict_total_order_checks() {
        let chain = rel(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!(chain.is_strict_total_order());
        assert!(chain.check_strict_total_order_on(&TxSet::full(3)).is_ok());

        let missing = rel(3, &[(0, 1), (1, 2)]); // not transitive
        assert_eq!(
            missing.check_strict_total_order_on(&TxSet::full(3)),
            Err(TotalOrderError::Unrelated(TxId(0), TxId(2)))
        );

        let partial = rel(3, &[(0, 1)]);
        assert!(!partial.is_strict_total_order());

        // Total on a subset even though not total overall.
        let sub = TxSet::from_iter_with_universe(3, [TxId(0), TxId(1)]);
        assert!(partial.is_strict_total_order_on(&sub));
    }

    #[test]
    fn max_min_elements() {
        let order = rel(4, &[(0, 1), (1, 2), (0, 2)]);
        let set = TxSet::from_iter_with_universe(4, [TxId(0), TxId(1), TxId(2)]);
        assert_eq!(order.max_element(&set), Some(TxId(2)));
        assert_eq!(order.min_element(&set), Some(TxId(0)));
        assert_eq!(order.max_element(&TxSet::new(4)), None);
    }

    #[test]
    fn first_unrelated_pair_finds_gap() {
        let r = rel(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(r.first_unrelated_pair(), None);
        let partial = rel(3, &[(0, 1)]);
        assert_eq!(partial.first_unrelated_pair(), Some((TxId(0), TxId(2))));
    }

    #[test]
    fn inverse_and_predecessors() {
        let r = rel(3, &[(0, 2), (1, 2)]);
        let inv = r.inverse();
        assert!(inv.contains(TxId(2), TxId(0)));
        assert!(inv.contains(TxId(2), TxId(1)));
        let preds = r.predecessors(TxId(2));
        assert_eq!(preds.iter().collect::<Vec<_>>(), vec![TxId(0), TxId(1)]);
    }

    #[test]
    fn restrict_drops_outside_pairs() {
        let r = rel(4, &[(0, 1), (1, 2), (2, 3)]);
        let set = TxSet::from_iter_with_universe(4, [TxId(1), TxId(2)]);
        let restricted = r.restrict(&set);
        assert_eq!(restricted.edge_count(), 1);
        assert!(restricted.contains(TxId(1), TxId(2)));
    }

    #[test]
    fn set_algebra_on_relations() {
        let a = rel(3, &[(0, 1), (1, 2)]);
        let b = rel(3, &[(1, 2), (2, 0)]);
        assert_eq!(a.union(&b).edge_count(), 3);
        assert_eq!(a.intersection(&b).edge_count(), 1);
        assert_eq!(a.difference(&b).edge_count(), 1);
        assert!(a.intersection(&b).is_subset(&a));
    }

    #[test]
    fn identity_composition_neutral() {
        let r = rel(3, &[(0, 1), (1, 2)]);
        let id = Relation::identity(3);
        assert_eq!(r.compose(&id), r);
        assert_eq!(id.compose(&r), r);
    }

    #[test]
    fn grown_preserves_pairs() {
        let r = rel(2, &[(0, 1)]);
        let g = r.grown(5);
        assert_eq!(g.universe(), 5);
        assert!(g.contains(TxId(0), TxId(1)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn iter_pairs_row_major() {
        let r = rel(3, &[(2, 0), (0, 2), (0, 1)]);
        let pairs: Vec<_> = r.iter_pairs().collect();
        assert_eq!(pairs, vec![(TxId(0), TxId(1)), (TxId(0), TxId(2)), (TxId(2), TxId(0))]);
    }
}
