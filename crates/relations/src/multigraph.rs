//! Labelled multigraphs and simple-cycle enumeration (Johnson's algorithm).
//!
//! The chopping analyses of §5 and Appendix B classify *critical cycles* of
//! (static or dynamic) chopping graphs by the kinds of their edges:
//! successor / predecessor (session order and its inverse) and conflict
//! edges (WR, WW, RW). Two pieces can be connected by several edges of
//! different kinds at once — e.g. both a WW and an RW conflict — and the
//! kind matters for criticality, so cycles must be enumerated at the *edge*
//! level over a multigraph, not merely at the vertex level.

use core::fmt;

use crate::TxId;

/// A directed multigraph with labelled edges; parallel edges (same
/// endpoints, different or equal labels) are allowed and enumerated as
/// distinct.
///
/// # Example
///
/// ```
/// use si_relations::{MultiGraph, CycleVisit, TxId};
///
/// let mut g: MultiGraph<&'static str> = MultiGraph::new(2);
/// g.add_edge(TxId(0), TxId(1), "WW");
/// g.add_edge(TxId(1), TxId(0), "RW");
/// g.add_edge(TxId(1), TxId(0), "WR"); // parallel edge, different label
///
/// let mut cycles = Vec::new();
/// g.simple_cycles(usize::MAX, |c| {
///     cycles.push(c.labels.clone());
///     CycleVisit::Continue
/// });
/// // Two distinct cycles: 0-WW->1-RW->0 and 0-WW->1-WR->0.
/// assert_eq!(cycles.len(), 2);
/// ```
#[derive(Clone)]
pub struct MultiGraph<L> {
    n: usize,
    adjacency: Vec<Vec<(usize, L)>>,
}

/// A vertex-simple cycle of a [`MultiGraph`].
///
/// `labels[i]` labels the edge `nodes[i] → nodes[(i+1) % nodes.len()]`; the
/// two vectors always have equal length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelledCycle<L> {
    /// The vertices of the cycle in traversal order, without repeating the
    /// first vertex at the end.
    pub nodes: Vec<TxId>,
    /// The edge labels, one per step (including the closing edge back to
    /// `nodes[0]`).
    pub labels: Vec<L>,
}

impl<L> LabelledCycle<L> {
    /// Number of edges (equals the number of vertices).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cycle is empty (never true for emitted cycles).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl<L: fmt::Display> fmt::Display for LabelledCycle<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (node, label) in self.nodes.iter().zip(&self.labels) {
            write!(f, "{node} -{label}-> ")?;
        }
        if let Some(first) = self.nodes.first() {
            write!(f, "{first}")?;
        }
        Ok(())
    }
}

/// Caller decision after visiting a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleVisit {
    /// Keep enumerating.
    Continue,
    /// Stop the enumeration early (e.g. a critical cycle was found).
    Stop,
}

/// How a [`MultiGraph::simple_cycles`] enumeration ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumerationEnd {
    /// Every simple cycle was visited.
    Complete,
    /// The visitor requested a stop.
    Stopped,
    /// The step budget ran out before enumeration completed; analyses must
    /// treat the result as inconclusive.
    BudgetExhausted,
}

impl<L: Clone> MultiGraph<L> {
    /// Creates a graph with vertices `{T0,…,T(n-1)}` and no edges.
    pub fn new(n: usize) -> Self {
        MultiGraph { n, adjacency: (0..n).map(|_| Vec::new()).collect() }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges (counting parallel edges separately).
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum()
    }

    /// Adds a directed edge `from → to` with the given label. Parallel
    /// edges are kept.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the vertex range.
    pub fn add_edge(&mut self, from: TxId, to: TxId, label: L) {
        assert!(to.index() < self.n, "{to} outside vertex range {}", self.n);
        self.adjacency[from.index()].push((to.index(), label));
    }

    /// Iterates over all edges as `(from, to, label)`.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef<'_, L>> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(from, outs)| {
            outs.iter().map(move |(to, label)| EdgeRef {
                from: TxId::from_index(from),
                to: TxId::from_index(*to),
                label,
            })
        })
    }

    /// Enumerates every vertex-simple cycle (Johnson's algorithm adapted to
    /// labelled multigraphs), invoking `visit` once per cycle. Each
    /// combination of parallel edges yields a distinct cycle. Cycles are
    /// canonical: the smallest vertex of the cycle comes first.
    ///
    /// `step_budget` bounds the number of edge traversals across the whole
    /// enumeration; the number of simple cycles can be exponential in the
    /// graph size, and analyses that cannot afford that must be told when
    /// the answer is incomplete.
    pub fn simple_cycles<F>(&self, step_budget: usize, mut visit: F) -> EnumerationEnd
    where
        F: FnMut(&LabelledCycle<L>) -> CycleVisit,
    {
        let mut state = JohnsonState {
            graph: self,
            blocked: vec![false; self.n],
            block_lists: (0..self.n).map(|_| Vec::new()).collect(),
            node_stack: Vec::new(),
            label_stack: Vec::new(),
            steps_left: step_budget,
            min_vertex: 0,
            allowed: vec![false; self.n],
            visit: &mut visit,
        };

        for start in 0..self.n {
            // Restrict to the SCC of `start` within vertices >= start.
            let scc = scc_containing(self, start);
            let trivial = scc.iter().filter(|&&x| x).count() <= 1
                && !self.adjacency[start].iter().any(|(to, _)| *to == start);
            if trivial {
                continue;
            }
            state.min_vertex = start;
            state.allowed.copy_from_slice(&scc);
            for v in 0..self.n {
                state.blocked[v] = false;
                state.block_lists[v].clear();
            }
            match state.circuit(start) {
                CircuitEnd::Done(_) => {}
                CircuitEnd::Stopped => return EnumerationEnd::Stopped,
                CircuitEnd::Budget => return EnumerationEnd::BudgetExhausted,
            }
            debug_assert!(state.node_stack.is_empty());
        }
        EnumerationEnd::Complete
    }

    /// Collects every simple cycle into a vector (convenience for tests and
    /// small graphs).
    ///
    /// # Panics
    ///
    /// Panics if the enumeration exceeds `step_budget` — callers of this
    /// convenience API are asserting the graph is small.
    pub fn all_simple_cycles(&self, step_budget: usize) -> Vec<LabelledCycle<L>> {
        let mut out = Vec::new();
        let end = self.simple_cycles(step_budget, |c| {
            out.push(c.clone());
            CycleVisit::Continue
        });
        assert!(end == EnumerationEnd::Complete, "cycle enumeration exceeded the step budget");
        out
    }
}

/// A borrowed edge of a [`MultiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef<'a, L> {
    /// Source vertex.
    pub from: TxId,
    /// Target vertex.
    pub to: TxId,
    /// Edge label.
    pub label: &'a L,
}

enum CircuitEnd {
    /// Finished this start vertex; payload: whether any cycle was found.
    Done(bool),
    Stopped,
    Budget,
}

struct JohnsonState<'a, 'f, L, F>
where
    F: FnMut(&LabelledCycle<L>) -> CycleVisit,
{
    graph: &'a MultiGraph<L>,
    blocked: Vec<bool>,
    block_lists: Vec<Vec<usize>>,
    node_stack: Vec<usize>,
    label_stack: Vec<L>,
    steps_left: usize,
    min_vertex: usize,
    allowed: Vec<bool>,
    // `visit` lives here so `circuit` can call it recursively.
    visit: &'f mut F,
}

fn scc_containing<L>(graph: &MultiGraph<L>, start: usize) -> Vec<bool> {
    // Forward reachability from `start` intersected with backward
    // reachability, restricted to vertices >= start.
    let n = graph.n;
    let mut forward = vec![false; n];
    let mut stack = vec![start];
    forward[start] = true;
    while let Some(v) = stack.pop() {
        for (w, _) in &graph.adjacency[v] {
            if *w >= start && !forward[*w] {
                forward[*w] = true;
                stack.push(*w);
            }
        }
    }
    // Backward: build reverse adjacency lazily.
    let mut backward = vec![false; n];
    backward[start] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for v in start..n {
            if backward[v] {
                continue;
            }
            if graph.adjacency[v].iter().any(|(w, _)| *w >= start && backward[*w]) {
                backward[v] = true;
                changed = true;
            }
        }
    }
    (0..n).map(|v| forward[v] && backward[v]).collect()
}

impl<L: Clone, F> JohnsonState<'_, '_, L, F>
where
    F: FnMut(&LabelledCycle<L>) -> CycleVisit,
{
    fn unblock(&mut self, v: usize) {
        self.blocked[v] = false;
        let pending = std::mem::take(&mut self.block_lists[v]);
        for w in pending {
            if self.blocked[w] {
                self.unblock(w);
            }
        }
    }

    fn circuit(&mut self, v: usize) -> CircuitEnd {
        let mut found = false;
        self.node_stack.push(v);
        self.blocked[v] = true;

        let out_edges: Vec<(usize, L)> = self.graph.adjacency[v]
            .iter()
            .filter(|(w, _)| *w >= self.min_vertex && self.allowed[*w])
            .cloned()
            .collect();

        for (w, label) in out_edges {
            if self.steps_left == 0 {
                self.node_stack.pop();
                return CircuitEnd::Budget;
            }
            self.steps_left -= 1;

            if w == self.min_vertex {
                // Close the cycle.
                let mut labels = self.label_stack.clone();
                labels.push(label);
                let cycle = LabelledCycle {
                    nodes: self.node_stack.iter().map(|&i| TxId::from_index(i)).collect(),
                    labels,
                };
                if (self.visit)(&cycle) == CycleVisit::Stop {
                    self.node_stack.pop();
                    return CircuitEnd::Stopped;
                }
                found = true;
            } else if !self.blocked[w] {
                self.label_stack.push(label);
                let sub = self.circuit(w);
                self.label_stack.pop();
                match sub {
                    CircuitEnd::Done(f) => found |= f,
                    other => {
                        self.node_stack.pop();
                        return other;
                    }
                }
            }
        }

        if found {
            self.unblock(v);
        } else {
            for (w, _) in &self.graph.adjacency[v] {
                if *w >= self.min_vertex && self.allowed[*w] && !self.block_lists[*w].contains(&v) {
                    self.block_lists[*w].push(v);
                }
            }
        }
        self.node_stack.pop();
        CircuitEnd::Done(found)
    }
}

impl<L: fmt::Debug> fmt::Debug for MultiGraph<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MultiGraph({} vertices) {{", self.n)?;
        for (from, outs) in self.adjacency.iter().enumerate() {
            for (to, label) in outs {
                write!(f, " T{from} -{label:?}-> T{to};")?;
            }
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(u32, u32, &'static str)]) -> MultiGraph<&'static str> {
        let mut g = MultiGraph::new(n);
        for &(a, b, l) in edges {
            g.add_edge(TxId(a), TxId(b), l);
        }
        g
    }

    fn cycle_signatures(g: &MultiGraph<&'static str>) -> Vec<String> {
        let mut sigs: Vec<String> =
            g.all_simple_cycles(1_000_000).iter().map(|c| c.to_string()).collect();
        sigs.sort();
        sigs
    }

    #[test]
    fn no_cycles_in_dag() {
        let g = graph(4, &[(0, 1, "a"), (1, 2, "b"), (0, 3, "c")]);
        assert!(cycle_signatures(&g).is_empty());
    }

    #[test]
    fn single_two_cycle() {
        let g = graph(2, &[(0, 1, "x"), (1, 0, "y")]);
        let sigs = cycle_signatures(&g);
        assert_eq!(sigs, vec!["T0 -x-> T1 -y-> T0"]);
    }

    #[test]
    fn parallel_edges_produce_distinct_cycles() {
        let g = graph(2, &[(0, 1, "WW"), (1, 0, "RW"), (1, 0, "WR")]);
        let sigs = cycle_signatures(&g);
        assert_eq!(sigs.len(), 2);
        assert!(sigs.contains(&"T0 -WW-> T1 -RW-> T0".to_string()));
        assert!(sigs.contains(&"T0 -WW-> T1 -WR-> T0".to_string()));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = graph(2, &[(1, 1, "l")]);
        let sigs = cycle_signatures(&g);
        assert_eq!(sigs, vec!["T1 -l-> T1"]);
    }

    #[test]
    fn two_overlapping_triangles() {
        // 0->1->2->0 and 0->1->3->0 share edge 0->1.
        let g = graph(4, &[(0, 1, "a"), (1, 2, "b"), (2, 0, "c"), (1, 3, "d"), (3, 0, "e")]);
        let sigs = cycle_signatures(&g);
        assert_eq!(sigs.len(), 2);
    }

    #[test]
    fn complete_graph_cycle_count() {
        // K4 (all ordered pairs, distinct vertices) has
        // sum_{k=2..4} C(4,k) * (k-1)! = 6*1 + 4*2 + 1*6 = 20 simple cycles.
        let mut g: MultiGraph<&'static str> = MultiGraph::new(4);
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    g.add_edge(TxId(a), TxId(b), "e");
                }
            }
        }
        assert_eq!(g.all_simple_cycles(1_000_000).len(), 20);
    }

    #[test]
    fn cycles_are_canonical_and_consistent() {
        let g = graph(3, &[(0, 1, "a"), (1, 2, "b"), (2, 0, "c")]);
        let cycles = g.all_simple_cycles(1_000_000);
        assert_eq!(cycles.len(), 1);
        let c = &cycles[0];
        assert_eq!(c.nodes[0], TxId(0)); // smallest vertex first
        assert_eq!(c.len(), 3);
        assert_eq!(c.labels, vec!["a", "b", "c"]);
    }

    #[test]
    fn early_stop() {
        let g = graph(2, &[(0, 1, "x"), (1, 0, "y"), (1, 0, "z")]);
        let mut count = 0;
        let end = g.simple_cycles(usize::MAX, |_| {
            count += 1;
            CycleVisit::Stop
        });
        assert_eq!(end, EnumerationEnd::Stopped);
        assert_eq!(count, 1);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut g: MultiGraph<&'static str> = MultiGraph::new(8);
        for a in 0..8u32 {
            for b in 0..8u32 {
                if a != b {
                    g.add_edge(TxId(a), TxId(b), "e");
                }
            }
        }
        let end = g.simple_cycles(10, |_| CycleVisit::Continue);
        assert_eq!(end, EnumerationEnd::BudgetExhausted);
    }

    #[test]
    fn figure8_shares_a_vertex() {
        // Two cycles sharing vertex 1: 0->1->0 and 1->2->1.
        let g = graph(3, &[(0, 1, "a"), (1, 0, "b"), (1, 2, "c"), (2, 1, "d")]);
        let sigs = cycle_signatures(&g);
        assert_eq!(sigs.len(), 2);
        // But the figure-eight walk 0->1->2->1->0 repeats vertex 1 and must
        // NOT be emitted — every emitted cycle is vertex-simple.
        for c in g.all_simple_cycles(1_000_000) {
            let mut nodes = c.nodes.clone();
            nodes.sort_unstable();
            nodes.dedup();
            assert_eq!(nodes.len(), c.nodes.len());
        }
    }
}
